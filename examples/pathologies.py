#!/usr/bin/env python3
"""Demonstrate the repair and merge pathologies of paper Figure 1.

Three transactions contend on a shared line while one of them carries a
large write set:

* under an **undo-log scheme (LogTM-SE)**, an abort walks the log in
  software while the transaction's isolation stays held — neighbours
  pile up behind it (*repair pathology*);
* under a **redo/lazy scheme**, commit merges the write set into the
  memory system while isolation stays held (*merge pathology*);
* under **SUV**, both ends of a transaction are bit flips, so the
  isolation window closes almost immediately.

The script measures the isolation-window tail directly: the Aborting /
Committing components and the Stalled time they induce in neighbours.
"""

from repro import SimConfig, Simulator
from repro.config import HTMConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.stats.report import format_table

SHARED = 0x9000
BIG_SET = [0x40000 + i * 64 for i in range(96)]


def big_writer():
    """TX1: writes a large set, touches the shared line, runs long."""
    def body():
        yield Write(SHARED, 1)
        for addr in BIG_SET:
            yield Write(addr, 7)
        yield Work(400)
    yield Tx(body, site=1)


def neighbour(delay):
    """TX2/TX3: arrive mid-flight and touch the shared line."""
    def thread():
        def body():
            v = yield Read(SHARED)
            yield Write(SHARED, v + 1)
        yield Work(delay)
        yield Tx(body, site=2)
    return thread


def run(scheme: str, policy: str = "stall"):
    config = SimConfig(n_cores=4, htm=HTMConfig(resolution=policy))
    sim = Simulator(config, scheme=scheme, seed=1)
    res = sim.run([big_writer, neighbour(150), neighbour(300)])
    return res


def main() -> None:
    rows = []
    for scheme in ("logtm-se", "fastm", "suv", "lazy"):
        # abort_requester forces TX1-style rollbacks so the repair cost
        # is visible even in this tiny scenario
        res = run(scheme, policy="abort_requester")
        bd = res.breakdown.cycles
        rows.append((
            scheme, res.total_cycles, res.aborts,
            bd["Aborting"], bd["Committing"], bd["Stalled"],
        ))
    print(format_table(
        ["scheme", "total", "aborts", "Aborting", "Committing", "Stalled"],
        rows,
        title="Figure 1 pathologies: end-of-transaction processing "
              "and the stalls it causes",
    ))
    print(
        "\nReading the table: LogTM-SE pays the software undo walk in"
        " 'Aborting' (repair pathology), the lazy scheme pays the merge in"
        " 'Committing' (merge pathology), and SUV's bit-flip end keeps"
        " both near zero, which also shrinks neighbours' 'Stalled' time."
    )


if __name__ == "__main__":
    main()
