#!/usr/bin/env python3
"""Quickstart: run one STAMP-like workload under SUV-TM and read the results.

Usage::

    python examples/quickstart.py [workload] [scheme]

Defaults to ``intruder`` under ``suv``.  Prints total execution time,
the paper-style execution-time breakdown, scheme statistics, and — for
SUV — the redirect-entry state machine of Table II.
"""

import sys

from repro import SimConfig, Simulator
from repro.core.redirect_entry import EntryState
from repro.stats.report import format_table
from repro.workloads import make_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "intruder"
    scheme = sys.argv[2] if len(sys.argv) > 2 else "suv"

    config = SimConfig()  # the paper's Table III CMP
    program = make_workload(name, n_threads=config.n_cores, seed=42,
                            scale="small")
    print(f"running {name!r} ({program.contention} contention) on a "
          f"{config.n_cores}-core CMP under {scheme} ...")

    sim = Simulator(config, scheme=scheme, seed=42)
    result = sim.run(program.threads)
    program.verify(result.memory)   # the computed answer is checked!

    print(f"\ntotal execution time : {result.total_cycles:,} cycles")
    print(f"transactions         : {result.commits} committed, "
          f"{result.aborts} aborted "
          f"(abort ratio {result.abort_ratio:.1%})")

    rows = [
        (comp, cycles, f"{result.breakdown.fraction(comp):.1%}")
        for comp, cycles in result.breakdown.as_dict().items()
    ]
    print()
    print(format_table(["component", "cycles", "share"], rows,
                       title="execution-time breakdown (all cores)"))

    interesting = {
        k: v for k, v in result.scheme_stats.items()
        if v and not k.startswith("summary_")
    }
    print()
    print(format_table(["statistic", "value"], sorted(interesting.items()),
                       title=f"{scheme} statistics"))

    if scheme == "suv":
        print("\nredirect-entry states (paper Table II):")
        for state in EntryState:
            print(f"  global={state.global_bit} valid={state.valid_bit}  "
                  f"{state.name:14s} commit→{state.committed().name:8s} "
                  f"abort→{state.aborted().name}")


if __name__ == "__main__":
    main()
