#!/usr/bin/env python3
"""Thread suspension and multiplexing (paper Section IV-C).

Runs a contended workload with twice as many threads as cores.  A
thread suspended *inside* a transaction keeps its read/write signatures
armed (the LogTM-SE summary-signature mechanism the paper adopts), so
isolation holds across context switches — which the workload verifier
proves — while the scheduler keeps every core busy.

Also demonstrates open nesting: a worker appends to a shared audit log
through an open-nested transaction that publishes immediately, with a
compensating action covering parent aborts.
"""

from repro import SimConfig, Simulator
from repro.config import HTMConfig
from repro.htm.ops import OpenTx, Read, Tx, Work, Write
from repro.stats.report import format_table
from repro.workloads import make_workload


def multiplexing_run() -> None:
    cores, threads = 4, 12
    config = SimConfig(n_cores=cores,
                       htm=HTMConfig(time_slice=5000, start_stagger=256))
    program = make_workload("intruder", n_threads=threads, seed=11,
                            scale="tiny")
    sim = Simulator(config, scheme="suv", seed=11)
    result = sim.run(program.threads, max_events=50_000_000)
    program.verify(result.memory)   # isolation held across suspensions

    print(f"{threads} threads on {cores} cores "
          f"({result.context_switches} context switches)")
    print(f"total {result.total_cycles:,} cycles; "
          f"{result.commits} commits, {result.aborts} aborts — "
          "verifier passed: every transaction stayed atomic across "
          "suspensions")


def open_nesting_run() -> None:
    audit, work_item = 0x1000, 0x2000

    def worker(tid):
        def thread():
            def log_entry():
                n = yield Read(audit)
                yield Write(audit, n + 1)

            def unlog():
                n = yield Read(audit)
                yield Write(audit, n - 1)

            def body():
                # the audit append publishes immediately — other threads
                # never wait for this transaction's long tail
                yield OpenTx(log_entry, compensate=unlog, site=9)
                v = yield Read(work_item)
                yield Work(400)
                yield Write(work_item, v + 1)
            for _ in range(4):
                yield Tx(body, site=1)
        return thread

    sim = Simulator(SimConfig(n_cores=4), scheme="suv", seed=7)
    result = sim.run([worker(t) for t in range(4)])
    print(f"\nopen nesting: audit log = {result.memory[audit]} entries, "
          f"work item = {result.memory[work_item]} "
          f"({result.aborts} aborts compensated)")
    assert result.memory[audit] == result.memory[work_item] == 16


def main() -> None:
    multiplexing_run()
    open_nesting_run()


if __name__ == "__main__":
    main()
