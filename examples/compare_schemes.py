#!/usr/bin/env python3
"""Compare every version-management scheme on one workload.

Usage::

    python examples/compare_schemes.py [workload] [scale]

Reproduces, for a single application, what the paper's Figure 6 and
Figure 9 do across the whole suite: normalized execution-time breakdowns
for LogTM-SE, FasTM, SUV-TM, DynTM and DynTM+SUV, plus headline
speedups.
"""

import sys

from repro import SimConfig, Simulator
from repro.stats.report import format_breakdown_table
from repro.workloads import make_workload

SCHEMES = ("logtm-se", "fastm", "suv", "dyntm", "dyntm+suv")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "genome"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    config = SimConfig()

    results = {}
    for scheme in SCHEMES:
        program = make_workload(name, n_threads=config.n_cores, seed=7,
                                scale=scale)
        sim = Simulator(config, scheme=scheme, seed=7)
        res = sim.run(program.threads)
        program.verify(res.memory)
        results[scheme] = res
        print(f"{scheme:10s} {res.total_cycles:>12,} cycles   "
              f"{res.commits} commits / {res.aborts} aborts")

    print()
    print(format_breakdown_table(
        {k: v.breakdown for k, v in results.items()},
        baseline="logtm-se",
        title=f"{name} — breakdown normalized to LogTM-SE "
              f"(cf. paper Figures 6 and 9)",
    ))

    suv = results["suv"]
    print(f"\nSUV speedup over LogTM-SE : "
          f"{suv.speedup_over(results['logtm-se']):.2f}x")
    print(f"SUV speedup over FasTM    : "
          f"{suv.speedup_over(results['fastm']):.2f}x")
    print(f"DynTM+SUV over DynTM      : "
          f"{results['dyntm+suv'].speedup_over(results['dyntm']):.2f}x")


if __name__ == "__main__":
    main()
