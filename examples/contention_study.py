#!/usr/bin/env python3
"""Contention sweep: where does SUV's advantage come from?

Runs the parametric synthetic workload while sweeping the fraction of
hot (conflict-prone) accesses, and prints the SUV speedup over LogTM-SE
and FasTM at each point.  The paper's core claim — version-management
overheads matter *more* as contention rises, because end-of-transaction
processing sits inside the isolation window — appears as a widening gap
at the top of the sweep.
"""

from repro import SimConfig, Simulator
from repro.stats.report import format_table
from repro.workloads.synthetic import make_synthetic


def run_point(hot_fraction: float, scheme: str) -> int:
    config = SimConfig()
    program = make_synthetic(
        n_threads=config.n_cores,
        seed=9,
        tx_per_thread=12,
        accesses_per_tx=12,
        hot_fraction=hot_fraction,
        hot_words=8,
        work_per_access=25,
    )
    sim = Simulator(config, scheme=scheme, seed=9)
    res = sim.run(program.threads)
    program.verify(res.memory)
    return res.total_cycles


def main() -> None:
    rows = []
    for hot in (0.0, 0.1, 0.25, 0.5, 0.75):
        logtm = run_point(hot, "logtm-se")
        fastm = run_point(hot, "fastm")
        suv = run_point(hot, "suv")
        rows.append((
            f"{hot:.2f}", logtm, fastm, suv,
            f"{logtm / suv:.2f}x", f"{fastm / suv:.2f}x",
        ))
    print(format_table(
        ["hot fraction", "LogTM-SE", "FasTM", "SUV", "SUV vs LogTM",
         "SUV vs FasTM"],
        rows,
        title="synthetic contention sweep (total cycles, 16 cores)",
    ))


if __name__ == "__main__":
    main()
