"""Write-ahead campaign journal: crash-safe per-spec run state.

The SUV paper's version-management insight is that keeping pre-images
makes recovery a pointer flip instead of a log walk.  The campaign
analogue: if every state transition of every spec is journaled *before*
it takes effect, recovering a killed campaign is a replay of a JSONL
file, not a re-run of the whole matrix.

:class:`CampaignJournal` appends one JSON object per line to a journal
file.  Appends are atomic at the line level (a single ``write`` of one
``\\n``-terminated line) and fsync'd by default, so a ``SIGKILL`` leaves
at most one truncated trailing line — which :meth:`replay` skips and
counts, exactly like :meth:`ArtifactStore.load`.

Event kinds (all carry ``"event"`` and most carry ``"spec_hash"``):

``campaign_begin``
    One per runner session against this journal: the campaign hash (a
    digest of the sorted spec hashes), spec count, and whether the
    session is a resume of earlier sessions.
``spec_pending``
    The spec set of the campaign, one line per spec (hash + label),
    written once by the first session.
``spec_running``
    A spec (attempt ``n``) was handed to a worker.  Written *before*
    dispatch — write-ahead — so a killed campaign knows exactly which
    specs were in flight.
``spec_done``
    A spec completed: attempts, duration, whether it was a cache hit
    (``cached``), whether it was already done in a prior session
    (``resumed``), whether the result-cache write stuck (``cache_ok``)
    and a sha256 digest of the result JSON for byte-identity audits.
``spec_failed``
    A spec failed *terminally*: attempts, the error text and the typed
    error class (``error_type``).
``cache_quarantine``
    The result cache quarantined a corrupt entry for this spec.
``degradation``
    A supervision event (pool breakage, backoff, circuit-open,
    cache-write failure) from the runner.

:meth:`replay` folds the event stream into one :class:`SpecState` per
spec and campaign-level invariant counters: lost specs (no terminal
state), duplicate completions (a spec executed to completion twice with
no justifying cache failure or quarantine in between), truncated lines.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, TextIO

from repro.errors import CampaignJournalError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runner.spec import ExperimentSpec

#: bump when the journal record encoding changes
JOURNAL_FORMAT_VERSION = 1

_TERMINAL = ("done", "failed")


def campaign_hash(spec_hashes: Iterable[str]) -> str:
    """Order-independent digest identifying a campaign's spec set."""
    canonical = "\n".join(sorted(spec_hashes))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class SpecState:
    """The folded journal state of one spec."""

    spec_hash: str
    label: str = ""
    status: str = "pending"  # pending | running | done | failed
    attempts: int = 0
    duration_s: float = 0.0
    error: str | None = None
    error_type: str | None = None
    cached: bool = False
    resumed: bool = False
    cache_ok: bool = False
    result_digest: str | None = None
    #: times this spec was executed to completion (non-cached done)
    completions: int = 0
    #: completions that happened while a cache-backed completion stood —
    #: the "spec run twice to completion" invariant violation
    duplicate_completions: int = 0
    #: cache entries for this spec quarantined as corrupt
    quarantines: int = 0
    #: a completion whose result made it into the cache intact and has
    #: not been quarantined since; re-executing now would be a duplicate
    _safely_completed: bool = field(default=False, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL


@dataclass
class JournalState:
    """Everything :meth:`CampaignJournal.replay` recovers from disk."""

    specs: dict[str, SpecState] = field(default_factory=dict)
    campaign_hashes: list[str] = field(default_factory=list)
    sessions: int = 0
    truncated_lines: int = 0
    degradations: list[dict] = field(default_factory=list)

    @property
    def lost(self) -> list[SpecState]:
        """Specs with no terminal state — a violated campaign invariant
        unless the campaign is still running."""
        return [s for s in self.specs.values() if not s.terminal]

    @property
    def duplicates(self) -> list[SpecState]:
        """Specs executed to completion more than once without cause."""
        return [s for s in self.specs.values() if s.duplicate_completions]

    @property
    def done(self) -> list[SpecState]:
        return [s for s in self.specs.values() if s.status == "done"]

    @property
    def failed(self) -> list[SpecState]:
        return [s for s in self.specs.values() if s.status == "failed"]


class CampaignJournal:
    """Atomic, fsync'd JSONL checkpointing of per-spec campaign state.

    ``fsync=False`` trades crash-safety for speed (the OS still sees
    every line immediately; only a machine crash can lose data) — useful
    in tests and on battery-backed storage.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._stream: TextIO | None = None  # opened lazily on first append

    # -- write side ------------------------------------------------------
    def _append(self, record: Mapping[str, Any], *, sync: bool | None = None) -> None:
        if self._stream is None:
            self._stream = self.path.open("a", encoding="utf-8")
        line = json.dumps(dict(record), sort_keys=True) + "\n"
        self._stream.write(line)
        self._stream.flush()
        if self.fsync and sync is not False:
            os.fsync(self._stream.fileno())

    def begin(self, specs: Iterable["ExperimentSpec"]) -> JournalState:
        """Open a session for ``specs``; returns prior replayed state.

        First session: journals the campaign header and the full spec
        set (write-ahead, so a kill during the very first spec still
        leaves the pending set on disk).  Later sessions: verifies the
        spec set matches the journal's campaign hash — resuming a
        journal with a different matrix raises
        :class:`~repro.errors.CampaignJournalError` instead of silently
        mixing campaigns — then appends a resume header.
        """
        spec_list = list(specs)
        hashes = [spec.spec_hash() for spec in spec_list]
        chash = campaign_hash(hashes)
        prior = self.replay(self.path)
        if prior.campaign_hashes and prior.campaign_hashes[0] != chash:
            raise CampaignJournalError(
                "journal records a different campaign "
                f"({len(prior.specs)} specs, hash "
                f"{prior.campaign_hashes[0][:12]}…); refusing to resume "
                f"a {len(spec_list)}-spec matrix with hash {chash[:12]}… "
                "over it",
                path=str(self.path),
            )
        self._append({
            "event": "campaign_begin",
            "format": JOURNAL_FORMAT_VERSION,
            "campaign_hash": chash,
            "n_specs": len(spec_list),
            "resumed": bool(prior.sessions),
            "time": time.time(),
        })
        if not prior.sessions:
            for spec, spec_hash in zip(spec_list, hashes):
                self._append(
                    {
                        "event": "spec_pending",
                        "spec_hash": spec_hash,
                        "label": spec.label(),
                    },
                    sync=False,
                )
            if self.fsync and self._stream is not None:
                os.fsync(self._stream.fileno())
        return prior

    def record_running(self, spec_hash: str, attempt: int) -> None:
        self._append({
            "event": "spec_running",
            "spec_hash": spec_hash,
            "attempt": attempt,
        })

    def record_done(
        self,
        spec_hash: str,
        *,
        attempts: int,
        duration_s: float,
        cached: bool,
        resumed: bool,
        cache_ok: bool,
        result_digest: str | None = None,
    ) -> None:
        self._append({
            "event": "spec_done",
            "spec_hash": spec_hash,
            "attempts": attempts,
            "duration_s": round(duration_s, 6),
            "cached": cached,
            "resumed": resumed,
            "cache_ok": cache_ok,
            "result_digest": result_digest,
        })

    def record_failed(
        self,
        spec_hash: str,
        *,
        attempts: int,
        error: str,
        error_type: str | None,
    ) -> None:
        self._append({
            "event": "spec_failed",
            "spec_hash": spec_hash,
            "attempts": attempts,
            "error": error,
            "error_type": error_type,
        })

    def record_quarantine(self, spec_hash: str, reason: str = "") -> None:
        self._append({
            "event": "cache_quarantine",
            "spec_hash": spec_hash,
            "reason": reason,
        })

    def record_degradation(self, event: Mapping[str, Any]) -> None:
        self._append({"event": "degradation", **dict(event)})

    def close(self) -> None:
        stream, self._stream = self._stream, None
        if stream is not None:
            stream.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- read side -------------------------------------------------------
    @staticmethod
    def replay(path: str | Path) -> JournalState:
        """Fold the journal's event stream into per-spec states.

        Tolerates exactly the damage a killed process can do: a
        truncated trailing line (skipped and counted).  Corruption
        anywhere else raises :class:`CampaignJournalError` — that is
        not a crash artifact, it is a damaged journal.
        """
        state = JournalState()
        try:
            text = Path(path).read_text(encoding="utf-8")
        except FileNotFoundError:
            return state
        lines = [ln for ln in text.splitlines() if ln.strip()]
        for at, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if at == len(lines) - 1:
                    state.truncated_lines += 1
                    continue
                raise CampaignJournalError(
                    f"corrupt journal record at line {at + 1} "
                    "(not the trailing line, so not a crash artifact)",
                    path=str(path),
                ) from None
            _fold(state, record)
        return state

    @classmethod
    def open_resumable(
        cls, path: str | Path, *, fsync: bool = True
    ) -> "CampaignJournal":
        """A journal at ``path``, whether or not the file exists yet."""
        return cls(path, fsync=fsync)


def _fold(state: JournalState, record: Mapping[str, Any]) -> None:
    event = record.get("event")
    if event == "campaign_begin":
        state.sessions += 1
        chash = record.get("campaign_hash")
        if chash:
            state.campaign_hashes.append(str(chash))
        return
    if event == "degradation":
        state.degradations.append(dict(record))
        return
    spec_hash = record.get("spec_hash")
    if not spec_hash:
        return
    spec = state.specs.setdefault(spec_hash, SpecState(spec_hash=spec_hash))
    if event == "spec_pending":
        spec.label = str(record.get("label", spec.label))
    elif event == "spec_running":
        spec.status = "running"
        spec.attempts = max(spec.attempts, int(record.get("attempt", 1)))
    elif event == "spec_done":
        cached = bool(record.get("cached"))
        cache_ok = bool(record.get("cache_ok"))
        if not cached:
            spec.completions += 1
            if spec._safely_completed:
                spec.duplicate_completions += 1
            if cache_ok:
                spec._safely_completed = True
        spec.status = "done"
        spec.attempts = int(record.get("attempts", spec.attempts))
        spec.duration_s = float(record.get("duration_s", 0.0))
        spec.cached = cached
        spec.resumed = bool(record.get("resumed"))
        spec.cache_ok = cache_ok
        spec.result_digest = record.get("result_digest")
        spec.error = None
        spec.error_type = None
    elif event == "spec_failed":
        spec.status = "failed"
        spec.attempts = int(record.get("attempts", spec.attempts))
        spec.error = str(record.get("error", ""))
        spec.error_type = record.get("error_type")
    elif event == "cache_quarantine":
        spec.quarantines += 1
        # the cached copy is gone: a re-execution is now justified
        spec._safely_completed = False
