"""Structured end-of-campaign summary.

:class:`CampaignReport` folds a campaign's outcomes plus the runner's
and cache's supervision counters into one serializable record: how many
specs succeeded / failed / came from cache or a resumed session, total
attempts and retries, integrity quarantines, and every degradation
event (pool breakages, backoffs, circuit-open, cache-write failures).
``repro matrix`` prints it and appends it to the artifact store, so a
campaign's health is inspectable long after its stderr scrolled away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runner.cache import ResultCache
    from repro.runner.executor import Runner, RunOutcome


@dataclass
class CampaignReport:
    """Outcomes, retries, quarantines and degradation events of one run."""

    total: int = 0
    ok: int = 0
    failed: int = 0
    cached: int = 0
    resumed: int = 0
    attempts: int = 0
    retries: int = 0
    quarantined: int = 0
    stale_tmp_removed: int = 0
    cache_put_failures: int = 0
    pool_breakages: int = 0
    serial_fallbacks: int = 0
    circuit_opened: bool = False
    degradation_events: list[dict] = field(default_factory=list)
    #: terminal failures: {"label", "error_type", "error", "attempts"}
    failures: list[dict] = field(default_factory=list)
    wall_s: float = 0.0

    @classmethod
    def collect(
        cls,
        outcomes: Iterable["RunOutcome"],
        *,
        runner: "Runner | None" = None,
        cache: "ResultCache | None" = None,
        wall_s: float = 0.0,
    ) -> "CampaignReport":
        report = cls(wall_s=round(wall_s, 3))
        for out in outcomes:
            report.total += 1
            report.attempts += out.attempts
            report.retries += max(0, out.attempts - 1)
            if out.cached:
                report.cached += 1
            if out.resumed:
                report.resumed += 1
            if out.ok:
                report.ok += 1
            else:
                report.failed += 1
                report.failures.append({
                    "label": out.spec.label(),
                    "error_type": out.error_type,
                    "error": out.error,
                    "attempts": out.attempts,
                })
        if runner is not None:
            report.cache_put_failures = runner.cache_put_failures
            report.pool_breakages = runner.pool_breakages
            report.serial_fallbacks = runner.serial_fallbacks
            report.circuit_opened = runner.circuit_open
            report.degradation_events = list(runner.degradation_events)
        if cache is not None:
            report.quarantined = cache.quarantined
            report.stale_tmp_removed = cache.stale_tmp_removed
        return report

    def to_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "ok": self.ok,
            "failed": self.failed,
            "cached": self.cached,
            "resumed": self.resumed,
            "attempts": self.attempts,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "stale_tmp_removed": self.stale_tmp_removed,
            "cache_put_failures": self.cache_put_failures,
            "pool_breakages": self.pool_breakages,
            "serial_fallbacks": self.serial_fallbacks,
            "circuit_opened": self.circuit_opened,
            "degradation_events": list(self.degradation_events),
            "failures": list(self.failures),
            "wall_s": self.wall_s,
        }

    def format(self) -> str:
        """A compact human-readable block for the end of ``repro matrix``."""
        lines = [
            "campaign report:",
            f"  specs     : {self.total} total | {self.ok} ok, "
            f"{self.failed} failed | {self.cached} cached, "
            f"{self.resumed} resumed",
            f"  attempts  : {self.attempts} ({self.retries} retries)",
        ]
        if self.quarantined or self.stale_tmp_removed or self.cache_put_failures:
            lines.append(
                f"  cache     : {self.quarantined} quarantined, "
                f"{self.stale_tmp_removed} stale tmp swept, "
                f"{self.cache_put_failures} write failures"
            )
        if self.pool_breakages or self.serial_fallbacks or self.circuit_opened:
            lines.append(
                f"  supervision: {self.pool_breakages} pool breakages, "
                f"{self.serial_fallbacks} serial fallbacks"
                + (", circuit OPEN (degraded to serial)"
                   if self.circuit_opened else "")
            )
        for event in self.degradation_events:
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(event.items()) if k != "kind"
            )
            lines.append(f"  degraded  : {event.get('kind')} ({detail})")
        for failure in self.failures:
            lines.append(
                f"  FAILED    : {failure['label']} "
                f"[{failure['error_type'] or 'error'}, "
                f"attempts={failure['attempts']}]: {failure['error']}"
            )
        return "\n".join(lines)
