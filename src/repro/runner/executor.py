"""Concurrent experiment execution.

:class:`Runner` executes :class:`~repro.runner.spec.ExperimentSpec`
lists with a ``ProcessPoolExecutor``: per-run timeouts, bounded retry
with a fresh seed offset on crash, and graceful degradation to
in-process serial execution when process pools are unavailable (or
break mid-run).  Results cross the process boundary as
:meth:`SimResult.to_json` strings, the same representation the on-disk
cache uses, so parallel and serial execution are observationally
identical.

The module-level conveniences are the stable public API surface:

* :func:`execute_spec` — run one spec in-process, no pooling/caching;
* :func:`run_experiment` — one spec through the (optional) cache;
* :func:`run_matrix` — many specs (or a :class:`RunMatrix`) through a
  :class:`Runner`.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.runner.artifacts import ArtifactStore
from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec, RunMatrix
from repro.simulator import SimResult, Simulator


def execute_spec(spec: ExperimentSpec, trace: Any = None) -> SimResult:
    """Build and run the simulation a spec describes, in-process.

    ``spec.fault_plan`` arms a fault injector for the run;
    ``spec.check`` runs the atomicity oracle afterwards (raising
    :class:`~repro.errors.OracleViolation` on a violation) and attaches
    its report to the result.  Both happen here, inside the worker, so
    they behave identically in serial and process-pool execution.

    ``trace`` (a :class:`~repro.trace.Tracer`, ``True``, or a ring
    capacity) arms event tracing for the run; inspect it afterwards via
    the returned result's ``phase_breakdown`` or the tracer object.
    Tracing never changes simulated timing, so cached results stay
    valid.
    """
    from repro.faults import parse_plan
    from repro.workloads import make_workload

    config = spec.build_config()
    n_threads = spec.threads or config.n_cores
    program = make_workload(
        spec.workload,
        n_threads=n_threads,
        seed=spec.seed,
        scale=spec.scale,
        **dict(spec.workload_kwargs),
    )
    sim = Simulator(
        config,
        scheme=spec.scheme,
        seed=spec.seed,
        faults=parse_plan(spec.fault_plan),
        oracle=spec.check,
        trace=trace,
    )
    result = sim.run(program.threads, max_events=spec.max_events)
    if spec.check:
        result.oracle = sim.oracle.verify()
    if spec.verify:
        program.verify(result.memory)
    return result


def _json_worker(spec: ExperimentSpec) -> str:
    """Default pool worker: run the spec, return the result as JSON."""
    return execute_spec(spec).to_json()


def _coerce_result(payload: Any) -> SimResult:
    if isinstance(payload, SimResult):
        return payload
    if isinstance(payload, str):
        return SimResult.from_json(payload)
    raise TypeError(
        f"worker returned {type(payload).__name__}, "
        "expected SimResult or its JSON"
    )


@dataclass
class RunOutcome:
    """What happened to one spec: a result, a cache hit, or an error."""

    spec: ExperimentSpec
    result: SimResult | None = None
    cached: bool = False
    attempts: int = 0
    duration_s: float = 0.0
    error: str | None = None
    #: the spec actually executed — differs from ``spec`` only when a
    #: crash retry re-ran with an offset seed
    executed_spec: ExperimentSpec | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


class Runner:
    """Executes spec lists concurrently, with caching and retries.

    Parameters:

    * ``max_workers`` — worker processes; ``None`` = auto (at least 2),
      ``1`` or fewer = in-process serial execution.
    * ``cache`` — a :class:`ResultCache` (or its root path) consulted
      before running and updated after; ``None`` disables caching.
    * ``timeout`` — per-run wall-clock budget in seconds (pool mode
      only; serial runs cannot be preempted).
    * ``retries`` — how many times a crashed or timed-out run is
      retried; each retry offsets the seed by ``retry_seed_offset`` so
      a deterministic crash isn't replayed verbatim.
    * ``artifacts`` — an :class:`ArtifactStore` (or path) appended to
      after every outcome.
    * ``progress`` — ``True`` for per-run progress/ETA lines on stderr,
      or a callable receiving each line.
    * ``worker`` — the pool task (a picklable
      ``spec -> SimResult | json-str``); replaceable for testing.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        cache: ResultCache | str | Path | None = None,
        timeout: float | None = None,
        retries: int = 1,
        retry_seed_offset: int = 100_003,
        artifacts: ArtifactStore | str | Path | None = None,
        progress: bool | Callable[[str], None] = False,
        worker: Callable[[ExperimentSpec], Any] | None = None,
    ) -> None:
        if max_workers is None:
            max_workers = max(2, min(4, os.cpu_count() or 2))
        self.max_workers = max_workers
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_seed_offset = retry_seed_offset
        if isinstance(artifacts, (str, Path)):
            artifacts = ArtifactStore(artifacts)
        self.artifacts = artifacts
        self.progress = progress
        self._worker = worker
        #: times the runner degraded to serial execution (pool failure)
        self.serial_fallbacks = 0

    # -- public entry points --------------------------------------------
    def run(
        self, specs: Iterable[ExperimentSpec] | RunMatrix
    ) -> list[RunOutcome]:
        """Execute every spec; outcomes are in spec order."""
        spec_list = specs.specs() if isinstance(specs, RunMatrix) else list(specs)
        outcomes: list[RunOutcome | None] = [None] * len(spec_list)
        self._done_count = 0
        self._total = len(spec_list)
        self._t0 = time.monotonic()

        pending: list[int] = []
        for i, spec in enumerate(spec_list):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                outcomes[i] = RunOutcome(spec, hit, cached=True)
                self._finish(outcomes[i])
            else:
                pending.append(i)

        if pending:
            if self.max_workers >= 2 and len(pending) > 1:
                leftover = self._run_pool(spec_list, pending, outcomes)
            else:
                leftover = pending
            for i in leftover:
                outcomes[i] = self._run_serial(spec_list[i])
                self._finish(outcomes[i])
        return outcomes  # type: ignore[return-value]

    def run_one(self, spec: ExperimentSpec) -> RunOutcome:
        """Execute a single spec serially (cache consulted as usual)."""
        return self.run([spec])[0]

    # -- pool path -------------------------------------------------------
    def _make_pool(self, n_tasks: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=min(self.max_workers, n_tasks))

    def _run_pool(
        self,
        specs: Sequence[ExperimentSpec],
        pending: list[int],
        outcomes: list[RunOutcome | None],
    ) -> list[int]:
        """Run ``pending`` indices in a process pool.

        Returns the indices left unfinished when the pool could not be
        created or broke mid-run — the caller finishes those serially.
        """
        worker = self._worker or _json_worker
        try:
            pool = self._make_pool(len(pending))
        except (OSError, NotImplementedError, PermissionError):
            self.serial_fallbacks += 1
            return pending
        try:
            tasks = {
                i: (pool.submit(worker, specs[i]), 1, specs[i])
                for i in pending
            }
            for i in pending:
                while outcomes[i] is None:
                    future, attempt, run_spec = tasks[i]
                    start = time.monotonic()
                    try:
                        result = _coerce_result(future.result(self.timeout))
                        outcomes[i] = RunOutcome(
                            specs[i],
                            result,
                            attempts=attempt,
                            duration_s=time.monotonic() - start,
                            executed_spec=run_spec,
                        )
                        self._finish(outcomes[i])
                        break
                    except FuturesTimeoutError:
                        future.cancel()
                        error = f"timed out after {self.timeout}s"
                    except BrokenProcessPool:
                        self.serial_fallbacks += 1
                        return [j for j in pending if outcomes[j] is None]
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                    if attempt > self.retries:
                        outcomes[i] = RunOutcome(
                            specs[i], attempts=attempt, error=error
                        )
                        self._finish(outcomes[i])
                        break
                    retry_spec = self._retry_spec(specs[i], attempt)
                    try:
                        tasks[i] = (
                            pool.submit(worker, retry_spec),
                            attempt + 1,
                            retry_spec,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        self.serial_fallbacks += 1
                        return [j for j in pending if outcomes[j] is None]
            return []
        finally:
            # don't block on tasks abandoned by a timeout
            pool.shutdown(wait=False, cancel_futures=True)

    # -- serial path -----------------------------------------------------
    def _run_serial(self, spec: ExperimentSpec) -> RunOutcome:
        error = "not attempted"
        for attempt in range(1, self.retries + 2):
            run_spec = spec if attempt == 1 else self._retry_spec(spec, attempt - 1)
            start = time.monotonic()
            try:
                if self._worker is None:
                    result = execute_spec(run_spec)
                else:
                    result = _coerce_result(self._worker(run_spec))
                return RunOutcome(
                    spec,
                    result,
                    attempts=attempt,
                    duration_s=time.monotonic() - start,
                    executed_spec=run_spec,
                )
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
        return RunOutcome(spec, attempts=self.retries + 1, error=error)

    # -- shared plumbing -------------------------------------------------
    def _retry_spec(self, spec: ExperimentSpec, attempt: int) -> ExperimentSpec:
        return spec.with_(seed=spec.seed + attempt * self.retry_seed_offset)

    def _finish(self, outcome: RunOutcome) -> None:
        self._done_count += 1
        if outcome.ok and not outcome.cached and self.cache is not None:
            # cache under the spec that actually ran (honest on retries)
            self.cache.put(outcome.executed_spec or outcome.spec, outcome.result)
        if self.artifacts is not None:
            self.artifacts.append(
                outcome.spec,
                outcome.result,
                cached=outcome.cached,
                attempts=outcome.attempts,
                duration_s=outcome.duration_s,
                error=outcome.error,
            )
        self._report(outcome)

    def _report(self, outcome: RunOutcome) -> None:
        if not self.progress:
            return
        done, total = self._done_count, self._total
        if outcome.cached:
            status = "cache hit"
        elif outcome.ok:
            status = (
                f"{outcome.result.total_cycles:,} cycles "
                f"({outcome.duration_s:.1f}s)"
            )
        else:
            status = f"FAILED: {outcome.error}"
        elapsed = time.monotonic() - self._t0
        eta = elapsed / done * (total - done) if done else 0.0
        line = (
            f"[{done:>{len(str(total))}}/{total}] "
            f"{outcome.spec.label()}: {status} | ETA {eta:.0f}s"
        )
        if callable(self.progress):
            self.progress(line)
        else:
            print(line, file=sys.stderr)


def run_experiment(
    spec: ExperimentSpec | str | None = None,
    *,
    cache: ResultCache | str | Path | None = None,
    **spec_kwargs: Any,
) -> SimResult:
    """Run one experiment, optionally through a result cache.

    Accepts a ready :class:`ExperimentSpec`, or a workload name plus
    spec keyword arguments::

        run_experiment("genome", scheme="suv", seed=7)
    """
    if isinstance(spec, str):
        spec = ExperimentSpec(workload=spec, **spec_kwargs)
    elif spec is None:
        spec = ExperimentSpec(**spec_kwargs)
    elif spec_kwargs:
        raise TypeError("pass either a spec or spec keyword arguments, not both")
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            return hit
    result = execute_spec(spec)
    if cache is not None:
        cache.put(spec, result)
    return result


def run_matrix(
    specs: Iterable[ExperimentSpec] | RunMatrix, **runner_kwargs: Any
) -> list[RunOutcome]:
    """Run a matrix (or any iterable of specs) through a :class:`Runner`."""
    return Runner(**runner_kwargs).run(specs)
