"""Concurrent experiment execution.

:class:`Runner` executes :class:`~repro.runner.spec.ExperimentSpec`
lists with a ``ProcessPoolExecutor``: per-run timeouts, bounded retry
with a fresh seed offset on crash, and graceful degradation to
in-process serial execution when process pools are unavailable (or
break mid-run).  Results cross the process boundary as
:meth:`SimResult.to_json` strings, the same representation the on-disk
cache uses, so parallel and serial execution are observationally
identical.

The module-level conveniences are the stable public API surface:

* :func:`execute_spec` — run one spec in-process, no pooling/caching;
* :func:`run_experiment` — one spec through the (optional) cache;
* :func:`run_matrix` — many specs (or a :class:`RunMatrix`) through a
  :class:`Runner`.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import RetryBudgetExhausted
from repro.runner.artifacts import ArtifactStore
from repro.runner.cache import ResultCache
from repro.runner.journal import CampaignJournal, SpecState
from repro.runner.spec import ExperimentSpec, RunMatrix
from repro.simulator import SimResult, Simulator


def execute_spec(spec: ExperimentSpec, trace: Any = None) -> SimResult:
    """Build and run the simulation a spec describes, in-process.

    ``spec.fault_plan`` arms a fault injector for the run;
    ``spec.check`` runs the atomicity oracle afterwards (raising
    :class:`~repro.errors.OracleViolation` on a violation) and attaches
    its report to the result.  Both happen here, inside the worker, so
    they behave identically in serial and process-pool execution.

    ``trace`` (a :class:`~repro.trace.Tracer`, ``True``, or a ring
    capacity) arms event tracing for the run; inspect it afterwards via
    the returned result's ``phase_breakdown`` or the tracer object.
    Tracing never changes simulated timing, so cached results stay
    valid.
    """
    from repro.faults import parse_plan
    from repro.workloads import make_workload

    config = spec.build_config()
    n_threads = spec.threads or config.n_cores
    program = make_workload(
        spec.workload,
        n_threads=n_threads,
        seed=spec.seed,
        scale=spec.scale,
        **dict(spec.workload_kwargs),
    )
    sim = Simulator(
        config,
        scheme=spec.scheme,
        seed=spec.seed,
        faults=parse_plan(spec.fault_plan),
        oracle=spec.check,
        trace=trace,
    )
    result = sim.run(program.threads, max_events=spec.max_events)
    if spec.check:
        result.oracle = sim.oracle.verify()
    if spec.verify:
        program.verify(result.memory)
    return result


def _json_worker(spec: ExperimentSpec) -> str:
    """Default pool worker: run the spec, return the result as JSON."""
    return execute_spec(spec).to_json()


def _warm_init() -> None:
    """Pool initializer: pay the heavy imports once per worker process.

    Without it every worker imports the simulator stack lazily inside
    its first task, so short specs measure import time, not simulation.
    """
    import repro.simulator  # noqa: F401
    import repro.workloads  # noqa: F401


def _chunk_worker(
    worker: Callable[[ExperimentSpec], Any], specs: tuple[ExperimentSpec, ...]
) -> list[tuple[str, Any, float]]:
    """Run a chunk of specs in one task, amortizing submit/pickle cost.

    Returns one ``("ok", payload, seconds)`` or ``("err", message,
    seconds)`` triple per spec — a crashing spec must not take its chunk
    siblings down with it.
    """
    out: list[tuple[str, Any, float]] = []
    for spec in specs:
        start = time.monotonic()
        try:
            out.append(("ok", worker(spec), time.monotonic() - start))
        except Exception as exc:
            out.append((
                "err",
                f"{type(exc).__name__}: {exc}",
                time.monotonic() - start,
            ))
    return out


def _coerce_result(payload: Any) -> SimResult:
    if isinstance(payload, SimResult):
        return payload
    if isinstance(payload, str):
        return SimResult.from_json(payload)
    raise TypeError(
        f"worker returned {type(payload).__name__}, "
        "expected SimResult or its JSON"
    )


def _try_coerce(payload: Any) -> tuple[SimResult | None, str]:
    """(result, "") for a sound payload, (None, reason) for a corrupt one.

    A worker that crosses the process boundary with a mangled payload
    (truncated pickle, corrupted JSON, wrong type) must count as a
    *retryable spec failure*, not crash the whole campaign in the
    parent — the chaos harness injects exactly this.
    """
    try:
        return _coerce_result(payload), ""
    except Exception as exc:
        return None, f"corrupt result payload: {type(exc).__name__}: {exc}"


@dataclass
class RunOutcome:
    """What happened to one spec: a result, a cache hit, or an error."""

    spec: ExperimentSpec
    result: SimResult | None = None
    cached: bool = False
    attempts: int = 0
    duration_s: float = 0.0
    error: str | None = None
    #: the typed error class name for terminal failures (e.g.
    #: ``"RetryBudgetExhausted"``) — failures are typed, never bare text
    error_type: str | None = None
    #: the spec actually executed — differs from ``spec`` only when a
    #: crash retry re-ran with an offset seed
    executed_spec: ExperimentSpec | None = None
    #: True when a resumed campaign satisfied this spec from a previous
    #: session (journal said done, cache supplied the bytes)
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


class Runner:
    """Executes spec lists concurrently, with caching and retries.

    Parameters:

    * ``max_workers`` — worker processes; ``None`` = auto (at least 2),
      ``1`` or fewer = in-process serial execution.
    * ``cache`` — a :class:`ResultCache` (or its root path) consulted
      before running and updated after; ``None`` disables caching.
    * ``timeout`` — per-run wall-clock budget in seconds (pool mode
      only; serial runs cannot be preempted).
    * ``retries`` — how many times a crashed or timed-out run is
      retried; each retry offsets the seed by ``retry_seed_offset`` so
      a deterministic crash isn't replayed verbatim.
    * ``artifacts`` — an :class:`ArtifactStore` (or path) appended to
      after every outcome.
    * ``progress`` — ``True`` for per-run progress/ETA lines on stderr,
      or a callable receiving each line.
    * ``worker`` — the pool task (a picklable
      ``spec -> SimResult | json-str``); replaceable for testing.
    * ``chunk_size`` — specs per pool task when no ``timeout`` is set;
      ``None`` sizes chunks automatically.
    * ``journal`` — a :class:`~repro.runner.journal.CampaignJournal`
      (or its path): every spec state transition is checkpointed
      write-ahead, and an existing journal resumes the campaign it
      records (done specs are satisfied from the cache, in-flight and
      failed ones re-run).
    * ``breaker_threshold`` / ``backoff_base_s`` / ``backoff_max_s`` /
      ``supervision_seed`` — worker supervision: after a pool breakage
      the pool is recycled and the unresolved specs re-dispatched,
      waiting an exponentially growing backoff with seed-deterministic
      jitter between recycles; after ``breaker_threshold`` consecutive
      breakages the circuit opens and the runner degrades to serial
      execution instead of thrashing pool spawns.

    The worker pool is *persistent*: created on first use (workers
    pre-import the simulator stack) and reused by later ``run()`` calls,
    so repeated small matrices skip process spawn and import cost.  It
    is recycled automatically after a timeout or pool breakage; call
    :meth:`close` (or use the runner as a context manager) to release
    it deterministically.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        cache: ResultCache | str | Path | None = None,
        timeout: float | None = None,
        retries: int = 1,
        retry_seed_offset: int = 100_003,
        artifacts: ArtifactStore | str | Path | None = None,
        progress: bool | Callable[[str], None] = False,
        worker: Callable[[ExperimentSpec], Any] | None = None,
        chunk_size: int | None = None,
        journal: CampaignJournal | str | Path | None = None,
        breaker_threshold: int = 3,
        backoff_base_s: float = 0.1,
        backoff_max_s: float = 5.0,
        supervision_seed: int = 0,
    ) -> None:
        if max_workers is None:
            max_workers = max(2, min(4, os.cpu_count() or 2))
        self.max_workers = max_workers
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_seed_offset = retry_seed_offset
        if isinstance(artifacts, (str, Path)):
            artifacts = ArtifactStore(artifacts)
        self.artifacts = artifacts
        self.progress = progress
        self._worker = worker
        #: specs per pool task when no per-run ``timeout`` is set;
        #: ``None`` = auto (sized so every worker gets several chunks)
        self.chunk_size = chunk_size
        self._owns_journal = isinstance(journal, (str, Path))
        if isinstance(journal, (str, Path)):
            journal = CampaignJournal(journal)
        self.journal = journal
        self.breaker_threshold = max(1, breaker_threshold)
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.supervision_seed = supervision_seed
        #: times the runner degraded to serial execution (pool failure)
        self.serial_fallbacks = 0
        #: pool breakages seen over this runner's lifetime
        self.pool_breakages = 0
        #: True once ``breaker_threshold`` consecutive breakages opened
        #: the circuit: all further execution is serial
        self.circuit_open = False
        #: cache writes that failed and were tolerated (result kept)
        self.cache_put_failures = 0
        #: supervision events (pool_breakage / circuit_open /
        #: cache_put_failure dicts) in occurrence order
        self.degradation_events: list[dict] = []
        self._consecutive_breaks = 0
        #: journal state of prior sessions, keyed by spec hash (set by
        #: ``_run_indexed`` when a journal is armed)
        self._prior: dict[str, SpecState] = {}
        if self.cache is not None and self.journal is not None:
            if self.cache.quarantine_hook is None:
                self.cache.quarantine_hook = self.journal.record_quarantine
        #: the persistent warm pool (created lazily, reused across
        #: ``run()`` calls, recycled after a timeout or pool breakage)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0

    # -- public entry points --------------------------------------------
    def run(
        self, specs: Iterable[ExperimentSpec] | RunMatrix
    ) -> list[RunOutcome]:
        """Execute every spec; outcomes are in spec order."""
        spec_list = specs.specs() if isinstance(specs, RunMatrix) else list(specs)
        outcomes: list[RunOutcome | None] = [None] * len(spec_list)
        for i, outcome in self._run_indexed(spec_list):
            outcomes[i] = outcome
        return outcomes  # type: ignore[return-value]

    def run_iter(
        self, specs: Iterable[ExperimentSpec] | RunMatrix
    ) -> Iterator[RunOutcome]:
        """Yield each outcome as soon as it is known (streaming).

        Cache hits come first; pooled results follow in completion
        order (submission order when a per-run ``timeout`` is set,
        whose bookkeeping needs ordered waits).  Useful for long
        matrices: consumers can plot/persist results while the rest of
        the sweep is still running, instead of gathering at the end.
        """
        spec_list = specs.specs() if isinstance(specs, RunMatrix) else list(specs)
        for _i, outcome in self._run_indexed(spec_list):
            yield outcome

    def run_one(self, spec: ExperimentSpec) -> RunOutcome:
        """Execute a single spec serially (cache consulted as usual)."""
        return self.run([spec])[0]

    def close(self) -> None:
        """Shut down the warm worker pool (idempotent)."""
        self._close_pool()
        if self._owns_journal and self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- scheduling core --------------------------------------------------
    def _run_indexed(
        self, spec_list: Sequence[ExperimentSpec]
    ) -> Iterator[tuple[int, RunOutcome]]:
        """Yield ``(index, outcome)`` pairs as each spec resolves."""
        self._done_count = 0
        self._total = len(spec_list)
        self._t0 = time.monotonic()
        self._prior = (
            self.journal.begin(spec_list).specs
            if self.journal is not None else {}
        )

        pending: list[int] = []
        for i, spec in enumerate(spec_list):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                prior = self._prior.get(spec.spec_hash())
                outcome = RunOutcome(
                    spec, hit, cached=True,
                    resumed=prior is not None and prior.status == "done",
                )
                self._finish(outcome)
                yield i, outcome
            else:
                pending.append(i)

        leftover = pending
        if self.max_workers >= 2 and len(pending) > 1 and not self.circuit_open:
            leftover = []
            yield from self._pool_indexed(spec_list, pending, leftover)
        for i in leftover:
            outcome = self._run_serial(spec_list[i])
            self._finish(outcome)
            yield i, outcome

    # -- pool path -------------------------------------------------------
    def _make_pool(self, n_tasks: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(self.max_workers, n_tasks),
            initializer=_warm_init,
        )

    def _ensure_pool(self, n_tasks: int) -> ProcessPoolExecutor:
        """The warm pool, created on first use and kept across runs."""
        want = min(self.max_workers, n_tasks)
        if self._pool is not None and self._pool_workers < want:
            # a bigger matrix arrived: grow by recycling
            self._close_pool()
        if self._pool is None:
            self._pool = self._make_pool(n_tasks)
            self._pool_workers = want
        return self._pool

    def _close_pool(self) -> None:
        pool, self._pool = self._pool, None
        self._pool_workers = 0
        if pool is not None:
            # don't block on tasks abandoned by a timeout
            pool.shutdown(wait=False, cancel_futures=True)

    def _pool_indexed(
        self,
        specs: Sequence[ExperimentSpec],
        pending: list[int],
        leftover: list[int],
    ) -> Iterator[tuple[int, RunOutcome]]:
        """Run ``pending`` indices in the warm pool, yielding as resolved.

        Supervision loop: when the pool breaks mid-run, the unresolved
        indices are re-dispatched to a recycled pool (after an
        exponential, jittered backoff) instead of being dumped to
        serial execution wholesale.  Only after ``breaker_threshold``
        consecutive breakages — or when a pool cannot be created at
        all — does the circuit open and the remainder go to
        ``leftover`` for the caller's serial path.
        """
        worker = self._worker or _json_worker
        remaining = list(pending)
        while remaining and not self.circuit_open:
            try:
                pool = self._ensure_pool(len(remaining))
            except (OSError, NotImplementedError, PermissionError):
                self.serial_fallbacks += 1
                break
            broken: list[int] = []
            if self.timeout is None:
                yield from self._pool_chunked(
                    pool, worker, specs, remaining, broken
                )
            else:
                yield from self._pool_per_spec(
                    pool, worker, specs, remaining, broken
                )
            if not broken:
                self._consecutive_breaks = 0
                remaining = []
            else:
                remaining = broken  # bookkeeping happened in _pool_broke
        leftover.extend(remaining)

    def _pool_chunked(
        self,
        pool: ProcessPoolExecutor,
        worker: Callable[[ExperimentSpec], Any],
        specs: Sequence[ExperimentSpec],
        pending: list[int],
        broken: list[int],
    ) -> Iterator[tuple[int, RunOutcome]]:
        """Chunked streaming path (no per-run timeout to police).

        Specs travel to the pool several per task so the pickle/submit
        overhead amortizes, and resolved outcomes are yielded in
        completion order.  Specs that failed inside a chunk (including
        corrupt payloads) are retried individually with the usual seed
        offset.
        """
        chunk_size = self.chunk_size or max(
            1, len(pending) // (max(1, self._pool_workers) * 4)
        )
        chunks = [
            pending[at:at + chunk_size]
            for at in range(0, len(pending), chunk_size)
        ]
        unresolved: set[int] = set(pending)
        for chunk in chunks:
            for i in chunk:
                self._journal_running(specs[i], attempt=1)
        try:
            futures = {
                pool.submit(
                    _chunk_worker, worker, tuple(specs[i] for i in chunk)
                ): chunk
                for chunk in chunks
            }
        except (BrokenProcessPool, RuntimeError):
            self._pool_broke(unresolved, broken)
            return
        retryable: list[tuple[int, str]] = []
        for future in as_completed(futures):
            chunk = futures[future]
            try:
                payloads = future.result()
            except BrokenProcessPool:
                self._pool_broke(unresolved, broken)
                return
            for i, (status, payload, seconds) in zip(chunk, payloads):
                result = None
                if status == "ok":
                    result, error = _try_coerce(payload)
                else:
                    error = payload
                if result is not None:
                    outcome = RunOutcome(
                        specs[i],
                        result,
                        attempts=1,
                        duration_s=seconds,
                        executed_spec=specs[i],
                    )
                    unresolved.discard(i)
                    self._finish(outcome)
                    yield i, outcome
                elif self.retries <= 0:
                    outcome = self._exhausted(specs[i], 1, error)
                    unresolved.discard(i)
                    self._finish(outcome)
                    yield i, outcome
                else:
                    retryable.append((i, error))
        for i, error in retryable:
            outcome = self._pool_retry(pool, worker, specs[i], error)
            if outcome is None:
                self._pool_broke(unresolved, broken)
                return
            unresolved.discard(i)
            self._finish(outcome)
            yield i, outcome

    def _pool_retry(
        self,
        pool: ProcessPoolExecutor,
        worker: Callable[[ExperimentSpec], Any],
        spec: ExperimentSpec,
        error: str,
    ) -> RunOutcome | None:
        """Retry one chunk-failed spec individually; None = pool broke.

        Attempt ``k`` runs with the seed offset ``(k-1) *
        retry_seed_offset`` so a deterministic simulation crash is not
        replayed verbatim (offset 0 = verbatim re-runs, the chaos
        harness's choice, where faults are transient by construction).
        """
        for attempt in range(2, self.retries + 2):
            run_spec = self._retry_spec(spec, attempt - 1)
            self._journal_running(spec, attempt=attempt)
            start = time.monotonic()
            try:
                payload = pool.submit(worker, run_spec).result()
            except BrokenProcessPool:
                return None
            except RuntimeError:
                # pool already unusable (shutting down)
                return None
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                continue
            result, coerce_error = _try_coerce(payload)
            if result is not None:
                return RunOutcome(
                    spec,
                    result,
                    attempts=attempt,
                    duration_s=time.monotonic() - start,
                    executed_spec=run_spec,
                )
            error = coerce_error
        return self._exhausted(spec, self.retries + 1, error)

    def _pool_broke(self, unresolved: set[int], broken: list[int]) -> None:
        """Handle a pool breakage: recycle, back off, maybe open circuit.

        The unresolved indices go back to ``broken`` for the supervisor
        loop in :meth:`_pool_indexed` to re-dispatch (or finish serially
        once the circuit opens).
        """
        self.pool_breakages += 1
        self._consecutive_breaks += 1
        self._close_pool()
        broken.extend(sorted(unresolved))
        event: dict[str, Any] = {
            "kind": "pool_breakage",
            "breakage": self.pool_breakages,
            "consecutive": self._consecutive_breaks,
            "unresolved": len(unresolved),
        }
        if self._consecutive_breaks >= self.breaker_threshold:
            self.circuit_open = True
            self.serial_fallbacks += 1
            event["circuit"] = "open"
            self._degrade(event)
            self._degrade({
                "kind": "circuit_open",
                "after_breakages": self._consecutive_breaks,
            })
            return
        backoff = min(
            self.backoff_max_s,
            self.backoff_base_s * 2 ** (self._consecutive_breaks - 1),
        )
        backoff *= 1.0 + self._jitter(self.pool_breakages)
        event["backoff_s"] = round(backoff, 6)
        self._degrade(event)
        if backoff > 0:
            time.sleep(backoff)

    def _jitter(self, n: int) -> float:
        """Deterministic jitter in [0, 1) for the n-th breakage.

        Seeded so chaos campaigns replay identically: same supervision
        seed and breakage history, same backoff schedule.
        """
        digest = hashlib.sha256(
            f"supervision:{self.supervision_seed}:{n}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _degrade(self, event: dict) -> None:
        self.degradation_events.append(event)
        if self.journal is not None:
            self.journal.record_degradation(event)

    def _pool_per_spec(
        self,
        pool: ProcessPoolExecutor,
        worker: Callable[[ExperimentSpec], Any],
        specs: Sequence[ExperimentSpec],
        pending: list[int],
        broken: list[int],
    ) -> Iterator[tuple[int, RunOutcome]]:
        """One future per spec, waited in submission order.

        Used when a per-run ``timeout`` is set: the budget applies to
        each spec separately, which needs an ordered wait per future.
        A timed-out task cannot be preempted, so the pool is recycled
        at the end of the run rather than handed a poisoned worker.
        """
        timed_out = False
        for i in pending:
            self._journal_running(specs[i], attempt=1)
        try:
            tasks = {
                i: (pool.submit(worker, specs[i]), 1, specs[i])
                for i in pending
            }
        except (BrokenProcessPool, RuntimeError):
            self._pool_broke(set(pending), broken)
            return
        unresolved = set(pending)
        for i in pending:
            while i in unresolved:
                future, attempt, run_spec = tasks[i]
                start = time.monotonic()
                result = None
                try:
                    result, error = _try_coerce(future.result(self.timeout))
                except FuturesTimeoutError:
                    future.cancel()
                    timed_out = True
                    error = f"timed out after {self.timeout}s"
                except BrokenProcessPool:
                    self._pool_broke(unresolved, broken)
                    return
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                if result is not None:
                    outcome = RunOutcome(
                        specs[i],
                        result,
                        attempts=attempt,
                        duration_s=time.monotonic() - start,
                        executed_spec=run_spec,
                    )
                    unresolved.discard(i)
                    self._finish(outcome)
                    yield i, outcome
                    break
                if attempt > self.retries:
                    outcome = self._exhausted(specs[i], attempt, error)
                    unresolved.discard(i)
                    self._finish(outcome)
                    yield i, outcome
                    break
                retry_spec = self._retry_spec(specs[i], attempt)
                self._journal_running(specs[i], attempt=attempt + 1)
                try:
                    tasks[i] = (
                        pool.submit(worker, retry_spec),
                        attempt + 1,
                        retry_spec,
                    )
                except (BrokenProcessPool, RuntimeError):
                    self._pool_broke(unresolved, broken)
                    return
        if timed_out:
            # abandoned tasks still occupy workers; start fresh next run
            self._close_pool()

    # -- serial path -----------------------------------------------------
    def _run_serial(self, spec: ExperimentSpec) -> RunOutcome:
        error = "not attempted"
        for attempt in range(1, self.retries + 2):
            run_spec = spec if attempt == 1 else self._retry_spec(spec, attempt - 1)
            self._journal_running(spec, attempt=attempt)
            start = time.monotonic()
            try:
                if self._worker is None:
                    result = execute_spec(run_spec)
                else:
                    result = _coerce_result(self._worker(run_spec))
                return RunOutcome(
                    spec,
                    result,
                    attempts=attempt,
                    duration_s=time.monotonic() - start,
                    executed_spec=run_spec,
                )
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
        return self._exhausted(spec, self.retries + 1, error)

    # -- shared plumbing -------------------------------------------------
    def _retry_spec(self, spec: ExperimentSpec, attempt: int) -> ExperimentSpec:
        return spec.with_(seed=spec.seed + attempt * self.retry_seed_offset)

    def _exhausted(
        self, spec: ExperimentSpec, attempts: int, error: str
    ) -> RunOutcome:
        """A terminal, typed failure: the spec's retry budget is gone."""
        exc = RetryBudgetExhausted(
            "retry budget exhausted",
            spec_label=spec.label(),
            attempts=attempts,
            last_error=error,
        )
        return RunOutcome(
            spec,
            attempts=attempts,
            error=str(exc),
            error_type=type(exc).__name__,
        )

    def _journal_running(self, spec: ExperimentSpec, attempt: int) -> None:
        if self.journal is not None:
            self.journal.record_running(spec.spec_hash(), attempt)

    def _finish(self, outcome: RunOutcome) -> None:
        self._done_count += 1
        cache_ok = outcome.cached
        if outcome.ok and not outcome.cached and self.cache is not None:
            try:
                # cache under the spec that actually ran (honest on retries)
                self.cache.put(
                    outcome.executed_spec or outcome.spec, outcome.result
                )
                cache_ok = True
            except OSError as exc:
                # a failing cache must not take the campaign down: the
                # result is still returned/journaled, just not reusable
                self.cache_put_failures += 1
                self._degrade({
                    "kind": "cache_put_failure",
                    "spec_hash": outcome.spec.spec_hash(),
                    "error": f"{type(exc).__name__}: {exc}",
                })
        if self.journal is not None:
            spec_hash = outcome.spec.spec_hash()
            if outcome.ok:
                self.journal.record_done(
                    spec_hash,
                    attempts=outcome.attempts,
                    duration_s=outcome.duration_s,
                    cached=outcome.cached,
                    resumed=outcome.resumed,
                    cache_ok=cache_ok,
                    result_digest=hashlib.sha256(
                        outcome.result.to_json().encode()
                    ).hexdigest(),
                )
            else:
                self.journal.record_failed(
                    spec_hash,
                    attempts=outcome.attempts,
                    error=outcome.error or "",
                    error_type=outcome.error_type,
                )
        if self.artifacts is not None:
            self.artifacts.append(
                outcome.spec,
                outcome.result,
                cached=outcome.cached,
                attempts=outcome.attempts,
                duration_s=outcome.duration_s,
                error=outcome.error,
                error_type=outcome.error_type,
                resumed=outcome.resumed,
            )
        self._report(outcome)

    def _report(self, outcome: RunOutcome) -> None:
        if not self.progress:
            return
        done, total = self._done_count, self._total
        if outcome.cached:
            status = "cache hit"
        elif outcome.ok:
            status = (
                f"{outcome.result.total_cycles:,} cycles "
                f"({outcome.duration_s:.1f}s)"
            )
        else:
            status = f"FAILED: {outcome.error}"
        elapsed = time.monotonic() - self._t0
        eta = elapsed / done * (total - done) if done else 0.0
        line = (
            f"[{done:>{len(str(total))}}/{total}] "
            f"{outcome.spec.label()}: {status} | ETA {eta:.0f}s"
        )
        if callable(self.progress):
            self.progress(line)
        else:
            print(line, file=sys.stderr)


def run_experiment(
    spec: ExperimentSpec | str | None = None,
    *,
    cache: ResultCache | str | Path | None = None,
    **spec_kwargs: Any,
) -> SimResult:
    """Run one experiment, optionally through a result cache.

    Accepts a ready :class:`ExperimentSpec`, or a workload name plus
    spec keyword arguments::

        run_experiment("genome", scheme="suv", seed=7)
    """
    if isinstance(spec, str):
        spec = ExperimentSpec(workload=spec, **spec_kwargs)
    elif spec is None:
        spec = ExperimentSpec(**spec_kwargs)
    elif spec_kwargs:
        raise TypeError("pass either a spec or spec keyword arguments, not both")
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            return hit
    result = execute_spec(spec)
    if cache is not None:
        cache.put(spec, result)
    return result


def run_matrix(
    specs: Iterable[ExperimentSpec] | RunMatrix, **runner_kwargs: Any
) -> list[RunOutcome]:
    """Run a matrix (or any iterable of specs) through a :class:`Runner`."""
    with Runner(**runner_kwargs) as runner:
        return runner.run(specs)
