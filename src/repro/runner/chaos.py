"""Runner-level chaos harness: seed-deterministic campaign fault injection.

The sibling of :mod:`repro.faults` one layer up: where ``repro.faults``
injects faults *inside* a simulation (signature storms, killed
transactions), this module injects faults into the **campaign
machinery itself** — worker crashes, worker hangs, abrupt worker death
(breaking the process pool), corrupt result payloads crossing the
process boundary, failing cache writes, and the campaign process being
killed mid-flight.  It exists to prove the resilience invariants the
journal/cache/supervision layer claims:

* **no spec lost** — every spec reaches a terminal journal state;
* **no spec run twice to completion** — a completed-and-cached spec is
  never re-executed (re-execution is justified only by a failed cache
  write or a quarantined entry);
* **resume converges** — a killed campaign, resumed over the same
  journal and cache, finishes every spec;
* **byte-identical results** — the merged results of killed+resumed
  equal an uninterrupted run of the same matrix, byte for byte;
* **failures are terminal and typed** — anything that does fail carries
  a typed error (``RetryBudgetExhausted``), never silently vanishes.

Injection is deterministic: each (plan seed, spec hash, fault kind)
triple hashes to a uniform roll, and each armed fault fires **once**
per spec (a marker file under the campaign root records the firing), so
retries and resumed sessions heal — the transient-fault model the
supervision layer is built for.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.runner.cache import ResultCache
from repro.runner.executor import Runner, RunOutcome, execute_spec
from repro.runner.journal import CampaignJournal
from repro.runner.report import CampaignReport
from repro.runner.spec import ExperimentSpec, RunMatrix


class ChaosCrash(RuntimeError):
    """The injected worker crash (an ordinary in-worker exception)."""


def chaos_roll(seed: int, key: str, kind: str) -> float:
    """Deterministic uniform roll in [0, 1) for one (spec, fault) pair."""
    digest = hashlib.sha256(f"chaos:{seed}:{key}:{kind}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ChaosPlan:
    """What to break, how often, under which seed.

    Rates are per-spec probabilities; ``seed`` makes every decision
    reproducible.  Each armed fault fires once per spec (marker files
    under the campaign root), so the faults are transient: a retry or a
    resumed session runs clean.
    """

    name: str = "custom"
    seed: int = 0
    #: worker raises :class:`ChaosCrash` (clean in-worker exception)
    crash_rate: float = 0.0
    #: worker calls ``os._exit`` — kills the worker process and breaks
    #: the pool, exercising recycling/backoff/circuit supervision
    pool_kill_rate: float = 0.0
    #: worker sleeps ``hang_s`` (drive with a runner ``timeout``!)
    hang_rate: float = 0.0
    hang_s: float = 30.0
    #: worker returns a truncated/mangled result payload
    corrupt_rate: float = 0.0
    #: ``ResultCache.put`` raises ``OSError`` (via :class:`FlakyCache`)
    cache_fail_rate: float = 0.0

    def with_(self, **changes: Any) -> "ChaosPlan":
        return replace(self, **changes)


#: named chaos presets for tests and the CI chaos job
CHAOS_PRESETS: dict[str, ChaosPlan] = {
    "crash": ChaosPlan(name="crash", crash_rate=0.6),
    "pool-kill": ChaosPlan(name="pool-kill", pool_kill_rate=0.4),
    "hang": ChaosPlan(name="hang", hang_rate=0.5, hang_s=120.0),
    "corrupt": ChaosPlan(name="corrupt", corrupt_rate=0.6),
    "cache-flaky": ChaosPlan(name="cache-flaky", cache_fail_rate=0.6),
    "mixed": ChaosPlan(
        name="mixed", crash_rate=0.3, corrupt_rate=0.3, cache_fail_rate=0.3
    ),
}


def chaos_plan(name: str, seed: int | None = None) -> ChaosPlan:
    """A preset by name, optionally re-seeded."""
    if name not in CHAOS_PRESETS:
        raise ValueError(
            f"unknown chaos preset {name!r}; "
            f"choose from {', '.join(sorted(CHAOS_PRESETS))}"
        )
    plan = CHAOS_PRESETS[name]
    return plan if seed is None else plan.with_(seed=seed)


def _fire_once(plan: ChaosPlan, markers: str, key: str, kind: str,
               rate: float) -> bool:
    """True exactly once per (spec, kind) when the roll arms the fault."""
    if rate <= 0.0 or chaos_roll(plan.seed, key, kind) >= rate:
        return False
    marker = Path(markers) / f"{key}.{kind}"
    try:
        marker.touch(exist_ok=False)
    except FileExistsError:
        return False  # already fired once: the fault has healed
    except OSError:
        return False  # marker dir gone: fail open (no injection)
    return True


class ChaosWorker:
    """A picklable pool worker that injects faults around the real run."""

    def __init__(self, plan: ChaosPlan, markers: str | Path) -> None:
        self.plan = plan
        self.markers = str(markers)

    def _armed(self, key: str, kind: str, rate: float) -> bool:
        return _fire_once(self.plan, self.markers, key, kind, rate)

    def __call__(self, spec: ExperimentSpec) -> str:
        plan = self.plan
        key = spec.spec_hash()
        if self._armed(key, "pool_kill", plan.pool_kill_rate):
            os._exit(13)  # abrupt worker death: breaks the pool
        if self._armed(key, "crash", plan.crash_rate):
            raise ChaosCrash(f"chaos: injected worker crash ({key[:12]})")
        if self._armed(key, "hang", plan.hang_rate):
            time.sleep(plan.hang_s)
        payload = execute_spec(spec).to_json()
        if self._armed(key, "corrupt", plan.corrupt_rate):
            return payload[: len(payload) // 2] + '…chaos-truncated'
        return payload


class FlakyCache(ResultCache):
    """A :class:`ResultCache` whose writes fail on chaos command."""

    def __init__(
        self,
        root: str | Path,
        plan: ChaosPlan,
        markers: str | Path,
        **kwargs: Any,
    ) -> None:
        super().__init__(root, **kwargs)
        self.plan = plan
        self.markers = str(markers)

    def put(self, spec: ExperimentSpec, result: Any) -> Path:
        if _fire_once(
            self.plan, self.markers, spec.spec_hash(), "cache_fail",
            self.plan.cache_fail_rate,
        ):
            raise OSError("chaos: injected cache-write failure")
        return super().put(spec, result)


@dataclass
class ChaosCampaignReport:
    """The verdict of one chaos campaign: invariants, violations, stats."""

    plan: str
    seed: int
    n_specs: int
    killed_after: int | None
    invariants: dict[str, bool] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    campaign: dict[str, Any] = field(default_factory=dict)
    journal_stats: dict[str, Any] = field(default_factory=dict)
    #: faults that actually fired, by kind (from the marker files)
    faults_fired: dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "n_specs": self.n_specs,
            "killed_after": self.killed_after,
            "passed": self.passed,
            "invariants": dict(self.invariants),
            "violations": list(self.violations),
            "campaign": dict(self.campaign),
            "journal": dict(self.journal_stats),
            "faults_fired": dict(self.faults_fired),
        }


def run_chaos_campaign(
    specs: Iterable[ExperimentSpec] | RunMatrix,
    plan: ChaosPlan,
    root: str | Path,
    *,
    jobs: int = 2,
    timeout: float | None = None,
    retries: int = 2,
    kill_after: int | None = None,
    reference: dict[str, str] | None = None,
) -> ChaosCampaignReport:
    """Run a matrix under chaos, kill it, resume it, check the invariants.

    Four phases:

    1. **reference** — every spec executed uninterrupted and in-process;
       the byte-identity baseline (pass a precomputed ``{spec_hash:
       result_json}`` mapping to skip it);
    2. **chaos session** — the matrix through a supervised, journaled,
       cached :class:`Runner` with a :class:`ChaosWorker`; after
       ``kill_after`` resolved outcomes the campaign is abandoned
       mid-flight (the simulated ``SIGKILL``);
    3. **resume session** — a fresh runner over the same journal and
       cache finishes the campaign;
    4. **audit** — the journal is replayed and the resilience
       invariants checked.

    Retries are verbatim (seed offset 0): chaos faults are transient by
    construction, and byte-identity requires re-running the *same*
    spec, exactly the semantics a distributed runner needs for worker
    death.
    """
    spec_list = specs.specs() if isinstance(specs, RunMatrix) else list(specs)
    root = Path(root)
    markers = root / "markers"
    markers.mkdir(parents=True, exist_ok=True)
    journal_path = root / "campaign.journal"
    cache_root = root / "cache"

    if reference is None:
        reference = {
            spec.spec_hash(): execute_spec(spec).to_json()
            for spec in spec_list
        }

    if kill_after is None:
        kill_after = max(1, len(spec_list) // 2)

    def make_runner() -> Runner:
        return Runner(
            max_workers=jobs,
            cache=FlakyCache(cache_root, plan, markers),
            timeout=timeout,
            retries=retries,
            retry_seed_offset=0,  # verbatim retries: faults are transient
            journal=CampaignJournal(journal_path),
            worker=ChaosWorker(plan, markers),
            backoff_base_s=0.0,  # no real sleeping inside the harness
            supervision_seed=plan.seed,
        )

    # -- session 1: run until "killed" ----------------------------------
    first_session: list[RunOutcome] = []
    runner = make_runner()
    try:
        for outcome in runner.run_iter(spec_list):
            first_session.append(outcome)
            if len(first_session) >= kill_after:
                break  # the campaign process "dies" here
    finally:
        runner.close()
        if runner.journal is not None:
            runner.journal.close()

    # -- session 2: resume over the same journal + cache ----------------
    resume_runner = make_runner()
    try:
        # a dropped spec (a None outcome) is precisely the bug this
        # harness exists to catch — audit it, don't crash on it
        outcomes = [o for o in resume_runner.run(spec_list) if o is not None]
        report = CampaignReport.collect(
            outcomes, runner=resume_runner, cache=resume_runner.cache
        )
    finally:
        resume_runner.close()
        if resume_runner.journal is not None:
            resume_runner.journal.close()

    # -- audit -----------------------------------------------------------
    state = CampaignJournal.replay(journal_path)
    verdict = ChaosCampaignReport(
        plan=plan.name,
        seed=plan.seed,
        n_specs=len(spec_list),
        killed_after=kill_after,
        campaign=report.to_dict(),
        journal_stats={
            "sessions": state.sessions,
            "events_specs": len(state.specs),
            "truncated_lines": state.truncated_lines,
            "degradations": len(state.degradations),
        },
    )
    for marker in markers.iterdir():
        kind = marker.suffix.lstrip(".")
        verdict.faults_fired[kind] = verdict.faults_fired.get(kind, 0) + 1
    _check_invariants(verdict, spec_list, outcomes, state, reference)
    return verdict


def _check_invariants(
    verdict: ChaosCampaignReport,
    spec_list: Sequence[ExperimentSpec],
    outcomes: Sequence[RunOutcome],
    state: Any,
    reference: dict[str, str],
) -> None:
    hashes = [spec.spec_hash() for spec in spec_list]

    lost = [h for h in hashes
            if h not in state.specs or not state.specs[h].terminal]
    verdict.invariants["no_spec_lost"] = not lost
    for h in lost:
        verdict.violations.append(f"spec lost (no terminal state): {h[:12]}")

    duplicates = [s for s in state.specs.values() if s.duplicate_completions]
    verdict.invariants["no_duplicate_completion"] = not duplicates
    for s in duplicates:
        verdict.violations.append(
            f"spec completed {s.completions} times "
            f"({s.duplicate_completions} unjustified): {s.spec_hash[:12]}"
        )

    unresolved = [o for o in outcomes if o.result is None and o.error is None]
    verdict.invariants["resume_converged"] = (
        len(outcomes) == len(spec_list) and not unresolved
    )
    if len(outcomes) != len(spec_list):
        verdict.violations.append(
            f"resume resolved {len(outcomes)} of {len(spec_list)} specs"
        )
    for o in unresolved:
        verdict.violations.append(f"unresolved outcome: {o.spec.label()}")

    mismatched = []
    untyped = []
    for outcome in outcomes:
        h = outcome.spec.spec_hash()
        if outcome.ok:
            if outcome.result.to_json() != reference.get(h):
                mismatched.append(outcome)
        elif not outcome.error_type:
            untyped.append(outcome)
    verdict.invariants["results_byte_identical"] = not mismatched
    for o in mismatched:
        verdict.violations.append(
            f"result differs from uninterrupted run: {o.spec.label()}"
        )
    verdict.invariants["failures_typed"] = not untyped
    for o in untyped:
        verdict.violations.append(
            f"terminal failure without a typed error: {o.spec.label()}"
        )


def write_chaos_report(report: ChaosCampaignReport, path: str | Path) -> Path:
    """Serialize a chaos verdict next to its journal for CI artifacts."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return path
