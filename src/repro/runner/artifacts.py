"""Append-only JSONL artifact store for run outcomes.

One JSON object per line, built on :mod:`repro.stats.export` for the
result payload, so external tooling (plot scripts, dashboards) can
stream-parse a sweep's history without loading it whole.

A process killed mid-append leaves a truncated trailing line — exactly
the artifact a crashed campaign leaves behind.  :meth:`ArtifactStore.
load` skips such partial trailing lines (counting them in
:attr:`skipped_lines`) instead of crashing with ``JSONDecodeError``;
corruption *before* the trailing line is a damaged file, not a crash
artifact, and still raises.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.provenance import provenance
from repro.runner.spec import ExperimentSpec
from repro.simulator import SimResult
from repro.stats.export import result_to_dict


class ArtifactStore:
    """A JSONL file of per-run records (spec, outcome, result summary)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: partial trailing lines skipped by the most recent :meth:`load`
        self.skipped_lines = 0

    def _append(self, record: Mapping[str, Any]) -> None:
        with self.path.open("a") as stream:
            stream.write(json.dumps(dict(record), sort_keys=True) + "\n")

    def append(
        self,
        spec: ExperimentSpec,
        result: SimResult | None,
        *,
        cached: bool = False,
        attempts: int = 1,
        duration_s: float = 0.0,
        error: str | None = None,
        error_type: str | None = None,
        resumed: bool = False,
    ) -> None:
        record = {
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "provenance": provenance(),
            "cached": cached,
            "resumed": resumed,
            "attempts": attempts,
            "duration_s": round(duration_s, 6),
            "error": error,
            "error_type": error_type,
            "result": result_to_dict(result) if result is not None else None,
        }
        self._append(record)

    def append_report(self, report: Mapping[str, Any]) -> None:
        """Append a campaign-level summary record (kind: campaign_report)."""
        self._append({
            "kind": "campaign_report",
            "provenance": provenance(),
            "report": dict(report),
        })

    def load(self) -> list[dict]:
        """Every record in append order (empty if the file is absent).

        Partial trailing lines — what a killed writer leaves — are
        skipped and counted in :attr:`skipped_lines`.
        """
        self.skipped_lines = 0
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        lines = [line for line in text.splitlines() if line.strip()]
        records: list[dict] = []
        for at, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if at == len(lines) - 1:
                    self.skipped_lines += 1
                    continue
                raise
        return records

    def reports(self) -> list[dict]:
        """Just the campaign-report records, in append order."""
        return [
            r["report"] for r in self.load()
            if r.get("kind") == "campaign_report"
        ]

    def runs(self) -> list[dict]:
        """Just the per-run records, in append order."""
        return [r for r in self.load() if "spec_hash" in r]
