"""Append-only JSONL artifact store for run outcomes.

One JSON object per line, built on :mod:`repro.stats.export` for the
result payload, so external tooling (plot scripts, dashboards) can
stream-parse a sweep's history without loading it whole.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.provenance import provenance
from repro.runner.spec import ExperimentSpec
from repro.simulator import SimResult
from repro.stats.export import result_to_dict


class ArtifactStore:
    """A JSONL file of per-run records (spec, outcome, result summary)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(
        self,
        spec: ExperimentSpec,
        result: SimResult | None,
        *,
        cached: bool = False,
        attempts: int = 1,
        duration_s: float = 0.0,
        error: str | None = None,
    ) -> None:
        record = {
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "provenance": provenance(),
            "cached": cached,
            "attempts": attempts,
            "duration_s": round(duration_s, 6),
            "error": error,
            "result": result_to_dict(result) if result is not None else None,
        }
        with self.path.open("a") as stream:
            stream.write(json.dumps(record, sort_keys=True) + "\n")

    def load(self) -> list[dict]:
        """Every record in append order (empty if the file is absent)."""
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        return [json.loads(line) for line in text.splitlines() if line.strip()]
