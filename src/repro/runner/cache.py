"""Content-hashed on-disk result cache with integrity checking.

Layout: one ``<spec_hash>.json`` file per cached run under the cache
root, holding ``{"spec": ..., "result": ..., "checksum": ...}`` — the
spec dict for human inspection, the result dict for
:meth:`SimResult.from_dict`, and a sha256 checksum over the canonical
result JSON, verified on every :meth:`get`.  Writes are atomic (temp
file + rename) so a crashed run never leaves a half-written entry live.

Entries that fail to parse or whose checksum does not match are never
trusted *and never silently destroyed*: they are moved to
``<root>/quarantine/`` for post-mortem (``repro cache verify`` audits a
whole cache the same way).  Temp files orphaned by a worker killed
between ``mkstemp`` and ``os.replace`` are swept on construction and
counted in :meth:`stats`.

Simulations are deterministic in their spec, so a verified hit is
byte-for-byte the result a fresh run would produce.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.runner.spec import ExperimentSpec
from repro.simulator import SimResult

#: subdirectory of the cache root corrupt entries are moved into
QUARANTINE_DIR = "quarantine"


def result_checksum(result_dict: Mapping[str, Any]) -> str:
    """sha256 over the canonical JSON encoding of a result dict."""
    canonical = json.dumps(
        dict(result_dict), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Spec-hash-keyed store of checksummed :class:`SimResult` files."""

    def __init__(self, root: str | Path, *, sweep_tmp: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: corrupt entries moved to quarantine/ by this cache object
        self.quarantined = 0
        #: orphaned ``*.tmp`` files swept at construction (a worker died
        #: between ``mkstemp`` and ``os.replace``)
        self.stale_tmp_removed = 0
        #: called with ``(spec_hash, reason)`` whenever an entry is
        #: quarantined — the campaign journal hooks in here
        self.quarantine_hook: Callable[[str, str], None] | None = None
        if sweep_tmp:
            self.stale_tmp_removed = self._sweep_tmp()

    def _sweep_tmp(self) -> int:
        """Remove orphaned temp files left by killed writers."""
        removed = 0
        for stale in self.root.glob("*.tmp"):
            try:
                stale.unlink()
                removed += 1
            except OSError:
                pass  # a concurrent writer finished (renamed) or swept it
        return removed

    def path_for(self, spec: ExperimentSpec) -> Path:
        return self.root / f"{spec.spec_hash()}.json"

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (never silently unlink it)."""
        self.quarantine_root.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_root / path.name
        n = 0
        while target.exists():
            n += 1
            target = self.quarantine_root / f"{path.stem}.{n}{path.suffix}"
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return  # a concurrent reader already quarantined it
        self.quarantined += 1
        if self.quarantine_hook is not None:
            self.quarantine_hook(path.stem, reason)

    @staticmethod
    def _validate(data: Any) -> tuple[SimResult | None, str]:
        """(result, "") for a sound entry, (None, reason) otherwise."""
        if not isinstance(data, dict) or "result" not in data:
            return None, "not a cache entry object"
        recorded = data.get("checksum")
        if not recorded:
            return None, "no checksum (legacy or tampered entry)"
        if result_checksum(data["result"]) != recorded:
            return None, "checksum mismatch"
        try:
            return SimResult.from_dict(data["result"]), ""
        except (KeyError, TypeError, ValueError) as exc:
            return None, f"undecodable result: {type(exc).__name__}: {exc}"

    def get(self, spec: ExperimentSpec) -> SimResult | None:
        """The verified cached result for ``spec``, or None on a miss.

        Entries that fail integrity checking are quarantined, counted,
        and reported as misses — the runner recomputes them.
        """
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path, "unreadable JSON")
            self.misses += 1
            return None
        result, reason = self._validate(data)
        if result is None:
            self._quarantine(path, reason)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: SimResult) -> Path:
        """Store ``result`` under ``spec``'s hash; returns the file path."""
        path = self.path_for(spec)
        result_dict = result.to_dict()
        payload = json.dumps(
            {
                "spec": spec.to_dict(),
                "result": result_dict,
                "checksum": result_checksum(result_dict),
            },
            sort_keys=True,
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as tmp:
                tmp.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def verify(self) -> dict[str, Any]:
        """Audit every entry; quarantine the corrupt ones.

        Returns ``{"checked", "ok", "quarantined": [{"entry",
        "reason"}, ...]}`` — the report behind ``repro cache verify``.
        """
        checked = 0
        bad: list[dict[str, str]] = []
        for path in sorted(self.root.glob("*.json")):
            checked += 1
            reason = ""
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                reason = "unreadable JSON"
            else:
                _result, reason = self._validate(data)
            if reason:
                self._quarantine(path, reason)
                bad.append({"entry": path.name, "reason": reason})
        return {
            "checked": checked,
            "ok": checked - len(bad),
            "quarantined": bad,
        }

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.path_for(spec).exists()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self),
            "quarantined": self.quarantined,
            "stale_tmp_removed": self.stale_tmp_removed,
        }
