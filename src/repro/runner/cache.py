"""Content-hashed on-disk result cache.

Layout: one ``<spec_hash>.json`` file per cached run under the cache
root, holding ``{"spec": ..., "result": ...}`` — the spec dict for
human inspection, the result dict for :meth:`SimResult.from_dict`.
Writes are atomic (temp file + rename) so a crashed run never leaves a
half-written entry; unreadable entries are treated as misses and
removed.  Simulations are deterministic in their spec, so a hit is
byte-for-byte the result a fresh run would produce.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.runner.spec import ExperimentSpec
from repro.simulator import SimResult


class ResultCache:
    """Spec-hash-keyed store of :class:`SimResult` JSON files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: ExperimentSpec) -> Path:
        return self.root / f"{spec.spec_hash()}.json"

    def get(self, spec: ExperimentSpec) -> SimResult | None:
        """The cached result for ``spec``, or None on a miss."""
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text())
            result = SimResult.from_dict(data["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # corrupt or stale-format entry: drop it and recompute
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: SimResult) -> Path:
        """Store ``result`` under ``spec``'s hash; returns the file path."""
        path = self.path_for(spec)
        payload = json.dumps(
            {"spec": spec.to_dict(), "result": result.to_dict()},
            sort_keys=True,
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as tmp:
                tmp.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.path_for(spec).exists()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}
