"""Parallel experiment-runner subsystem.

The orchestration layer every figure/table of the paper sits on: a
frozen, hashable :class:`ExperimentSpec` describing one run,
:class:`RunMatrix` expansion of (workload × scheme × config × seed)
grids, a :class:`Runner` fanning specs out across worker processes with
timeouts/retries/serial fallback, a content-hashed on-disk
:class:`ResultCache` making repeated sweeps near-free, and a JSONL
:class:`ArtifactStore` for external tooling.

Campaigns are crash-safe: a :class:`CampaignJournal` write-ahead
journal checkpoints every per-spec state transition (resume a killed
campaign by re-running with the same journal), cache entries are
checksummed and quarantined instead of trusted blindly, the runner
supervises its worker pool (backoff with deterministic jitter, a typed
per-spec retry budget, a pool→serial circuit breaker), and a
:class:`CampaignReport` summarizes outcomes, retries, quarantines and
degradations.  :mod:`repro.runner.chaos` injects campaign-level faults
to prove the invariants: no spec lost, none run twice to completion,
resume converges byte-identically.

Typical use::

    from repro.runner import ExperimentSpec, RunMatrix, run_matrix

    matrix = RunMatrix(workloads=("genome", "intruder"),
                       schemes=("logtm-se", "fastm", "suv"),
                       seeds=(1, 2, 3))
    outcomes = run_matrix(matrix, max_workers=4, cache=".repro-cache")
    for out in outcomes:
        print(out.spec.label(), out.result.total_cycles)
"""

from repro.runner.artifacts import ArtifactStore
from repro.runner.cache import ResultCache
from repro.runner.executor import (
    Runner,
    RunOutcome,
    execute_spec,
    run_experiment,
    run_matrix,
)
from repro.runner.journal import CampaignJournal, JournalState, SpecState
from repro.runner.report import CampaignReport
from repro.runner.spec import ExperimentSpec, RunMatrix

__all__ = [
    "ArtifactStore",
    "CampaignJournal",
    "CampaignReport",
    "ExperimentSpec",
    "JournalState",
    "ResultCache",
    "RunMatrix",
    "RunOutcome",
    "Runner",
    "SpecState",
    "execute_spec",
    "run_experiment",
    "run_matrix",
]
