"""Parallel experiment-runner subsystem.

The orchestration layer every figure/table of the paper sits on: a
frozen, hashable :class:`ExperimentSpec` describing one run,
:class:`RunMatrix` expansion of (workload × scheme × config × seed)
grids, a :class:`Runner` fanning specs out across worker processes with
timeouts/retries/serial fallback, a content-hashed on-disk
:class:`ResultCache` making repeated sweeps near-free, and a JSONL
:class:`ArtifactStore` for external tooling.

Typical use::

    from repro.runner import ExperimentSpec, RunMatrix, run_matrix

    matrix = RunMatrix(workloads=("genome", "intruder"),
                       schemes=("logtm-se", "fastm", "suv"),
                       seeds=(1, 2, 3))
    outcomes = run_matrix(matrix, max_workers=4, cache=".repro-cache")
    for out in outcomes:
        print(out.spec.label(), out.result.total_cycles)
"""

from repro.runner.artifacts import ArtifactStore
from repro.runner.cache import ResultCache
from repro.runner.executor import (
    Runner,
    RunOutcome,
    execute_spec,
    run_experiment,
    run_matrix,
)
from repro.runner.spec import ExperimentSpec, RunMatrix

__all__ = [
    "ArtifactStore",
    "ExperimentSpec",
    "ResultCache",
    "RunMatrix",
    "RunOutcome",
    "Runner",
    "execute_spec",
    "run_experiment",
    "run_matrix",
]
