"""First-class experiment descriptions.

An :class:`ExperimentSpec` captures everything that determines one
simulation run — workload, scheme, input scale, seed, machine shape and
configuration overrides — as a frozen, hashable value.  Being a value
(rather than an ``argparse.Namespace`` threaded through helpers) buys
three things:

* **a cache key** — :meth:`ExperimentSpec.spec_hash` content-hashes the
  spec, so a result computed once is never recomputed;
* **a process-pool message** — specs pickle cheaply and worker processes
  rebuild the whole simulation from them;
* **matrix expansion** — :class:`RunMatrix` crosses per-axis value lists
  into the spec lists that every figure/table of the paper is made of.

Configuration overrides are dotted paths into :class:`~repro.config.
SimConfig` (``{"redirect.l1_entries": 64, "signature.bits": 1024}``);
workload overrides (``{"n_flows": 128}``) go to ``make_workload``.  Both
are stored as sorted tuples so specs stay hashable and hash-stable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from itertools import product
from typing import Any, Iterator, Mapping, Sequence

from repro.config import HTMConfig, SimConfig
from repro.errors import IncompatiblePolicyError
from repro.htm.policy import SchemeComposition

#: bump when the spec encoding changes, so stale cache entries never match
SPEC_FORMAT_VERSION = 3

_SCALES = ("tiny", "small", "full")
_SCALAR_TYPES = (bool, int, float, str, type(None))

Overrides = Mapping[str, Any] | Sequence[tuple[str, Any]]


def _freeze_overrides(value: Overrides, what: str) -> tuple[tuple[str, Any], ...]:
    """Normalize a mapping (or pair sequence) to a sorted, hashable tuple."""
    items = value.items() if isinstance(value, Mapping) else [tuple(p) for p in value]
    frozen = []
    for key, val in items:
        if not isinstance(val, _SCALAR_TYPES):
            raise TypeError(
                f"{what}[{key!r}] must be a scalar "
                f"(bool/int/float/str/None), got {type(val).__name__}"
            )
        frozen.append((str(key), val))
    frozen.sort(key=lambda pair: pair[0])
    return tuple(frozen)


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation run, fully determined and hashable.

    The defaults mirror the CLI/benchmark harness defaults (Table III
    machine, seed 3, realistic 512-cycle thread-launch stagger), so
    ``ExperimentSpec("genome")`` is the harness's genome run.
    """

    workload: str
    #: a registered scheme name (``"suv"``), a composed four-axis name
    #: (``"redirect+lazy+stall+serial"``), or an axes mapping
    #: (``{"vm": "redirect", "cd": "lazy"}``); mappings and composed
    #: names normalize to the canonical composed spelling
    scheme: str | Mapping[str, str] = "suv"
    scale: str = "small"
    seed: int = 3
    cores: int = 16
    threads: int = 0  # 0 = one software thread per core
    #: deprecated spelling of :attr:`resolution` (kept for old specs)
    policy: str = ""
    #: conflict-resolution axis for registered (non-composed) schemes
    resolution: str = "stall"
    #: commit-arbitration axis for registered (non-composed) schemes
    arbitration: str = "serial"
    stagger: int = 512
    verify: bool = True
    max_events: int = 20_000_000
    #: dotted-path overrides into SimConfig, e.g. {"redirect.l1_entries": 64}
    config_overrides: Overrides = ()
    #: keyword overrides for make_workload, e.g. {"n_flows": 128}
    workload_kwargs: Overrides = ()
    #: fault plan: "" = fault-free, a preset name, or inline FaultPlan
    #: JSON (see :func:`repro.faults.parse_plan`)
    fault_plan: str = ""
    #: run the atomicity oracle after the simulation and attach its
    #: report to the result (raises OracleViolation on failure)
    check: bool = False

    def __post_init__(self) -> None:
        if self.scale not in _SCALES:
            raise ValueError(f"unknown scale {self.scale!r}; choose from {_SCALES}")
        scheme = self.scheme
        if isinstance(scheme, Mapping):
            scheme = SchemeComposition.from_value(scheme).name
        else:
            comp = SchemeComposition.parse(scheme)
            if comp is not None:
                scheme = comp.check().name
        object.__setattr__(self, "scheme", scheme)
        if self.policy:
            import warnings

            mapped = (
                "abort_requester" if self.policy == "abort" else self.policy
            )
            warnings.warn(
                f"ExperimentSpec(policy={self.policy!r}) is deprecated; "
                f"use resolution={mapped!r}",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.resolution not in ("", "stall", mapped):
                raise ValueError(
                    f"conflicting policy={self.policy!r} and "
                    f"resolution={self.resolution!r}"
                )
            object.__setattr__(self, "resolution", mapped)
            object.__setattr__(self, "policy", "")
        object.__setattr__(
            self,
            "config_overrides",
            _freeze_overrides(self.config_overrides, "config_overrides"),
        )
        object.__setattr__(
            self,
            "workload_kwargs",
            _freeze_overrides(self.workload_kwargs, "workload_kwargs"),
        )

    # -- derived values --------------------------------------------------
    def with_(self, **changes: Any) -> "ExperimentSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def build_config(self) -> SimConfig:
        """The :class:`SimConfig` this spec describes.

        Starts from the Table III defaults with this spec's machine
        shape, then applies the dotted-path overrides
        (``"section.field"`` replaces one field of a config section;
        a bare ``"field"`` replaces a top-level ``SimConfig`` field).
        """
        config = SimConfig(
            n_cores=self.cores,
            htm=HTMConfig(
                resolution=self.resolution,
                arbitration=self.arbitration,
                start_stagger=self.stagger,
            ),
        )
        top: dict[str, Any] = {}
        sections: dict[str, dict[str, Any]] = {}
        for path, value in self.config_overrides:
            if "." in path:
                section, field_name = path.split(".", 1)
                sections.setdefault(section, {})[field_name] = value
            else:
                top[path] = value
        try:
            if top:
                config = replace(config, **top)
            for section, kv in sections.items():
                if not hasattr(config, section):
                    raise TypeError(f"no config section {section!r}")
                config = replace(
                    config, **{section: replace(getattr(config, section), **kv)}
                )
        except TypeError as exc:
            raise ValueError(f"bad config override: {exc}") from exc
        return config

    # -- serialization / hashing ----------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable dict; inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        out["config_overrides"] = dict(self.config_overrides)
        out["workload_kwargs"] = dict(self.workload_kwargs)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def spec_hash(self) -> str:
        """Content hash identifying this spec (the cache key)."""
        payload = self.to_dict()
        payload["_format"] = SPEC_FORMAT_VERSION
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def label(self) -> str:
        """A short human-readable tag for logs and progress lines."""
        tag = f"{self.workload}/{self.scheme} {self.scale} seed={self.seed}"
        if self.fault_plan:
            plan = self.fault_plan
            tag += f" faults={plan if len(plan) <= 24 else 'inline'}"
        if self.config_overrides:
            tag += " " + ",".join(f"{k}={v}" for k, v in self.config_overrides)
        return tag


@dataclass(frozen=True)
class RunMatrix:
    """A cross product of experiment axes, expanded to specs.

    Each sequence field is one axis; :meth:`specs` crosses them in
    workload-major order (workload, then scheme, then scale, seed,
    cores, threads, resolution, stagger, overrides), the order the
    paper's figures iterate in.  ``overrides`` is an axis of override
    *sets*: each entry is one ``config_overrides`` mapping.

    Two ways to pick schemes: ``schemes`` names registered schemes
    directly, while the per-axis lists ``vms``/``cds`` (with
    ``resolutions``/``arbitrations``) sweep the composed policy space —
    setting either replaces the ``schemes`` axis with the *legal* subset
    of the vm × cd × resolution × arbitration cross product (illegal
    combinations are skipped; see :mod:`repro.htm.policy`).
    """

    workloads: Sequence[str]
    schemes: Sequence[str] = ("suv",)
    #: version-management axis values; non-empty switches the matrix to
    #: composed-scheme expansion (with ``cds``/``resolutions``/
    #: ``arbitrations``)
    vms: Sequence[str] = ()
    #: conflict-detection axis values for composed-scheme expansion
    cds: Sequence[str] = ()
    scales: Sequence[str] = ("small",)
    seeds: Sequence[int] = (3,)
    cores: Sequence[int] = (16,)
    threads: Sequence[int] = (0,)
    resolutions: Sequence[str] = ("stall",)
    arbitrations: Sequence[str] = ("serial",)
    staggers: Sequence[int] = (512,)
    overrides: Sequence[Overrides] = ((),)
    #: fault-plan axis: each entry is a spec string ("" = fault-free)
    fault_plans: Sequence[str] = ("",)
    workload_kwargs: Overrides = ()
    verify: bool = True
    check: bool = False
    max_events: int = 20_000_000

    def _scheme_axis(self) -> list[tuple[str, str, str]]:
        """(scheme, resolution, arbitration) triples to cross over."""
        if not (self.vms or self.cds):
            return [
                (scheme, resolution, arbitration)
                for scheme, resolution, arbitration in product(
                    self.schemes, self.resolutions, self.arbitrations
                )
            ]
        triples: list[tuple[str, str, str]] = []
        for vm, cd, resolution, arbitration in product(
            self.vms or ("redirect",), self.cds or ("eager",),
            self.resolutions, self.arbitrations,
        ):
            try:
                comp = SchemeComposition.from_value({
                    "vm": vm, "cd": cd,
                    "resolution": resolution, "arbitration": arbitration,
                })
            except IncompatiblePolicyError:
                continue  # physically impossible corner of the sweep
            triples.append((comp.name, comp.resolution, comp.arbitration))
        if not triples:
            raise IncompatiblePolicyError(
                "no legal scheme in matrix axes",
                axes={
                    "vm": ",".join(self.vms) or "redirect",
                    "cd": ",".join(self.cds) or "eager",
                    "resolution": ",".join(self.resolutions),
                    "arbitration": ",".join(self.arbitrations),
                },
                reason="every combination in the cross product is illegal",
            )
        return triples

    def specs(self) -> list[ExperimentSpec]:
        """Expand the cross product into concrete specs."""
        return [
            ExperimentSpec(
                workload=workload,
                scheme=scheme,
                scale=scale,
                seed=seed,
                cores=n_cores,
                threads=n_threads,
                resolution=resolution,
                arbitration=arbitration,
                stagger=stagger,
                verify=self.verify,
                max_events=self.max_events,
                config_overrides=over,
                workload_kwargs=self.workload_kwargs,
                fault_plan=plan,
                check=self.check,
            )
            for workload, (scheme, resolution, arbitration), scale, seed,
                n_cores, n_threads, stagger, over, plan in product(
                    self.workloads, self._scheme_axis(), self.scales,
                    self.seeds, self.cores, self.threads, self.staggers,
                    self.overrides, self.fault_plans,
                )
        ]

    def __len__(self) -> int:
        return len(self.specs())

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.specs())
