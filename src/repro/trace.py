"""Structured event tracing and per-phase cycle accounting (`repro.trace`).

The paper's whole argument is about the *isolation window* — the span
during which a transaction's read/write signatures block its neighbours
(Figure 1).  The aggregate breakdown (:mod:`repro.stats.breakdown`)
shows *how much* time each scheme spends where; this module shows
*where inside a run* those cycles go, with three layers:

* :class:`Tracer` — a bounded ring buffer of typed events (transaction
  begin/commit/abort/stall, redirect-table hit/spill, pool
  alloc/reclaim, summary-signature tests), exportable as JSONL or as
  Chrome ``trace_event`` JSON for ``about:tracing`` / Perfetto.  Event
  recording is **opt-in**: when disabled, the per-event work is a single
  attribute test at the call site — no allocation, no buffering.
* **isolation-window accounting** — always on.  Every outermost
  transaction attempt opens a window at begin and closes it when commit
  or abort *processing* finishes (the processing tail is exactly the
  repair/merge pathology of Figure 1), accumulating per-scheme window
  spans plus commit-/abort-processing cycle totals.
* :class:`LatencyHistogram` — always-on power-of-two-bucket histograms
  (commit latency, abort latency, redirect-table lookup latency) with
  approximate p50/p95 and exact max/mean.  Buckets are fixed-size
  integer arrays: recording never allocates.

Everything here is a pure function of the simulated cycle clock, so two
runs with the same seed produce byte-identical traces — traces are
diffable across schemes, which is how the Figure 1 story is inspected
event by event.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Iterator

# ---------------------------------------------------------------------------
# event kinds
# ---------------------------------------------------------------------------

#: transaction lifecycle
TX_BEGIN = "tx_begin"
TX_COMMIT = "tx_commit"
TX_ABORT = "tx_abort"
TX_STALL = "tx_stall"
TX_UNSTALL = "tx_unstall"
#: SUV redirect machinery
TABLE_HIT = "table_hit"
TABLE_MISS = "table_miss"
TABLE_SPILL = "table_spill"
POOL_ALLOC = "pool_alloc"
POOL_RECLAIM = "pool_reclaim"
SIG_TEST = "sig_test"
#: scheme-specific end-of-transaction processing
LOG_WALK = "log_walk"
FLASH_ABORT = "flash_abort"
PUBLISH = "publish"
#: multiversioned SUV (mvsuv) machinery
VERSION_ALLOC = "version_alloc"
VERSION_READ = "version_read"
VERSION_GC = "version_gc"

#: every kind the exporters understand, for validation in tests
EVENT_KINDS = (
    TX_BEGIN, TX_COMMIT, TX_ABORT, TX_STALL, TX_UNSTALL,
    TABLE_HIT, TABLE_MISS, TABLE_SPILL, POOL_ALLOC, POOL_RECLAIM,
    SIG_TEST, LOG_WALK, FLASH_ABORT, PUBLISH,
    VERSION_ALLOC, VERSION_READ, VERSION_GC,
)

#: kinds rendered as Chrome duration-begin / duration-end pairs
_CHROME_BEGIN = {TX_BEGIN: "tx", TX_STALL: "stall"}
_CHROME_END = {TX_COMMIT: "tx", TX_ABORT: "tx", TX_UNSTALL: "stall"}


class _ZeroClock:
    """Stand-in cycle clock for tracers not attached to a simulator."""

    now = 0


_ZERO_CLOCK = _ZeroClock()


class LatencyHistogram:
    """A power-of-two-bucket latency histogram with p50/p95/max.

    Bucket ``i`` holds samples whose ``int.bit_length()`` is ``i``
    (bucket 0 holds exact zeros), so recording is two integer ops and
    one list increment — no allocation, deterministic, and mergeable.
    Percentiles are approximate (resolved to the bucket's upper bound,
    clamped to the observed max); ``max`` and ``mean`` are exact.
    """

    #: samples at or above 2**(BUCKETS-2) share the top bucket
    BUCKETS = 40

    def __init__(self) -> None:
        self.counts = [0] * self.BUCKETS
        self.count = 0
        self.total = 0
        self.max = 0

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value}")
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        self.counts[min(value.bit_length(), self.BUCKETS - 1)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> int:
        """Approximate ``q``-quantile (0 < q <= 1), resolved upward."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        if not self.count:
            return 0
        need = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= need:
                upper = 0 if i == 0 else (1 << i) - 1
                return min(upper, self.max)
        return self.max

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "max": self.max,
            "total": self.total,
        }


class Tracer:
    """Ring-buffer event recorder plus always-on phase accounting.

    Parameters:

    * ``events`` — ``True`` enables the typed-event ring buffer;
      ``False`` (the default) leaves only the cycle accounting and
      histograms active.  Call sites guard emission with
      ``tracer.events is not None``, so a disabled tracer costs one
      attribute test per would-be event.
    * ``capacity`` — ring-buffer bound; the oldest events fall off.
    """

    def __init__(self, events: bool = False, capacity: int = 65536) -> None:
        self.capacity = capacity
        self.events: deque[tuple[int, str, int, int, dict | None]] | None = (
            deque(maxlen=capacity) if events else None
        )
        self.dropped = 0
        #: anything with a ``.now`` cycle counter; the simulator installs
        #: its event queue here so version managers can stamp events
        self.clock: Any = _ZERO_CLOCK
        #: free-form labels stamped on the trace (the simulator installs
        #: the run's policy axes: vm/cd/resolution/arbitration)
        self.labels: dict[str, str] = {}
        # -- always-on metrics ------------------------------------------
        self.windows = 0
        self.windows_committed = 0
        self.windows_aborted = 0
        self.window_cycles_total = 0
        self.window_cycles_max = 0
        self.commit_processing_cycles = 0
        self.abort_processing_cycles = 0
        #: snapshot readers (mvsuv) never arm signatures: their attempts
        #: are counted apart and contribute zero isolation cycles
        self.snapshot_windows = 0
        self.snapshot_cycles_total = 0
        self.hist_window = LatencyHistogram()
        self.hist_commit = LatencyHistogram()
        self.hist_abort = LatencyHistogram()
        self.hist_table = LatencyHistogram()

    # -- event layer (opt-in) -------------------------------------------
    def emit(
        self,
        ts: int,
        kind: str,
        core: int = -1,
        tid: int = -1,
        data: dict | None = None,
    ) -> None:
        """Append one typed event; silently drops the oldest when full."""
        buf = self.events
        if buf is None:
            return
        if len(buf) == self.capacity:
            self.dropped += 1
        buf.append((ts, kind, core, tid, data))

    def __len__(self) -> int:
        return len(self.events) if self.events is not None else 0

    def iter_events(self) -> Iterator[dict[str, Any]]:
        """Events as dicts, oldest first."""
        for ts, kind, core, tid, data in self.events or ():
            row: dict[str, Any] = {"ts": ts, "kind": kind}
            if core >= 0:
                row["core"] = core
            if tid >= 0:
                row["tid"] = tid
            if data:
                row.update(data)
            yield row

    # -- metric layer (always on) ---------------------------------------
    def note_window(self, span: int, committed: bool) -> None:
        """One isolation window closed (commit/abort processing done)."""
        self.windows += 1
        if committed:
            self.windows_committed += 1
        else:
            self.windows_aborted += 1
        self.window_cycles_total += span
        if span > self.window_cycles_max:
            self.window_cycles_max = span
        self.hist_window.record(span)

    def note_snapshot_window(self, span: int) -> None:
        """A snapshot-mode attempt finished: it blocked nobody for its
        whole lifetime, so it adds **zero** isolation-window cycles —
        the wait-free collapse the mvsuv accounting must make visible."""
        self.snapshot_windows += 1
        self.snapshot_cycles_total += span

    def note_commit(self, latency: int) -> None:
        self.commit_processing_cycles += latency
        self.hist_commit.record(latency)

    def note_abort(self, latency: int) -> None:
        self.abort_processing_cycles += latency
        self.hist_abort.record(latency)

    def note_table_lookup(self, latency: int) -> None:
        self.hist_table.record(latency)

    # -- export ----------------------------------------------------------
    def phase_breakdown(
        self, kernel: dict[str, int] | None = None
    ) -> dict[str, Any]:
        """The per-phase summary attached to ``SimResult.phase_breakdown``."""
        windows = self.windows or 1
        out: dict[str, Any] = {
            "isolation": {
                "windows": self.windows,
                "committed": self.windows_committed,
                "aborted": self.windows_aborted,
                "open_cycles_total": self.window_cycles_total,
                "open_cycles_max": self.window_cycles_max,
                "open_cycles_mean": round(self.window_cycles_total / windows, 3),
                "commit_processing_cycles": self.commit_processing_cycles,
                "abort_processing_cycles": self.abort_processing_cycles,
            },
        }
        if self.snapshot_windows:
            # gated so non-multiversion runs keep a byte-identical shape
            out["isolation"].update({
                "snapshot_windows": self.snapshot_windows,
                "snapshot_lifetime_cycles": self.snapshot_cycles_total,
                "snapshot_isolation_cycles": 0,
            })
        out["latency"] = {
            "window": self.hist_window.as_dict(),
            "commit": self.hist_commit.as_dict(),
            "abort": self.hist_abort.as_dict(),
            "table_lookup": self.hist_table.as_dict(),
        }
        if kernel is not None:
            out["kernel"] = dict(kernel)
        out["events"] = {"recorded": len(self), "dropped": self.dropped}
        return out

    def to_jsonl(self) -> str:
        """One compact JSON object per event, oldest first."""
        return "\n".join(
            json.dumps(row, sort_keys=True, separators=(",", ":"))
            for row in self.iter_events()
        )

    def write_jsonl(self, path) -> None:
        from pathlib import Path

        text = self.to_jsonl()
        Path(path).write_text(text + ("\n" if text else ""))

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome ``trace_event`` JSON document for this trace.

        Cycle timestamps map 1:1 to trace microseconds; one simulated
        core renders as one Chrome "thread".  Transaction and stall
        spans become duration (``B``/``E``) pairs; table, pool and
        signature events become instants.  Load the result in
        ``about:tracing`` or https://ui.perfetto.dev.
        """
        trace_events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro-sim", **self.labels},
            }
        ]
        for ts, kind, core, tid, data in self.events or ():
            row_tid = core if core >= 0 else 0
            args = dict(data) if data else {}
            if tid >= 0:
                args["thread"] = tid
            if kind in _CHROME_BEGIN:
                ev = {"name": _CHROME_BEGIN[kind], "ph": "B"}
            elif kind in _CHROME_END:
                ev = {"name": _CHROME_END[kind], "ph": "E"}
                args["outcome"] = kind
            else:
                ev = {"name": kind, "ph": "i", "s": "t"}
            ev.update(ts=ts, pid=0, tid=row_tid)
            if args:
                ev["args"] = args
            trace_events.append(ev)
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def write_chrome_trace(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_chrome_trace()))


def make_tracer(trace: "Tracer | bool | int | None") -> Tracer:
    """Normalize the ``Simulator(trace=...)`` argument to a Tracer.

    ``None``/``False`` — metrics only; ``True`` — events at the default
    capacity; an ``int`` — events with that capacity; a ready
    :class:`Tracer` passes through.
    """
    if isinstance(trace, Tracer):
        return trace
    if trace is None or trace is False:
        return Tracer(events=False)
    if trace is True:
        return Tracer(events=True)
    return Tracer(events=True, capacity=int(trace))
