"""The execution-driven CMP/HTM simulator.

One :class:`Simulator` runs a multi-threaded transactional *program*
over the memory substrate with a chosen version-management scheme,
producing total execution time, the paper's execution-time breakdown
(Figure 6/9 components), and scheme counters.

Key behaviours reproduced from the paper's evaluation methodology:

* **Eager conflict detection via signatures** with the *Stall policy*:
  a conflicting requester stalls; wait-for cycles are broken by aborting
  the youngest transaction in the cycle, which then backs off
  (randomized exponential) and retries.
* **Isolation windows include commit/abort processing**: a transaction's
  signatures stay armed while its version manager repairs (undo walk) or
  merges (lazy publication), so neighbours keep stalling — the repair
  and merge pathologies of Figure 1.  SUV's bit-flip end-of-transaction
  closes the window almost immediately.
* **Strong isolation**: non-transactional accesses conflict-check too,
  and under SUV they pay the redirect-table translation on the critical
  path.
* **Re-execution by checkpoint**: a transaction body is a generator
  factory; retry re-invokes it.
* **Thread suspension / migration (paper Section IV-C)**: more threads
  than cores are time-multiplexed.  A thread suspended *inside* a
  transaction keeps its read/write signatures armed — the summary-
  signature mechanism of LogTM-SE — so other threads still conflict
  with it and wait it out; a requester that conflicts with a suspended
  transaction yields its core so the suspended thread can be
  rescheduled and finish.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.accel import resolve_backend
from repro.config import LINE_SHIFT, SimConfig
from repro.errors import DeadlockError, InvariantViolation, TransactionError
from repro.faults import FaultInjector, FaultPlan
from repro.htm.backoff import BackoffPolicy
from repro.htm.ops import Barrier, OpenTx, Read, Tx, Work, Write
from repro.htm.policy import (
    CommitArbitration,
    ConflictResolution,
    make_arbitration,
    make_resolution,
)
from repro.htm.transaction import TxFrame
from repro.htm.vm.base import VersionManager, make_version_manager
from repro.mem.hierarchy import MemoryHierarchy
from repro.oracle import OracleRecorder
from repro.sim.kernel import Event, EventQueue
from repro.sim.rng import RngStreams
from repro.stats.breakdown import Breakdown
from repro.trace import (
    TX_ABORT,
    TX_BEGIN,
    TX_COMMIT,
    TX_STALL,
    TX_UNSTALL,
    Tracer,
    make_tracer,
)

# core statuses
RUNNING = "running"
STALLED = "stalled"
BACKOFF = "backoff"
BARRIER = "barrier"
COMMITTING = "committing"
ABORTING = "aborting"
IDLE = "idle"
DONE = "done"


@dataclass(eq=False)  # identity semantics: ctxs are mounted/parked by object
class _ThreadCtx:
    """The migratable state of one software thread."""

    tid: int
    gen_stack: list[Generator] = field(default_factory=list)
    frames: list[TxFrame] = field(default_factory=list)
    pending_send: Any = None       # value sent into the top generator
    pending_op: Any = None         # op being retried after a stall
    consecutive_aborts: int = 0
    doomed_depth: int | None = None
    slice_start: int = 0
    last_core: int = -1  # -1 = never mounted
    park_start: int = 0
    park_reason: str | None = None  # "stall" | "preempt" | "barrier"
    barrier_bid: int | None = None
    barrier_start: int = 0
    done: bool = False
    finish_time: int = 0


class _Core:
    """A hardware context executing at most one thread at a time."""

    def __init__(self, idx: int) -> None:
        self.idx = idx
        self.ctx: _ThreadCtx | None = None
        self.status = IDLE
        self.waiting_on: int | None = None
        self.waiters: set[int] = set()
        self.stall_start = 0
        self.retry_event: Event | None = None
        self.comp: dict[str, int] = {}
        self.finish_time = 0
        #: prebound callbacks (installed by Simulator.run); avoid
        #: allocating a fresh closure for every resume/retry event
        self.step_cb: Callable[[], None] | None = None
        self.retry_cb: Callable[[], None] | None = None
        self.stall_retry_cb: Callable[[], None] | None = None

    # -- delegation to the mounted thread ------------------------------
    @property
    def gen_stack(self) -> list[Generator]:
        return self.ctx.gen_stack

    @property
    def frames(self) -> list[TxFrame]:
        return self.ctx.frames if self.ctx is not None else []

    @property
    def pending_send(self) -> Any:
        return self.ctx.pending_send

    @pending_send.setter
    def pending_send(self, value: Any) -> None:
        self.ctx.pending_send = value

    @property
    def pending_op(self) -> Any:
        return self.ctx.pending_op

    @pending_op.setter
    def pending_op(self, value: Any) -> None:
        self.ctx.pending_op = value

    @property
    def doomed_depth(self) -> int | None:
        return self.ctx.doomed_depth if self.ctx is not None else None

    @doomed_depth.setter
    def doomed_depth(self, value: int | None) -> None:
        self.ctx.doomed_depth = value

    @property
    def consecutive_aborts(self) -> int:
        return self.ctx.consecutive_aborts

    @consecutive_aborts.setter
    def consecutive_aborts(self, value: int) -> None:
        self.ctx.consecutive_aborts = value

    @property
    def in_tx(self) -> bool:
        return bool(self.frames)

    def charge(self, component: str, cycles: int) -> None:
        self.comp[component] = self.comp.get(component, 0) + cycles


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    scheme: str
    total_cycles: int
    breakdown: Breakdown
    per_core: list[dict[str, int]]
    commits: int
    aborts: int
    tx_attempts: int
    scheme_stats: dict[str, float]
    memory: dict[int, int]
    events_executed: int
    n_threads: int = 0
    context_switches: int = 0
    #: fault-injection events applied during the run (empty = fault-free)
    fault_trace: list[dict[str, Any]] = field(default_factory=list)
    #: atomicity-oracle report when the run was checked, else None
    oracle: dict[str, Any] | None = None
    #: isolation-window accounting and latency percentiles (see
    #: :meth:`repro.trace.Tracer.phase_breakdown`)
    phase_breakdown: dict[str, Any] = field(default_factory=dict)
    #: the four policy-axis values the run executed under
    #: (``vm``/``cd``/``resolution``/``arbitration``)
    policy_axes: dict[str, str] = field(default_factory=dict)

    @property
    def abort_ratio(self) -> float:
        return self.aborts / self.tx_attempts if self.tx_attempts else 0.0

    def speedup_over(self, other: "SimResult") -> float:
        """How much faster this run is than ``other`` (>1 = faster)."""
        return other.total_cycles / self.total_cycles

    # -- serialization (result cache + process-pool boundary) -----------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable dict losslessly describing this result."""
        return {
            "scheme": self.scheme,
            "total_cycles": self.total_cycles,
            "breakdown": self.breakdown.as_dict(),
            "per_core": [dict(comp) for comp in self.per_core],
            "commits": self.commits,
            "aborts": self.aborts,
            "tx_attempts": self.tx_attempts,
            "scheme_stats": {k: float(v) for k, v in self.scheme_stats.items()},
            "memory": {str(addr): val for addr, val in self.memory.items()},
            "events_executed": self.events_executed,
            "n_threads": self.n_threads,
            "context_switches": self.context_switches,
            "fault_trace": self.fault_trace,
            "oracle": self.oracle,
            "phase_breakdown": self.phase_breakdown,
            "policy_axes": self.policy_axes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            scheme=data["scheme"],
            total_cycles=int(data["total_cycles"]),
            breakdown=Breakdown.from_dict(data["breakdown"]),
            per_core=[
                {k: int(v) for k, v in comp.items()}
                for comp in data["per_core"]
            ],
            commits=int(data["commits"]),
            aborts=int(data["aborts"]),
            tx_attempts=int(data["tx_attempts"]),
            scheme_stats={
                k: float(v) for k, v in data["scheme_stats"].items()
            },
            memory={int(addr): int(val) for addr, val in data["memory"].items()},
            events_executed=int(data["events_executed"]),
            n_threads=int(data.get("n_threads", 0)),
            context_switches=int(data.get("context_switches", 0)),
            fault_trace=list(data.get("fault_trace", ())),
            oracle=data.get("oracle"),
            phase_breakdown=dict(data.get("phase_breakdown", ())),
            policy_axes={
                k: str(v) for k, v in dict(data.get("policy_axes", ())).items()
            },
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON string; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimResult":
        return cls.from_dict(json.loads(text))


class Simulator:
    """Execution-driven simulator for one (config, scheme) pair."""

    def __init__(
        self,
        config: SimConfig | None = None,
        scheme: str | VersionManager = "suv",
        seed: int = 12345,
        faults: FaultPlan | FaultInjector | None = None,
        oracle: OracleRecorder | bool | None = None,
        trace: Tracer | bool | int | None = None,
    ) -> None:
        self.config = config or SimConfig()
        #: accel backend (DESIGN §16): supplies the event queue, the
        #: frame signatures + conflict scan, the summary signature and
        #: the directory.  Simulated results are bit-identical across
        #: backends; only host speed differs.
        self.accel = resolve_backend(self.config.htm.accel)
        # pure EventQueue or the vector calendar queue (duck-typed twin)
        self.queue: EventQueue = self.accel.make_event_queue()
        self.rng = RngStreams(seed)
        self.hierarchy = MemoryHierarchy(self.config)
        self.memory = self.hierarchy.memory
        if isinstance(scheme, VersionManager):
            self.scheme = scheme
        else:
            self.scheme = make_version_manager(scheme, self.config, self.hierarchy)
        #: phase accounting is always on; event recording only when asked
        #: (``trace=True``, a capacity, or a ready Tracer)
        self.trace = make_tracer(trace)
        self.trace.clock = self.queue  # schemes read .now for event stamps
        self.scheme.attach_trace(self.trace)
        self.backoff = BackoffPolicy(self.config.htm, self.rng.stream("backoff"))
        #: every frame's read/write signature shares this family (same
        #: silicon hash matrix); the conflict scan fetches one mask per
        #: probed line from it instead of re-hashing per signature
        sig = self.config.signature
        self._sig_ctx = self.accel.make_signature_context(sig)
        self._sig_family = self._sig_ctx.family
        #: row pool of the vector backend (None on pure): its presence
        #: selects the batched conflict scan in ``_find_conflict``
        self._sig_pool = self._sig_ctx.pool
        #: per-frame scheme hooks resolved once — probing them with
        #: getattr() on every access is measurable on the hot path
        self._spec_for_frame = getattr(self.scheme, "speculative_for", None)
        self._local_for_frame = getattr(self.scheme, "local_writes_for", None)
        self._spec_const = self.scheme.wants_speculative_marking()
        self._local_const = self.scheme.uses_local_writes()
        self._mask_of = self._sig_ctx.mask_of
        #: multiversion snapshot hooks (mvsuv); every one is None for
        #: ordinary schemes, so the per-access guard is one attribute
        #: test and no behaviour changes
        self._snapshot_mode_for = getattr(self.scheme, "snapshot_mode_for", None)
        self._snapshot_read = getattr(self.scheme, "snapshot_read", None)
        self._current_seq = getattr(self.scheme, "current_seq", None)
        self._note_publication = getattr(self.scheme, "note_publication", None)
        self._note_nontx_write = getattr(self.scheme, "note_nontx_write", None)
        self._note_snapshot_violation = getattr(
            self.scheme, "note_snapshot_violation", None
        )
        self._has_snapshot = self._snapshot_read is not None
        #: the scheme's composition pins the resolution/arbitration axes;
        #: canonical (single-name) schemes take them from HTMConfig
        composition = getattr(self.scheme, "composition", None)
        resolution_name = (
            composition.resolution if composition is not None
            else self.config.htm.resolution
        )
        arbitration_name = (
            composition.arbitration if composition is not None
            else self.config.htm.arbitration
        )
        self._resolution: ConflictResolution = make_resolution(resolution_name)
        #: lazy-commit arbitration (TCC-style serial token by default):
        #: bounds how many lazy transactions may be between validation
        #: and publication, so a committer's validation stays current.
        self._arbitration: CommitArbitration = make_arbitration(arbitration_name)
        #: the run's axis labels, attached to SimResult, the phase
        #: breakdown, and the trace metadata
        self.policy_axes: dict[str, str] = {
            "vm": getattr(self.scheme, "vm_axis", "custom"),
            "cd": getattr(self.scheme, "cd_axis", "eager"),
            "resolution": self._resolution.name,
            "arbitration": self._arbitration.name,
        }
        self.trace.labels.update(self.policy_axes)
        self._stall_period = self.config.htm.stall_retry_period
        if faults is not None and not isinstance(faults, FaultInjector):
            faults = FaultInjector(faults)
        self.faults = faults
        if oracle is True:
            oracle = OracleRecorder()
        self.oracle: OracleRecorder | None = oracle or None
        self.cores: list[_Core] = []
        self._ctxs: list[_ThreadCtx] = []
        self._ready: deque[_ThreadCtx] = deque()
        self._barrier_arrived: dict[int, set[int]] = {}
        self._barrier_parked: dict[int, list[_ThreadCtx]] = {}
        self._line_versions: dict[int, int] = getattr(
            self.scheme, "line_versions", {}
        )
        self.commits = 0
        self.aborts = 0
        self.tx_attempts = 0
        self.context_switches = 0
        self._multiplex = False

    # ==================================================================
    # public API
    # ==================================================================
    def run(
        self,
        threads: list[Callable[[], Generator]],
        max_events: int | None = 20_000_000,
        max_time: int | None = None,
    ) -> SimResult:
        """Execute the thread generators until all finish.

        With at most ``n_cores`` threads, each thread owns a core for
        the whole run.  With more threads (or ``htm.time_slice > 0``)
        the simulator time-multiplexes: threads are preempted at
        operation boundaries, and a thread suspended inside a
        transaction keeps its conflict state armed (Section IV-C).
        """
        self.cores = [_Core(idx=i) for i in range(self.config.n_cores)]
        for c in self.cores:
            c.step_cb = (lambda core=c: self._step(core))
            c.retry_cb = (lambda core=c: self._retry_pending(core))
            c.stall_retry_cb = (lambda core=c: self._stall_retry(core))
        self._ctxs = []
        for tid, factory in enumerate(threads):
            ctx = _ThreadCtx(tid=tid)
            ctx.gen_stack.append(factory())
            self._ctxs.append(ctx)
        self._multiplex = (
            len(threads) > self.config.n_cores
            or self.config.htm.time_slice > 0
        )

        stagger_rng = self.rng.stream("start_stagger")
        window = self.config.htm.start_stagger
        first = self._ctxs[: self.config.n_cores]
        self._ready.extend(self._ctxs[self.config.n_cores:])
        for core, ctx in zip(self.cores, first):
            core.ctx = ctx
            ctx.last_core = core.idx
            core.status = RUNNING
            offset = int(stagger_rng.integers(0, window + 1)) if window else 0
            core.charge("NoTrans", offset)  # thread-launch skew
            ctx.slice_start = offset
            self.queue.schedule_fast(offset, lambda c=core: self._step(c))

        if self.oracle is not None:
            self.oracle.attach(self)
        if self.faults is not None:
            self.faults.arm(self)
        executed = self.queue.run(max_events=max_events, max_time=max_time)

        laggards = [ctx.tid for ctx in self._ctxs if not ctx.done]
        if laggards:
            raise DeadlockError(
                f"simulation ended with non-finished threads {laggards} "
                "(likely a barrier mismatch or an undetected deadlock)",
                wait_graph=self.wait_graph_dump(),
                cycle=self.queue.now,
                laggards=laggards,
            )

        breakdown = Breakdown()
        per_core = []
        for core in self.cores:
            for comp, amt in core.comp.items():
                breakdown.add(comp, amt)
            per_core.append(dict(core.comp))
        total = max((ctx.finish_time for ctx in self._ctxs), default=0)
        phase = self.trace.phase_breakdown(
            kernel={
                "events": executed,
                "peak_queue": self.queue.peak_queue,
            }
        )
        phase["scheme"] = self.scheme.name
        phase["axes"] = dict(self.policy_axes)
        return SimResult(
            scheme=self.scheme.name,
            total_cycles=total,
            breakdown=breakdown,
            per_core=per_core[: max(len(threads), 1)],
            commits=self.commits,
            aborts=self.aborts,
            tx_attempts=self.tx_attempts,
            scheme_stats=self.scheme.scheme_stats(),
            memory=self.memory.snapshot(),
            events_executed=executed,
            n_threads=len(threads),
            context_switches=self.context_switches,
            fault_trace=(
                list(self.faults.trace) if self.faults is not None else []
            ),
            phase_breakdown=phase,
            policy_axes=dict(self.policy_axes),
        )

    def wait_graph_dump(self) -> list[dict[str, Any]]:
        """The current wait-for graph, one row per core plus parked
        threads — attached to :class:`DeadlockError` and usable live
        from a debugger or the fault harness."""
        rows: list[dict[str, Any]] = []
        for core in self.cores:
            ctx = core.ctx
            frames = ctx.frames if ctx is not None else []
            rows.append({
                "core": core.idx,
                "status": core.status,
                "tid": ctx.tid if ctx is not None else None,
                "site": frames[0].site if frames else None,
                "waiting_on": core.waiting_on,
                "parked": False,
            })
        mounted = {c.ctx for c in self.cores if c.ctx is not None}
        for ctx in self._ctxs:
            if ctx.done or ctx in mounted:
                continue
            rows.append({
                "core": None,
                "status": "parked",
                "tid": ctx.tid,
                "site": ctx.frames[0].site if ctx.frames else None,
                "waiting_on": None,
                "parked": True,
                "park_reason": ctx.park_reason
                or ("barrier" if ctx.barrier_bid is not None else "ready"),
            })
        return rows

    # ==================================================================
    # the scheduler (multiplexing layer)
    # ==================================================================
    def _park(self, core: _Core, reason: str, to_front: bool = False) -> None:
        """Unmount the core's thread; its transactional state stays armed."""
        ctx = core.ctx
        ctx.park_start = self.queue.now
        ctx.park_reason = reason
        ctx.last_core = core.idx
        core.ctx = None
        core.status = IDLE
        if reason != "barrier":
            if to_front:
                self._ready.appendleft(ctx)
            else:
                self._ready.append(ctx)
        self._dispatch_next(core)

    def _dispatch_next(self, core: _Core) -> None:
        """Mount the next ready thread on an idle core, if any."""
        if core.ctx is not None or core.status == DONE:
            return
        if not self._ready:
            core.status = IDLE
            return
        ctx = self._ready.popleft()
        self._mount(core, ctx)

    def _schedule_ready(self) -> None:
        """Give newly-ready threads to idle cores."""
        for core in self.cores:
            if not self._ready:
                break
            if core.ctx is None and core.status == IDLE:
                self._dispatch_next(core)

    def _mount(self, core: _Core, ctx: _ThreadCtx) -> None:
        switching = ctx.last_core != core.idx or ctx.park_reason is not None
        core.ctx = ctx
        ctx.last_core = core.idx
        ctx.slice_start = self.queue.now
        core.status = RUNNING
        reason, ctx.park_reason = ctx.park_reason, None
        cost = 0
        if switching and self._multiplex:
            self.context_switches += 1
            cost = self.config.htm.context_switch_cycles
            core.charge("NoTrans", cost)
        if reason == "stall":
            core.charge("Stalled", self.queue.now - ctx.park_start)
            self.queue.schedule_fast(cost, core.retry_cb)
        else:
            self.queue.schedule_fast(cost, core.step_cb)

    def _should_preempt(self, core: _Core) -> bool:
        if not self._multiplex or not self._ready:
            return False
        slice_len = self.config.htm.time_slice or 20_000
        if core.in_tx:
            # avoid descheduling an active transaction (its armed
            # signatures would stall everyone): only runaway
            # transactions lose the core
            slice_len *= max(1, self.config.htm.tx_slice_grace)
        return (self.queue.now - core.ctx.slice_start) >= slice_len

    # ==================================================================
    # the per-core step machine
    # ==================================================================
    def _step(self, core: _Core) -> None:
        """Advance a running core by one operation."""
        ctx = core.ctx
        if core.status == DONE or ctx is None:
            return
        # ctx is read directly below: core.doomed_depth/pending_send are
        # delegation properties, and the descriptor call costs on a path
        # that runs once per simulated operation
        if ctx.doomed_depth is not None:
            self._begin_abort(core)
            return
        if self.faults is not None:
            frozen = self.faults.consume_delay(core.idx)
            if frozen:
                # injected interrupt/interference burst: the core holds
                # still (transactional state stays armed) and resumes
                if core.in_tx:
                    core.frames[-1].tentative_cycles += frozen
                else:
                    core.charge("NoTrans", frozen)
                self._resume_after(core, frozen)
                return
        if self._multiplex and self._ready and self._should_preempt(core):
            # suspend at an operation boundary; transactional state
            # (signatures, redirect entries, logs) stays armed
            self._park(core, "preempt")
            return
        core.status = RUNNING
        gen = ctx.gen_stack[-1]
        try:
            value = ctx.pending_send
            if value is not None:
                ctx.pending_send = None
                if value is _SENTINEL_NONE:
                    value = None
                op = gen.send(value)
            else:
                op = next(gen)
        except StopIteration as stop:
            self._on_generator_done(core, stop)
            return
        # op dispatch, inlined (this is the per-operation hot path);
        # accesses first: they are the most frequent op by far
        if isinstance(op, (Read, Write)):
            self._access(core, op)
        elif isinstance(op, Work):
            cycles = op.cycles
            if cycles < 0:
                raise ValueError("Work cycles must be >= 0")
            frames = ctx.frames
            if frames:
                frames[-1].tentative_cycles += cycles
            else:
                core.charge("NoTrans", cycles)
            self.queue.schedule_fast(cycles, core.step_cb)
        elif isinstance(op, (Tx, OpenTx)):
            self._begin_tx(core, op)
        elif isinstance(op, Barrier):
            self._enter_barrier(core, op)
        else:
            raise TypeError(f"unknown operation {op!r}")

    def _resume_after(self, core: _Core, delay: int) -> None:
        self.queue.schedule_fast(delay, core.step_cb)


    # ------------------------------------------------------------------
    # transactions: begin / commit / abort
    # ------------------------------------------------------------------
    def _begin_tx(self, core: _Core, op: Tx) -> None:
        depth = len(core.frames)
        declared_ro = getattr(op, "read_only", False)
        if depth == 0:
            mode = self.scheme.mode_for(core.idx, op.site)
            if (self._snapshot_mode_for is not None
                    and self._snapshot_mode_for(core.idx, op.site, declared_ro)):
                mode = "snapshot"
            timestamp = self.queue.now
        else:
            mode = core.frames[0].mode
            timestamp = core.frames[0].timestamp
        frame = TxFrame.create(
            site=op.site,
            body_factory=op.body,
            depth=depth,
            timestamp=timestamp,
            now=self.queue.now,
            sig_config=self.config.signature,
            mode=mode,
            sig_factory=self._sig_ctx.make_signature,
        )
        frame.parent = core.frames[-1] if core.frames else None
        frame.read_only = declared_ro
        if depth == 0 and mode == "snapshot":
            # capture the snapshot timestamp: the newest publication
            # this reader is allowed to observe
            frame.vm["snapshot_seq"] = self._current_seq()
        if isinstance(op, OpenTx):
            if depth == 0:
                raise TransactionError(
                    "an open-nested transaction needs an enclosing "
                    "transaction",
                    cycle=self.queue.now, core=core.idx,
                    tid=core.ctx.tid, site=op.site,
                )
            if mode == "lazy":
                raise TransactionError(
                    "open nesting is not supported in lazy execution mode",
                    cycle=self.queue.now, core=core.idx,
                    tid=core.ctx.tid, site=op.site,
                )
            frame.open_nested = True
            frame.compensate = op.compensate
        core.frames.append(frame)
        core.gen_stack.append(op.body())
        self.tx_attempts += 1 if depth == 0 else 0
        if depth == 0 and self.trace.events is not None:
            self.trace.emit(
                self.queue.now, TX_BEGIN, core.idx, core.ctx.tid,
                {"site": op.site, "attempt": frame.attempt, "mode": mode},
            )
        cost = self.config.htm.checkpoint_cycles + self.scheme.on_begin(core.idx, frame)
        frame.tentative_cycles += cost
        self._resume_after(core, cost)

    def _on_generator_done(self, core: _Core, stop: StopIteration) -> None:
        if len(core.gen_stack) == 1:
            # the thread itself finished
            ctx = core.ctx
            ctx.gen_stack.pop()
            ctx.done = True
            ctx.finish_time = self.queue.now
            core.finish_time = self.queue.now
            core.ctx = None
            core.status = IDLE
            self._check_barriers()
            self._dispatch_next(core)
            if core.ctx is None and all(c.done for c in self._ctxs):
                core.status = DONE
            return
        self._begin_commit(core, getattr(stop, "value", None))

    def _begin_commit(self, core: _Core, tx_value: Any) -> None:
        frame = core.frames[-1]
        outermost = frame.depth == 0
        if frame.vm.get("must_abort"):
            core.doomed_depth = 0
            self._begin_abort(core)
            return
        if outermost:
            if frame.mode == "lazy":
                arb = self._arbitration
                arb_holder = arb.blocking(core.idx)
                if arb_holder is not None:
                    # no free commit slot: arbitration stall
                    self._stall(core, arb_holder, ("commit", tx_value))
                    return
                arb.acquire(core.idx)
                if not self.scheme.validate(core.idx, frame):
                    arb.release(core.idx)
                    core.doomed_depth = 0
                    self._begin_abort(core)
                    return
                blocker = self._lazy_commit_blocker(core, frame)
                if blocker is not None:
                    arb.release(core.idx)
                    self._stall_on(core, blocker, ("commit", tx_value))
                    return
                if self._multiplex and self._suspended_blocker(core, frame):
                    # a suspended eager transaction overlaps our write
                    # set: yield the core so it can finish first
                    arb.release(core.idx)
                    core.pending_op = ("commit", tx_value)
                    self._park(core, "stall")
                    return
                self._doom_lazy_losers(core, frame)
                frame.vm["publishing"] = True
            elif not self.scheme.validate(core.idx, frame):
                core.doomed_depth = 0
                self._begin_abort(core)
                return
        # an open-nested commit publishes like an outermost one
        publishes = outermost or frame.open_nested
        latency = self.scheme.commit(core.idx, frame, publishes)
        if outermost:
            # commit processing happens with the signatures still armed:
            # these cycles are the tail of the isolation window
            self.trace.note_commit(latency)
        core.charge("Committing", latency)
        core.status = COMMITTING
        self.queue.schedule_fast(latency, lambda: self._finish_commit(core, tx_value))

    def _finish_commit(self, core: _Core, tx_value: Any) -> None:
        frame = core.frames.pop()
        core.gen_stack.pop()
        self._arbitration.release(core.idx)
        if frame.depth == 0:
            # the isolation window closes here: signatures disarm only
            # once commit processing (repair/merge/bit-flip) finished.
            # A snapshot reader never armed anything: its whole lifetime
            # is zero isolation cycles, accounted apart.
            span = self.queue.now - frame.start_time
            if frame.mode == "snapshot":
                self.trace.note_snapshot_window(span)
            else:
                self.trace.note_window(span, committed=True)
            if self.trace.events is not None:
                self.trace.emit(
                    self.queue.now, TX_COMMIT, core.idx, core.ctx.tid,
                    {"site": frame.site, "attempt": frame.attempt,
                     "writes": len(frame.write_lines)},
                )
            # publish and release isolation
            if self._note_publication is not None and frame.write_buffer:
                # pre-image the overwritten words before they change
                self._note_publication(core.idx, frame)
            self.memory.bulk_store(frame.write_buffer)
            if self.oracle is not None:
                self.oracle.note_commit(core.idx, frame, open_nested=False)
            for line in frame.write_lines:
                self._line_versions[line] = self._line_versions.get(line, 0) + 1
            core.charge("Trans", frame.tentative_cycles)
            self.commits += 1
            core.consecutive_aborts = 0
            frame.pending_compensations.clear()
            self.scheme.note_outcome(core.idx, frame, committed=True)
            self._wake_waiters(core)
        elif frame.open_nested:
            # open-nested commit (§IV-C): publish now, release isolation,
            # and register the compensating action with the parent
            if self._note_publication is not None and frame.write_buffer:
                self._note_publication(core.idx, frame)
            self.memory.bulk_store(frame.write_buffer)
            if self.oracle is not None:
                self.oracle.note_commit(core.idx, frame, open_nested=True)
            for line in frame.write_lines:
                self._line_versions[line] = self._line_versions.get(line, 0) + 1
            parent = core.frames[-1]
            parent.tentative_cycles += frame.tentative_cycles
            if frame.compensate is not None:
                parent.vm.setdefault("compensations", []).append(
                    frame.compensate
                )
            self.commits += 1
            self._wake_waiters(core)
        else:
            parent = core.frames[-1]
            parent.merge_child(frame)
            self.scheme.merge_nested(parent, frame)
        core.status = RUNNING
        core.pending_send = tx_value if tx_value is not None else _SENTINEL_NONE
        self._resume_after(core, 0)

    def _begin_abort(self, core: _Core) -> None:
        depth = core.doomed_depth if core.doomed_depth is not None else 0
        core.doomed_depth = None
        # discard any in-flight value or retried op from the doomed attempt
        core.pending_send = None
        core.pending_op = None
        if not core.frames:
            # nothing to abort (race with an already-finished abort)
            core.status = RUNNING
            self._resume_after(core, 0)
            return
        depth = min(depth, len(core.frames) - 1)
        latency = 0
        for frame in reversed(core.frames[depth:]):
            latency += self.scheme.abort(
                core.idx, frame, outermost=(frame.depth == depth)
            )
            core.charge("Wasted", frame.tentative_cycles)
        # rollback processing keeps the window open (repair pathology)
        self.trace.note_abort(latency)
        core.charge("Aborting", latency)
        core.status = ABORTING
        self.aborts += 1
        self.queue.schedule_fast(latency, lambda: self._finish_abort(core, depth))

    def _finish_abort(self, core: _Core, depth: int) -> None:
        retry_frame = core.frames[depth]
        if depth == 0:
            # the aborted attempt's isolation window closes with the
            # end of abort processing; the retry opens a fresh one.
            # Aborted snapshot attempts held no isolation either.
            span = self.queue.now - retry_frame.start_time
            if retry_frame.mode == "snapshot":
                self.trace.note_snapshot_window(span)
            else:
                self.trace.note_window(span, committed=False)
            if self.trace.events is not None:
                self.trace.emit(
                    self.queue.now, TX_ABORT, core.idx, core.ctx.tid,
                    {"site": retry_frame.site, "attempt": retry_frame.attempt},
                )
        self.scheme.note_outcome(core.idx, retry_frame, committed=False)
        # compensations owed by committed open-nested children of the
        # aborted attempt run as a prologue of the retry
        for frame in core.frames[depth:]:
            retry_frame.pending_compensations.extend(
                frame.vm.get("compensations", ())
            )
        # drop the aborted levels (their signatures disarm here — the
        # repair window just closed)
        del core.frames[depth + 1:]
        del core.gen_stack[depth + 2:]
        core.gen_stack.pop()  # the aborted level's own generator
        retry_frame.reset_for_retry(self.queue.now)
        core.consecutive_aborts += 1
        if self.oracle is not None:
            self.oracle.note_abort(core.idx, depth)
        self._wake_waiters(core)
        delay = self.backoff.delay(core.consecutive_aborts)
        if self.faults is not None:
            delay = self.faults.perturb_backoff(core.idx, delay)
        core.charge("Backoff", delay)
        core.status = BACKOFF
        self.queue.schedule_fast(delay, lambda: self._retry_tx(core, depth))

    def _retry_tx(self, core: _Core, depth: int) -> None:
        frame = core.frames[depth]
        if depth == 0:
            # re-select the execution mode (DynTM may flip eager↔lazy);
            # the timestamp is kept so older transactions keep priority
            frame.mode = self.scheme.mode_for(core.idx, frame.site)
            if (self._snapshot_mode_for is not None
                    and self._snapshot_mode_for(
                        core.idx, frame.site, frame.read_only)):
                # the retry re-captures a fresh snapshot timestamp
                frame.mode = "snapshot"
                frame.vm["snapshot_seq"] = self._current_seq()
            # the retry's isolation window opens now — backoff cycles
            # (signatures clear, nobody blocked) are not window time
            frame.start_time = self.queue.now
            if self.trace.events is not None:
                self.trace.emit(
                    self.queue.now, TX_BEGIN, core.idx, core.ctx.tid,
                    {"site": frame.site, "attempt": frame.attempt,
                     "mode": frame.mode},
                )
        self.tx_attempts += 1 if depth == 0 else 0
        if frame.pending_compensations:
            original = frame.body_factory

            def _compensating_body(frame=frame, original=original):
                # each compensation is itself an open-nested transaction:
                # it publishes immediately (undoing the earlier published
                # effect) and is popped once durable, so a further abort
                # neither loses nor repeats it
                while frame.pending_compensations:
                    comp = frame.pending_compensations[-1]
                    yield OpenTx(comp)
                    frame.pending_compensations.pop()
                result = yield from original()
                return result

            core.gen_stack.append(_compensating_body())
        else:
            core.gen_stack.append(frame.body_factory())
        cost = self.config.htm.checkpoint_cycles + self.scheme.on_begin(core.idx, frame)
        frame.tentative_cycles += cost
        core.status = RUNNING
        self._resume_after(core, cost)

    # ------------------------------------------------------------------
    # memory accesses + conflict resolution
    # ------------------------------------------------------------------
    def _access(self, core: _Core, op: Read | Write) -> None:
        line = op.addr >> LINE_SHIFT
        is_write = type(op) is Write
        frames = core.ctx.frames
        # _frame_visible(frames[-1]) inlined (per-access hot path);
        # lazy frames are invisible until publication, snapshot frames
        # are wait-free — neither joins the conflict scan
        if (not frames or frames[-1].mode == "eager"
                or frames[-1].vm.get("publishing")):
            conflict = self._find_conflict(core, line, is_write)
            if conflict is not None:
                kind = conflict[0]
                if kind == "suspended":
                    # the holder is a suspended transaction (its summary
                    # signature matched).  Age-based resolution prevents
                    # livelock between mutually-waiting suspended
                    # transactions: an older transactional requester
                    # dooms the younger suspended holder, which aborts
                    # when rescheduled; otherwise the requester yields
                    # its core so the suspended thread can finish.
                    holder_ctx: _ThreadCtx = conflict[1]
                    if core.in_tx and holder_ctx.frames:
                        mine = (core.frames[0].timestamp, core.ctx.tid)
                        theirs = (holder_ctx.frames[0].timestamp,
                                  holder_ctx.tid)
                        if mine < theirs:
                            holder_ctx.doomed_depth = 0
                    core.pending_op = op
                    if self._multiplex:
                        self._park(core, "stall")
                    else:  # pragma: no cover — cannot happen off-multiplex
                        self._resume_retry(core, self.config.htm.stall_retry_period)
                    return
                if core.in_tx:
                    self._resolve_conflict(core, conflict[1], op)
                else:
                    # strong isolation: the non-transactional access waits
                    # out the conflicting transaction (it cannot deadlock)
                    self._stall_on(core, conflict[1], op)
                return
        self._perform_access(core, op, line, is_write)

    def _perform_access(
        self, core: _Core, op: Read | Write, line: int, is_write: bool
    ) -> None:
        scheme = self.scheme
        ctx = core.ctx
        if ctx.frames:
            frame = ctx.frames[-1]
            if self._has_snapshot and frame.mode == "snapshot":
                self._snapshot_access(core, op, line, is_write, frame)
                return
            if is_write:
                frame.record_write(line)
                extra, phys = scheme.pre_write(core.idx, frame, line)
                # _speculative_for/_local_writes_for inlined (hot path):
                # the per-frame hook is prebound, the constant fallback
                # precomputed
                per = self._spec_for_frame
                spec = per(frame) if per is not None else self._spec_const
                if frame.vm.pop("allocate_write", False):
                    # fresh-line allocation (SUV pool): no fetch below
                    result = self.hierarchy.allocate_write(core.idx, phys, spec)
                else:
                    local = self._local_for_frame
                    if local(frame) if local is not None else self._local_const:
                        result = self.hierarchy.local_write(core.idx, phys, spec)
                    else:
                        result = self.hierarchy.write(
                            core.idx, phys, speculative=spec
                        )
                extra += scheme.post_write(core.idx, frame, line, result)
                frame.write_buffer[op.addr] = op.value
                if self.oracle is not None:
                    self.oracle.record_tx_write(frame, op.addr, op.value)
                latency = result.latency + extra
            else:
                frame.record_read(line)
                extra, phys = scheme.pre_read(core.idx, frame, line)
                result = self.hierarchy.read(core.idx, phys)
                value = self._tx_read_value(core, op.addr)
                if self.oracle is not None:
                    self.oracle.record_tx_read(frame, op.addr, value)
                ctx.pending_send = value if value is not None else _SENTINEL_NONE
                latency = result.latency + extra
            frame.tentative_cycles += latency
            if frame.vm.get("must_abort"):
                core.doomed_depth = 0
                # the overflow is noticed when the access completes
                self.queue.schedule_fast(latency, lambda: self._begin_abort(core))
                return
            self.queue.schedule_fast(latency, core.step_cb)
        else:
            extra, phys = scheme.nontx_translate(core.idx, line)
            if is_write:
                result = self.hierarchy.write(core.idx, phys)
                if self._note_nontx_write is not None:
                    # pre-image the word before the store lands (strong
                    # isolation makes this a publication of its own)
                    self._note_nontx_write(core.idx, op.addr, line)
                self.memory.store(op.addr, op.value)
                if self.oracle is not None:
                    self.oracle.record_nontx(core.idx, True, op.addr, op.value)
            else:
                result = self.hierarchy.read(core.idx, phys)
                value = self.memory.load(op.addr)
                if self.oracle is not None:
                    self.oracle.record_nontx(core.idx, False, op.addr, value)
                ctx.pending_send = value if value is not None else _SENTINEL_NONE
            core.charge("NoTrans", result.latency + extra)
            self.queue.schedule_fast(result.latency + extra, core.step_cb)

    def _snapshot_access(
        self, core: _Core, op: Read | Write, line: int, is_write: bool,
        frame: TxFrame,
    ) -> None:
        """A wait-free snapshot-mode access (mvsuv).

        Reads never arm signatures and never consult the redirect
        table: they are served from the version chain, or straight from
        memory when the chain proves no newer publication touched the
        word.  A write violates the read-only declaration, and a read
        whose history was garbage-collected cannot be served soundly —
        both abort the attempt, and the scheme demotes the site so the
        retry runs as an ordinary eager transaction (no livelock).
        """
        ctx = core.ctx
        if is_write:
            if self._note_snapshot_violation is not None:
                self._note_snapshot_violation(core.idx, frame)
            core.doomed_depth = 0
            self._begin_abort(core)
            return
        extra, value, ok = self._snapshot_read(core.idx, frame, op.addr, line)
        if not ok:
            core.doomed_depth = 0
            self._begin_abort(core)
            return
        if value is None:
            result = self.hierarchy.read(core.idx, line)
            value = self._tx_read_value(core, op.addr)
            latency = result.latency + extra
        else:
            latency = extra
        if self.oracle is not None:
            self.oracle.record_tx_read(frame, op.addr, value)
        frame.tentative_cycles += latency
        ctx.pending_send = value if value is not None else _SENTINEL_NONE
        self.queue.schedule_fast(latency, core.step_cb)

    def _tx_read_value(self, core: _Core, addr: int) -> int:
        for frame in reversed(core.ctx.frames):
            if addr in frame.write_buffer:
                return frame.write_buffer[addr]
        return self.memory.load(addr)

    # -- conflicts -------------------------------------------------------
    def _frame_visible(self, frame: TxFrame) -> bool:
        # lazy transactions are invisible while executing, but once they
        # start publishing they hold coherence permissions: accesses that
        # conflict with a publishing committer must stall
        return frame.mode != "lazy" or bool(frame.vm.get("publishing"))

    def _speculative_for(self, frame: TxFrame) -> bool:
        per_frame = self._spec_for_frame
        if per_frame is not None:
            return per_frame(frame)
        return self._spec_const

    def _local_writes_for(self, frame: TxFrame) -> bool:
        per_frame = self._local_for_frame
        if per_frame is not None:
            return per_frame(frame)
        return self._local_const

    def _frames_conflict(
        self, frames: list[TxFrame], line: int, is_write: bool
    ) -> TxFrame | None:
        return self._frames_conflict_mask(
            frames, self._mask_of(line), is_write
        )

    def _frames_conflict_mask(
        self, frames: list[TxFrame], mask: int, is_write: bool
    ) -> TxFrame | None:
        for frame in frames:
            if not self._frame_visible(frame):
                continue
            if is_write:
                if frame.may_read_conflict_mask(mask):
                    return frame
            elif frame.may_write_conflict_mask(mask):
                return frame
        return None

    def _find_conflict(
        self, core: _Core, line: int, is_write: bool
    ) -> tuple[str, Any] | None:
        """The first conflicting holder: ("core", idx) or ("suspended", ctx)."""
        if self._sig_pool is not None:
            return self._find_conflict_vector(core, line, is_write)
        # one H3 mask for the probed line serves every signature test in
        # the scan; the per-frame visibility and Bloom tests are inlined
        # because this loop runs for every access of every core (DESIGN
        # §11).  Each signature is tested on its own word — OR-ing the
        # read/write filters first would manufacture false positives.
        mask = self._mask_of(line)
        my_idx = core.idx
        for other in self.cores:
            octx = other.ctx
            if octx is None or other.idx == my_idx:
                continue
            for frame in octx.frames:
                if frame.mode == "lazy" and not frame.vm.get("publishing"):
                    continue  # invisible until it starts publishing
                w = frame.write_sig._word
                if (w & mask == mask) or (
                    is_write and frame.read_sig._word & mask == mask
                ):
                    return ("core", other.idx)
        if self._multiplex:
            # suspended transactions' signatures stay armed (the summary
            # signature of Section IV-C)
            for ctx in self._ctxs:
                if ctx.done or not ctx.frames or ctx is core.ctx:
                    continue
                if any(c.ctx is ctx for c in self.cores):
                    continue  # mounted: handled above
                if self._frames_conflict_mask(ctx.frames, mask, is_write) is not None:
                    return ("suspended", ctx)
        return None

    def _find_conflict_vector(
        self, core: _Core, line: int, is_write: bool
    ) -> tuple[str, Any] | None:
        """Batched conflict scan over the vector backend's row pool.

        The rows of every visible frame are gathered *in the pure scan
        order* (per core, write signature first, then — on a write probe
        — the read signature) with a parallel owners list, and probed
        against one precomputed mask in a single vectorized comparison.
        ``first_match`` returns the first matching row, so the reported
        conflicting core is exactly the one the pure loop would find;
        rows of the same core are interchangeable because both orders
        name the same owner.
        """
        mask = self._mask_of(line)
        my_idx = core.idx
        rows: list[int] = []
        owners: list[int] = []
        for other in self.cores:
            octx = other.ctx
            if octx is None or other.idx == my_idx:
                continue
            for frame in octx.frames:
                if frame.mode == "lazy" and not frame.vm.get("publishing"):
                    continue  # invisible until it starts publishing
                rows.append(frame.write_sig._row)
                owners.append(other.idx)
                if is_write:
                    rows.append(frame.read_sig._row)
                    owners.append(other.idx)
        if rows:
            hit = self._sig_pool.first_match(rows, mask)
            if hit >= 0:
                return ("core", owners[hit])
        if self._multiplex:
            # suspended contexts are few and cold; the per-frame mask
            # tests below consume the vector mask directly
            for ctx in self._ctxs:
                if ctx.done or not ctx.frames or ctx is core.ctx:
                    continue
                if any(c.ctx is ctx for c in self.cores):
                    continue  # mounted: handled above
                if self._frames_conflict_mask(ctx.frames, mask, is_write) is not None:
                    return ("suspended", ctx)
        return None

    def _resolve_conflict(self, core: _Core, holder_idx: int, op: Any) -> None:
        self._resolution.resolve(self, core, holder_idx, op)

    def _wait_cycle(self, requester: int, holder: int) -> list[int] | None:
        """Cores on the wait-path if requester→holder closes a cycle."""
        path = [requester]
        cur: int | None = holder
        while cur is not None:
            path.append(cur)
            if cur == requester:
                return path
            cur = self.cores[cur].waiting_on
        return None

    def _youngest(self, cycle: list[int]) -> int:
        """The youngest transaction (largest begin timestamp) to abort."""
        candidates = [
            i for i in set(cycle)
            if self.cores[i].frames and self.cores[i].status not in (COMMITTING,)
        ]
        if not candidates:
            return cycle[0]
        return max(
            candidates, key=lambda i: (self.cores[i].frames[0].timestamp, i)
        )

    def _doom(self, victim_idx: int, depth: int) -> None:
        victim = self.cores[victim_idx]
        if (victim.ctx is None or not victim.frames
                or victim.status in (COMMITTING, ABORTING, DONE)):
            return
        victim.doomed_depth = (
            depth if victim.doomed_depth is None
            else min(victim.doomed_depth, depth)
        )
        if victim.status == STALLED:
            self._unstall(victim)
            self._begin_abort(victim)
        elif victim.status == BARRIER:
            raise InvariantViolation(
                "a transactional core is parked at a barrier",
                cycle=self.queue.now, core=victim_idx,
                tid=victim.ctx.tid if victim.ctx else None,
            )
        # RUNNING / BACKOFF victims notice the doom at their next event

    # -- stalling ---------------------------------------------------------
    def _stall(self, core: _Core, holder_idx: int, op: Any) -> None:
        self._stall_on(core, holder_idx, op)

    def _stall_on(
        self, core: _Core, holder_idx: int, op: Any,
        period: int | None = None,
    ) -> None:
        """Stall ``core`` behind ``holder_idx`` until woken or retried.

        ``period`` overrides the configured stall-retry period for this
        episode — contention managers like ``polite`` stretch it
        exponentially instead of hammering the holder.
        """
        holder = self.cores[holder_idx]
        if holder.ctx is None or not holder.frames:
            # the holder finished in the meantime: retry immediately
            core.pending_op = op
            self._resume_retry(core, 0)
            return
        core.status = STALLED
        core.pending_op = op
        core.waiting_on = holder_idx
        core.stall_start = self.queue.now
        if self.trace.events is not None:
            self.trace.emit(
                self.queue.now, TX_STALL, core.idx,
                core.ctx.tid if core.ctx is not None else -1,
                {"holder": holder_idx},
            )
        holder.waiters.add(core.idx)
        period = self._stall_period if period is None else period
        if self.faults is not None:
            period = self.faults.perturb_stall_retry(core.idx, period)
        # NOT schedule_fast: the retry event must stay cancellable (the
        # stall path cancels it when the blocker clears early)
        core.retry_event = self.queue.schedule(period, core.stall_retry_cb)

    def _unstall(self, core: _Core) -> None:
        core.charge("Stalled", self.queue.now - core.stall_start)
        if self.trace.events is not None:
            self.trace.emit(
                self.queue.now, TX_UNSTALL, core.idx,
                core.ctx.tid if core.ctx is not None else -1,
                {"waited": self.queue.now - core.stall_start},
            )
        if core.retry_event is not None:
            core.retry_event.cancel()
            core.retry_event = None
        if core.waiting_on is not None:
            self.cores[core.waiting_on].waiters.discard(core.idx)
            core.waiting_on = None
        core.status = RUNNING

    def _stall_retry(self, core: _Core) -> None:
        if core.status != STALLED:
            return
        self._unstall(core)
        self._retry_pending(core)

    def _wake_waiters(self, core: _Core) -> None:
        for waiter_idx in sorted(core.waiters):
            waiter = self.cores[waiter_idx]
            if waiter.status != STALLED or waiter.waiting_on != core.idx:
                continue
            waiter.charge("Stalled", self.queue.now - waiter.stall_start)
            if self.trace.events is not None:
                self.trace.emit(
                    self.queue.now, TX_UNSTALL, waiter.idx,
                    waiter.ctx.tid if waiter.ctx is not None else -1,
                    {"waited": self.queue.now - waiter.stall_start,
                     "woken_by": core.idx},
                )
            if waiter.retry_event is not None:
                waiter.retry_event.cancel()
                waiter.retry_event = None
            waiter.waiting_on = None
            waiter.status = RUNNING
            self.queue.schedule_fast(0, waiter.retry_cb)
        core.waiters.clear()

    def _resume_retry(self, core: _Core, delay: int) -> None:
        self.queue.schedule_fast(delay, core.retry_cb)

    def _retry_pending(self, core: _Core) -> None:
        ctx = core.ctx
        if core.status == DONE or ctx is None:
            return
        if ctx.doomed_depth is not None:
            self._begin_abort(core)
            return
        op = ctx.pending_op
        ctx.pending_op = None
        if op is None:
            self._step(core)
            return
        if isinstance(op, tuple) and op and op[0] == "commit":
            core.status = RUNNING
            self._begin_commit(core, op[1])
        else:
            core.status = RUNNING
            self._access(core, op)

    # -- lazy-commit interplay ---------------------------------------------
    def _write_set_masks(self, frame: TxFrame) -> list[int]:
        """One H3 mask per write-set line, computed once per scan."""
        mask = self._mask_of
        return [mask(line) for line in frame.write_lines]

    def _lazy_commit_blocker(self, core: _Core, frame: TxFrame) -> int | None:
        """An eager transaction the lazy committer must wait for, if any."""
        masks = self._write_set_masks(frame)
        for other in self.cores:
            if other.idx == core.idx or other.ctx is None or not other.frames:
                continue
            for oframe in other.frames:
                if not self._frame_visible(oframe):
                    continue
                for m in masks:
                    if oframe.may_read_conflict_mask(m):
                        return other.idx
        return None

    def _suspended_blocker(self, core: _Core, frame: TxFrame) -> bool:
        """Does a suspended *visible* (eager) transaction overlap our
        write set?  The lazy committer must let it finish first."""
        masks = self._write_set_masks(frame)
        mounted = {c.ctx for c in self.cores}
        for ctx in self._ctxs:
            if ctx.done or not ctx.frames or ctx in mounted or ctx is core.ctx:
                continue
            for oframe in ctx.frames:
                if not self._frame_visible(oframe):
                    continue
                if any(oframe.may_read_conflict_mask(m) for m in masks):
                    return True
        return False

    def _doom_lazy_losers(self, core: _Core, frame: TxFrame) -> None:
        """Committer wins: abort lazy transactions overlapping our writes."""
        masks = self._write_set_masks(frame)
        for other in self.cores:
            if other.idx == core.idx or other.ctx is None or not other.frames:
                continue
            if self._frame_visible(other.frames[0]):
                continue
            for oframe in other.frames:
                if any(oframe.may_read_conflict_mask(m) for m in masks):
                    self._doom(other.idx, 0)
                    break
        if self._multiplex:
            # suspended lazy transactions lose too: they notice on resume
            mounted = {c.ctx for c in self.cores}
            for ctx in self._ctxs:
                if ctx.done or not ctx.frames or ctx in mounted:
                    continue
                if self._frame_visible(ctx.frames[0]):
                    continue
                if any(
                    f.may_read_conflict_mask(m)
                    for f in ctx.frames for m in masks
                ):
                    ctx.doomed_depth = 0

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def _enter_barrier(self, core: _Core, op: Barrier) -> None:
        if core.in_tx:
            raise TransactionError(
                "Barrier inside a transaction is not allowed",
                cycle=self.queue.now, core=core.idx, tid=core.ctx.tid,
                site=core.frames[0].site,
            )
        ctx = core.ctx
        ctx.barrier_bid = op.bid
        ctx.barrier_start = self.queue.now
        self._barrier_arrived.setdefault(op.bid, set()).add(ctx.tid)
        if self._multiplex:
            # release the core while waiting so unstarted threads can run
            self._barrier_parked.setdefault(op.bid, []).append(ctx)
            self._park(core, "barrier")
        else:
            core.status = BARRIER
        self._check_barriers()

    def _check_barriers(self) -> None:
        live = {ctx.tid for ctx in self._ctxs if not ctx.done}
        for bid, arrived in list(self._barrier_arrived.items()):
            waiting_ctxs = [
                ctx for ctx in self._ctxs
                if not ctx.done and ctx.barrier_bid == bid
            ]
            waiting = {ctx.tid for ctx in waiting_ctxs}
            if waiting and waiting >= live:
                del self._barrier_arrived[bid]
                parked = self._barrier_parked.pop(bid, [])
                for ctx in sorted(waiting_ctxs, key=lambda c: c.tid):
                    ctx.barrier_bid = None
                    wait = self.queue.now - ctx.barrier_start
                    if ctx in parked:
                        self.cores[ctx.last_core].charge("Barrier", wait)
                        ctx.park_reason = None
                        self._ready.append(ctx)
                    else:
                        c = self.cores[ctx.last_core]
                        c.charge("Barrier", wait)
                        c.status = RUNNING
                        self.queue.schedule_fast(0, lambda cc=c: self._step(cc))
                self._schedule_ready()


class _NoneSentinel:
    """Distinguishes "send None" from "nothing pending" in the step loop."""

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "<none>"


_SENTINEL_NONE = _NoneSentinel()
