"""A 2-D mesh interconnect with minimal-path (adaptive) routing.

Cores occupy the mesh nodes in row-major order; the four memory
controllers / L2+directory banks sit at the corner nodes, and cache lines
are interleaved across the banks by line index (Table III: "Four memory
controllers are configured to access the main memory").

Routing latency is behavioural: a message between nodes ``a`` and ``b``
costs ``manhattan(a, b) * (wire + route)`` cycles, the cost of the
minimal adaptive route with no modelled congestion.
"""

from __future__ import annotations

import math

from repro.config import MeshConfig


class Mesh:
    """Mesh geometry and message-latency model."""

    def __init__(self, n_cores: int, config: MeshConfig, n_banks: int = 4) -> None:
        side = math.isqrt(n_cores)
        if side * side != n_cores:
            # fall back to the smallest square mesh that fits every core
            side = math.ceil(math.sqrt(n_cores))
        self.side = side
        self.n_cores = n_cores
        self.config = config
        self.n_banks = n_banks
        self._bank_nodes = self._place_banks(n_banks)
        # The geometry is fixed at construction, so every core→bank and
        # core→core latency is precomputed; the per-access methods below
        # are plain table lookups (DESIGN §11).
        hop = config.hop_latency
        pos = [divmod(c, side) for c in range(n_cores)]
        self._bank_lat = [
            [
                (abs(p[0] - b[0]) + abs(p[1] - b[1])) * hop
                for b in self._bank_nodes
            ]
            for p in pos
        ]
        self._core_lat = [
            [
                (abs(pa[0] - pb[0]) + abs(pa[1] - pb[1])) * hop
                for pb in pos
            ]
            for pa in pos
        ]

    def _place_banks(self, n_banks: int) -> list[tuple[int, int]]:
        """Banks at the mesh corners (then edge midpoints for >4 banks)."""
        s = self.side - 1
        corners = [(0, 0), (0, s), (s, 0), (s, s)]
        if n_banks <= 4:
            return corners[:n_banks]
        mids = [(0, s // 2), (s, s // 2), (s // 2, 0), (s // 2, s)]
        return (corners + mids)[:n_banks]

    def core_position(self, core: int) -> tuple[int, int]:
        """Row-major placement of a core on the mesh."""
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range")
        return divmod(core, self.side)

    def bank_of_line(self, line: int) -> int:
        """Memory controller / L2 bank owning a cache line (interleaved)."""
        return line % self.n_banks

    def hops(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def latency(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """One-way message latency between two mesh nodes."""
        return self.hops(a, b) * self.config.hop_latency

    def core_to_bank(self, core: int, line: int) -> int:
        """Latency from a core to the bank holding ``line``."""
        return self._bank_lat[core][line % self.n_banks]

    def core_to_core(self, a: int, b: int) -> int:
        """Latency of a direct core-to-core transfer (cache forwarding)."""
        return self._core_lat[a][b]

    def avg_core_to_bank(self, line: int) -> float:
        """Mean core→bank latency, used for broadcast cost estimates."""
        bank = self._bank_nodes[self.bank_of_line(line)]
        total = sum(
            self.latency(self.core_position(c), bank) for c in range(self.n_cores)
        )
        return total / self.n_cores
