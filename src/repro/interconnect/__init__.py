"""On-chip interconnect: the 4x4 mesh of the simulated CMP."""

from repro.interconnect.mesh import Mesh

__all__ = ["Mesh"]
