"""The atomicity oracle: serial replay + quiescence invariants.

Every scheme in this repository must give transactions the same
functional semantics — committed transactions apply atomically, aborted
ones leave no trace, strong isolation orders non-transactional accesses
against transactions.  The oracle checks that *end to end* on a real
run, independent of any scheme's bookkeeping:

1. While the simulator runs, an :class:`OracleRecorder` logs every
   committed transaction's operations (reads with the value the program
   observed, writes with the value stored) in **publication order** —
   the order write buffers reached memory — with non-transactional
   accesses interleaved at their execution point.
2. :meth:`OracleRecorder.verify` then replays the log **serially**
   against a golden memory model (all addresses start at 0, like the
   simulated memory): every recorded read must observe exactly what the
   golden model holds at that transaction's position in the serial
   order, and the final golden state must equal the simulator's final
   memory.  Bloom signatures never produce false *negatives*, so a
   correct simulator always passes; a version-management bug (lost
   update, dirty read, resurrected aborted write) shows up as a replay
   divergence.
3. **Quiescence invariants** close the loop on resource bookkeeping:
   after the run no redirect entry may be left in a transient state, no
   preserved-pool line may be live without a valid entry referencing it
   (a leak) or referenced without being live (a double free), and the
   attempt/commit/abort counters must reconcile.

Open-nested transactions publish in the middle of their parent; the
parent is then deliberately *not* serializable as a unit, so runs that
committed open-nested transactions keep write/final-state checking but
relax per-read validation for transactional entries.

Failures raise :class:`~repro.errors.OracleViolation` carrying the full
report.  The runner invokes the oracle automatically for specs with
``check=True`` (CLI ``--check``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import OracleViolation

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.htm.transaction import TxFrame
    from repro.simulator import Simulator

#: cap on individual failure records in a report (the first divergence
#: is the interesting one; thousands of cascading ones are noise)
MAX_FAILURES = 25


class OracleRecorder:
    """Records the information :meth:`verify` needs, as the run happens.

    The simulator calls the ``record_*``/``note_*`` hooks; each is O(1)
    per operation so recording does not perturb simulated timing (it
    only costs host time).
    """

    def __init__(self) -> None:
        #: publication-ordered entries:
        #: ``{"kind": "tx"|"open"|"nontx", "core", "site", "cycle",
        #:   "ops": [("r"|"w", addr, value), ...]}``
        self.log: list[dict[str, Any]] = []
        self.outer_commits = 0
        self.open_commits = 0
        self.outer_aborts = 0
        self.partial_aborts = 0
        self._sim: "Simulator" | None = None

    # -- lifecycle ------------------------------------------------------
    def attach(self, sim: "Simulator") -> None:
        self._sim = sim

    # -- recording hooks (called by the simulator) ----------------------
    def record_tx_read(self, frame: "TxFrame", addr: int, value: int) -> None:
        frame.oracle_ops.append(("r", addr, value))

    def record_tx_write(self, frame: "TxFrame", addr: int, value: int) -> None:
        frame.oracle_ops.append(("w", addr, value))

    def record_nontx(
        self, core: int, is_write: bool, addr: int, value: int
    ) -> None:
        # strong isolation orders the access against every transaction,
        # so it forms its own single-op entry at its execution point
        self.log.append({
            "kind": "nontx",
            "core": core,
            "site": None,
            "cycle": self._sim.queue.now if self._sim else 0,
            "ops": [("w" if is_write else "r", addr, value)],
        })

    def note_commit(
        self, core: int, frame: "TxFrame", open_nested: bool
    ) -> None:
        """A publishing commit (outermost, or an open-nested child).

        Snapshot-mode commits (mvsuv wait-free readers) log as ``snap``
        entries carrying the snapshot timestamp the reader captured at
        begin; :meth:`_replay` checks their reads against the
        multi-version history instead of the serial frontier.
        """
        if open_nested:
            self.open_commits += 1
            kind = "open"
        else:
            self.outer_commits += 1
            kind = "snap" if frame.mode == "snapshot" else "tx"
        entry: dict[str, Any] = {
            "kind": kind,
            "core": core,
            "site": frame.site,
            "cycle": self._sim.queue.now if self._sim else 0,
            "ops": list(frame.oracle_ops),
        }
        if kind == "snap":
            entry["snapshot_seq"] = frame.vm.get("snapshot_seq", 0)
        self.log.append(entry)

    def note_abort(self, core: int, depth: int) -> None:
        if depth == 0:
            self.outer_aborts += 1
        else:
            self.partial_aborts += 1

    # -- verification ---------------------------------------------------
    def verify(self, raise_on_failure: bool = True) -> dict[str, Any]:
        """Replay the log serially and check the quiescence invariants.

        Returns the report dict; raises :class:`OracleViolation` when
        ``raise_on_failure`` and any check failed.
        """
        if self._sim is None:
            raise ValueError("oracle was never attached to a simulator")
        failures: list[str] = []
        reads_checked = self._replay(failures)
        self._check_counters(failures)
        self._check_scheme_quiescence(failures)
        report = {
            "passed": not failures,
            "failures": failures[:MAX_FAILURES],
            "entries": len(self.log),
            "reads_checked": reads_checked,
            "relaxed_reads": self.open_commits > 0,
            "outer_commits": self.outer_commits,
            "open_commits": self.open_commits,
            "outer_aborts": self.outer_aborts,
            "partial_aborts": self.partial_aborts,
        }
        if failures and raise_on_failure:
            raise OracleViolation(
                "atomicity oracle failed "
                f"({len(failures)} check(s) violated)",
                report=report,
            )
        return report

    # -- serial replay ---------------------------------------------------
    def _replay(self, failures: list[str]) -> int:
        # open-nested commits publish inside their parent: the parent is
        # intentionally not serializable as a unit, so per-read
        # validation of transactional entries is relaxed for such runs
        relax_tx_reads = self.open_commits > 0
        golden: dict[int, int] = {}
        reads_checked = 0
        # multi-version mirror for snapshot (mvsuv) entries: the log is
        # publication-ordered, so numbering the *writing* entries as they
        # replay reconstructs exactly the publication sequence the scheme
        # stamps snapshots with; ``history`` keeps every committed value
        # of every address with its publication number.
        replay_seq = 0
        history: dict[int, list[tuple[int, int]]] = {}
        for pos, entry in enumerate(self.log):
            if entry["kind"] == "snap":
                snap = entry.get("snapshot_seq", 0)
                for op, addr, value in entry["ops"]:
                    if op == "w":
                        failures.append(
                            f"snapshot entry {pos} (core {entry['core']}, "
                            f"cycle {entry['cycle']}) wrote {addr:#x}; "
                            "snapshot transactions must be read-only"
                        )
                        continue
                    reads_checked += 1
                    expected = 0
                    for seq, committed in history.get(addr, ()):
                        if seq <= snap:
                            expected = committed
                        else:
                            break
                    if value != expected:
                        failures.append(
                            f"multi-version replay diverged at entry "
                            f"{pos} (snap, core {entry['core']}, cycle "
                            f"{entry['cycle']}): read of {addr:#x} at "
                            f"snapshot {snap} observed {value}, newest "
                            f"committed version <= {snap} is {expected}"
                        )
                continue  # snapshots publish nothing
            overlay: dict[int, int] = {}  # read-your-own-writes
            strict = entry["kind"] == "nontx" or not relax_tx_reads
            for op, addr, value in entry["ops"]:
                if op == "w":
                    overlay[addr] = value
                    continue
                expected = overlay.get(addr, golden.get(addr, 0))
                if strict:
                    reads_checked += 1
                    if value != expected:
                        failures.append(
                            f"serial replay diverged at entry {pos} "
                            f"({entry['kind']}, core {entry['core']}, "
                            f"cycle {entry['cycle']}): read of {addr:#x} "
                            f"observed {value}, serial order expects "
                            f"{expected}"
                        )
            golden.update(overlay)
            if overlay:
                replay_seq += 1
                for addr, committed in overlay.items():
                    history.setdefault(addr, []).append(
                        (replay_seq, committed)
                    )
        final = self._sim.memory.snapshot()
        for addr in sorted(set(golden) | set(final)):
            want = golden.get(addr, 0)
            got = final.get(addr, 0)
            if want != got:
                failures.append(
                    f"final state diverged at {addr:#x}: memory holds "
                    f"{got}, serial replay produced {want}"
                )
        return reads_checked

    # -- counter reconciliation ------------------------------------------
    def _check_counters(self, failures: list[str]) -> None:
        sim = self._sim
        expected_attempts = self.outer_commits + self.outer_aborts
        if sim.tx_attempts != expected_attempts:
            failures.append(
                f"attempt accounting broken: {sim.tx_attempts} attempts "
                f"!= {self.outer_commits} outermost commits + "
                f"{self.outer_aborts} outermost aborts"
            )
        expected_commits = self.outer_commits + self.open_commits
        if sim.commits != expected_commits:
            failures.append(
                f"commit accounting broken: simulator counted "
                f"{sim.commits}, oracle saw {expected_commits}"
            )
        expected_aborts = self.outer_aborts + self.partial_aborts
        if sim.aborts != expected_aborts:
            failures.append(
                f"abort accounting broken: simulator counted "
                f"{sim.aborts}, oracle saw {expected_aborts}"
            )

    # -- scheme quiescence -----------------------------------------------
    def _check_scheme_quiescence(self, failures: list[str]) -> None:
        """No transient redirect entries, no leaked/dangling pool lines."""
        scheme = self._sim.scheme
        for vm in (scheme, getattr(scheme, "eager", None),
                   getattr(scheme, "lazy", None)):
            if vm is None:
                continue
            table = getattr(vm, "table", None)
            pool = getattr(vm, "pool", None)
            if table is None or pool is None:
                continue
            referenced: set[int] = set()
            version_lines = getattr(vm, "version_pool_lines", None)
            if version_lines is not None:
                # retained multiversion records legitimately pin pool
                # lines without a redirect entry referencing them
                referenced |= version_lines()
            for entry in table.iter_entries():
                if entry.state.is_transient:
                    failures.append(
                        f"quiescence: entry for line "
                        f"{entry.orig_line:#x} left transient "
                        f"({entry.state.name}, owner {entry.owner})"
                    )
                if entry.state.value == (1, 1):  # VALID
                    referenced.add(entry.redirected_line)
            live = pool._live
            leaked = live - referenced
            dangling = {r for r in referenced if r not in live}
            if leaked:
                failures.append(
                    f"quiescence: {len(leaked)} pool line(s) live but "
                    f"unreferenced by any valid entry (leak), e.g. "
                    f"{min(leaked):#x}"
                )
            if dangling:
                failures.append(
                    f"quiescence: {len(dangling)} valid entrie(s) point "
                    f"at freed pool lines (double free), e.g. "
                    f"{min(dangling):#x}"
                )
            if pool.allocations - pool.frees != pool.live_lines:
                failures.append(
                    "quiescence: pool ledger broken: "
                    f"{pool.allocations} allocations - {pool.frees} "
                    f"frees != {pool.live_lines} live lines"
                )


def check_run(sim: "Simulator") -> dict[str, Any]:
    """Verify a finished run's recorder; raises on violation."""
    if sim.oracle is None:
        raise ValueError(
            "simulator was built without an oracle recorder "
            "(pass oracle=True to Simulator)"
        )
    return sim.oracle.verify()
