"""H3-style universal hash family for signature indexing.

LogTM-SE-class signatures hash a line address through k independent
members of the H3 family (an XOR of address bits selected by a random
binary matrix).  We implement it with one 64-bit random mask per output
bit, which is both faithful to the hardware and cheap in Python.

Hash families are shared and memoized: every core's signatures use the
same silicon hash matrix (as in real hardware), and conflict detection
probes the same line addresses over and over.
"""

from __future__ import annotations

import numpy as np


class H3HashFamily:
    """k independent H3 hash functions mapping a line address to [0, m)."""

    _shared: dict[tuple[int, int, int], "H3HashFamily"] = {}

    def __init__(self, k: int, m: int, seed: int) -> None:
        if m <= 0 or (m & (m - 1)) != 0:
            raise ValueError(f"signature size m={m} must be a power of two")
        self.k = k
        self.m = m
        self.bits = m.bit_length() - 1
        rng = np.random.default_rng(seed)
        # masks[h][b] selects the address bits XOR-ed into output bit b of hash h
        self._masks = rng.integers(
            1, 1 << 63, size=(k, self.bits), dtype=np.int64
        ).tolist()
        self._memo: dict[int, list[int]] = {}

    @classmethod
    def shared(cls, k: int, m: int, seed: int) -> "H3HashFamily":
        """A process-wide shared instance (same silicon for every core)."""
        key = (k, m, seed)
        fam = cls._shared.get(key)
        if fam is None:
            fam = cls(k, m, seed)
            cls._shared[key] = fam
        return fam

    def indexes(self, value: int) -> list[int]:
        """The k signature-bit positions for ``value`` (memoized)."""
        cached = self._memo.get(value)
        if cached is not None:
            return cached
        out = []
        for masks in self._masks:
            idx = 0
            for b, mask in enumerate(masks):
                idx |= (bin(value & mask).count("1") & 1) << b
            out.append(idx)
        if len(self._memo) < 1 << 20:
            self._memo[value] = out
        return out
