"""H3-style universal hash family for signature indexing.

LogTM-SE-class signatures hash a line address through k independent
members of the H3 family (an XOR of address bits selected by a random
binary matrix).  We implement it with one 64-bit random mask per output
bit, which is both faithful to the hardware and cheap in Python.

Hash families are shared and memoized: every core's signatures use the
same silicon hash matrix (as in real hardware), and conflict detection
probes the same line addresses over and over.  Two per-address caches
(bounded, oldest-first eviction) keep the hot path to a dict lookup:

* :meth:`indexes` — the k signature-bit positions, as a tuple;
* :meth:`mask` — those positions pre-OR-ed into one integer bitmask,
  which turns Bloom ``add`` into ``word |= mask`` and membership
  ``test`` into ``word & mask == mask`` — no per-bit Python loop.
"""

from __future__ import annotations

import numpy as np

#: per-family cap on memoized addresses (each entry is one dict slot)
_MEMO_LIMIT = 1 << 20


class H3HashFamily:
    """k independent H3 hash functions mapping a line address to [0, m)."""

    _shared: dict[tuple[int, int, int], "H3HashFamily"] = {}

    def __init__(self, k: int, m: int, seed: int) -> None:
        if m <= 0 or (m & (m - 1)) != 0:
            raise ValueError(f"signature size m={m} must be a power of two")
        self.k = k
        self.m = m
        self.bits = m.bit_length() - 1
        rng = np.random.default_rng(seed)
        # masks[h][b] selects the address bits XOR-ed into output bit b of hash h
        self._masks = rng.integers(
            1, 1 << 63, size=(k, self.bits), dtype=np.int64
        ).tolist()
        self._memo: dict[int, tuple[int, ...]] = {}
        self._mask_memo: dict[int, int] = {}
        self._words_memo: dict[int, np.ndarray] = {}
        self._unique_memo: dict[int, int] = {}
        self._unique_words_memo: dict[int, np.ndarray] = {}
        #: 64-bit words in the word-array representation of one mask
        self.words = max(1, m // 64)

    @classmethod
    def shared(cls, k: int, m: int, seed: int) -> "H3HashFamily":
        """A process-wide shared instance (same silicon for every core)."""
        key = (k, m, seed)
        fam = cls._shared.get(key)
        if fam is None:
            fam = cls(k, m, seed)
            cls._shared[key] = fam
        return fam

    def indexes(self, value: int) -> tuple[int, ...]:
        """The k signature-bit positions for ``value`` (memoized)."""
        cached = self._memo.get(value)
        if cached is not None:
            return cached
        out = []
        for masks in self._masks:
            idx = 0
            for b, mask in enumerate(masks):
                idx |= (bin(value & mask).count("1") & 1) << b
            out.append(idx)
        result = tuple(out)
        memo = self._memo
        if len(memo) >= _MEMO_LIMIT:
            # bounded cache: evict the oldest insertion (dicts preserve
            # insertion order; a true LRU touch on every hit would cost
            # more than the hash it saves)
            memo.pop(next(iter(memo)))
        memo[value] = result
        return result

    def mask(self, value: int) -> int:
        """The k positions of ``value`` OR-ed into one bitmask (memoized).

        ``word | mask`` inserts the value into a Bloom word and
        ``word & mask == mask`` tests membership, each in O(1) int ops.
        """
        cached = self._mask_memo.get(value)
        if cached is not None:
            return cached
        mask = 0
        for idx in self.indexes(value):
            mask |= 1 << idx
        memo = self._mask_memo
        if len(memo) >= _MEMO_LIMIT:
            memo.pop(next(iter(memo)))
        memo[value] = mask
        return mask

    def _to_words(self, mask: int) -> np.ndarray:
        """The big-int ``mask`` as a read-only little-endian uint64 array.

        Bit ``i`` of the integer lands in bit ``i % 64`` of word
        ``i // 64`` — the layout every vector-backend signature uses, so
        word-array and big-int filters agree bit for bit.
        """
        raw = mask.to_bytes(self.words * 8, "little")
        arr = np.frombuffer(raw, dtype="<u8").astype(np.uint64)
        arr.flags.writeable = False
        return arr

    def mask_words(self, value: int) -> np.ndarray:
        """:meth:`mask` as a read-only uint64 word array (memoized)."""
        cached = self._words_memo.get(value)
        if cached is not None:
            return cached
        arr = self._to_words(self.mask(value))
        memo = self._words_memo
        if len(memo) >= _MEMO_LIMIT:
            memo.pop(next(iter(memo)))
        memo[value] = arr
        return arr

    def unique_mask(self, value: int) -> int:
        """Bitmask of positions hit by exactly one of the k hashes.

        H3 members are independent, so two hashes may collide on one
        position for some addresses; the counting summary signature's
        sequential semantics treat such a doubly-hit bit as *not*
        uniquely owned.  The vectorized add/rebuild paths need that
        split precomputed to stay bit-identical to the per-index loop.
        """
        cached = self._unique_memo.get(value)
        if cached is not None:
            return cached
        seen = 0
        dup = 0
        for idx in self.indexes(value):
            bit = 1 << idx
            if seen & bit:
                dup |= bit
            seen |= bit
        unique = seen & ~dup
        memo = self._unique_memo
        if len(memo) >= _MEMO_LIMIT:
            memo.pop(next(iter(memo)))
        memo[value] = unique
        return unique

    def unique_mask_words(self, value: int) -> np.ndarray:
        """:meth:`unique_mask` as a read-only uint64 word array."""
        cached = self._unique_words_memo.get(value)
        if cached is not None:
            return cached
        arr = self._to_words(self.unique_mask(value))
        memo = self._unique_words_memo
        if len(memo) >= _MEMO_LIMIT:
            memo.pop(next(iter(memo)))
        memo[value] = arr
        return arr
