"""Hardware address-set signatures (Bloom filters) for conflict detection."""

from repro.signatures.bloom import BloomSignature, CountingSummarySignature
from repro.signatures.hashes import H3HashFamily

__all__ = ["BloomSignature", "CountingSummarySignature", "H3HashFamily"]
