"""Bloom-filter signatures.

Two flavours:

* :class:`BloomSignature` — the plain 2 Kbit read/write signature of
  LogTM-SE (add, membership test, union, clear; no deletion).
* :class:`CountingSummarySignature` — the SUV *redirect summary
  signature* of Figure 5: a Bloom filter plus a parallel bit-vector that
  remembers which bits were set exactly once, allowing a conservative
  delete (a "Bloom counter").  Deleting may leave the filter a superset
  of the true set, which costs wasted lookups but never correctness.

Hot-path note (DESIGN §11): both filters go through the shared
:class:`~repro.signatures.hashes.H3HashFamily` per-address *mask* cache,
so ``add`` is one ``|=`` and ``test`` one ``&``/``==`` on a big int —
identical bits to the per-index loop, at a fraction of the host cost.
"""

from __future__ import annotations

from repro.signatures.hashes import H3HashFamily


class BloomSignature:
    """A fixed-size Bloom filter over line addresses."""

    __slots__ = ("bits", "hashes", "_hash", "_word", "_count")

    def __init__(self, bits: int, hashes: int, seed: int = 0xB100) -> None:
        self.bits = bits
        self.hashes = hashes
        self._hash = H3HashFamily.shared(hashes, bits, seed)
        self._word = 0  # the filter as one big int
        self._count = 0

    def add(self, value: int) -> None:
        self._word |= self._hash.mask(value)
        self._count += 1

    def test(self, value: int) -> bool:
        """Might ``value`` be in the set?  (False ⇒ definitely not.)"""
        mask = self._hash.mask(value)
        return self._word & mask == mask

    def test_mask(self, mask: int) -> bool:
        """Membership test against a pre-computed H3 mask.

        The conflict scan probes one line against many signatures; the
        caller fetches ``family.mask(line)`` once and reuses it here.
        """
        return self._word & mask == mask

    def line_mask(self, value: int) -> int:
        """The pre-computed H3 mask for ``value``, ready for
        :meth:`test_mask`.

        Callers probing one line against several signatures fetch the
        mask once here instead of paying a memo lookup per signature;
        the vector backend returns a word array from the same method,
        so mask-reusing call sites stay backend-agnostic.
        """
        return self._hash.mask(value)

    @property
    def family(self) -> H3HashFamily:
        """The shared hash family (source of pre-computed masks)."""
        return self._hash

    def clear(self) -> None:
        self._word = 0
        self._count = 0

    def union_inplace(self, other: "BloomSignature") -> None:
        """OR another signature into this one (nested-commit merge).

        ``added`` of the union is an **upper bound** on distinct
        insertions (both operands may have inserted the same value); a
        merge that contributes no new bits adds no count either, so an
        empty or fully-subsumed child cannot inflate the gauge.
        """
        if other.bits != self.bits:
            raise ValueError("signature sizes differ")
        new_word = self._word | other._word
        if new_word != self._word:
            self._count += other._count
        self._word = new_word

    def intersects(self, other: "BloomSignature") -> bool:
        """Conservative set-intersection test (used for summary checks)."""
        return bool(self._word & other._word)

    @property
    def is_empty(self) -> bool:
        return self._word == 0

    @property
    def popcount(self) -> int:
        return self._word.bit_count()

    @property
    def added(self) -> int:
        """Upper bound on ``add`` calls represented since the last clear.

        Exact for a signature that was never a union target; a
        nested-commit merge may double-count values both sides inserted
        (the bit-OR cannot distinguish them), so treat this as a gauge,
        not an exact cardinality — ``popcount`` is the ground truth the
        false-positive estimate uses.
        """
        return self._count

    def false_positive_rate(self) -> float:
        """Analytic FP estimate for the current fill level."""
        fill = self.popcount / self.bits
        return fill ** self.hashes


class CountingSummarySignature:
    """SUV's redirect summary signature with single-write tracking.

    ``signature`` is the Bloom filter proper; ``once`` marks bits that
    have been set by exactly one inserted address.  Removing an address
    clears only its *unique* bits (those still marked in ``once``), which
    is exactly the Figure 5 behaviour: deletion is conservative and the
    filter may remain a superset of the represented set.
    """

    __slots__ = ("bits", "hashes", "_hash", "_sig", "_once",
                 "adds", "removes")

    def __init__(self, bits: int, hashes: int, seed: int = 0x5BB) -> None:
        self.bits = bits
        self.hashes = hashes
        self._hash = H3HashFamily.shared(hashes, bits, seed)
        self._sig = 0
        self._once = 0
        self.adds = 0
        self.removes = 0

    def _idx(self, value: int) -> tuple[int, ...]:
        return self._hash.indexes(value)

    def add(self, value: int) -> None:
        self.adds += 1
        for idx in self._idx(value):
            bit = 1 << idx
            if self._sig & bit:
                # second writer: the bit is no longer uniquely owned
                self._once &= ~bit
            else:
                self._sig |= bit
                self._once |= bit

    def test(self, value: int) -> bool:
        mask = self._hash.mask(value)
        return self._sig & mask == mask

    def remove(self, value: int) -> None:
        """Conservatively remove ``value`` (clears only its unique bits)."""
        self.removes += 1
        for idx in self._idx(value):
            bit = 1 << idx
            if self._once & bit:
                self._sig &= ~bit
                self._once &= ~bit

    def clear(self) -> None:
        self._sig = 0
        self._once = 0

    def rebuild(self, values) -> None:
        """Clear and re-insert ``values`` (the periodic software rebuild).

        Sequential re-insertion from empty is order-independent (the
        final ``sig``/``once`` words depend only on the multiset of
        inserted addresses), which is what lets the vector backend
        replace this loop with whole-array operations while staying
        bit-identical.
        """
        self.clear()
        for value in values:
            self.add(value)

    @property
    def popcount(self) -> int:
        return self._sig.bit_count()

    @property
    def is_empty(self) -> bool:
        return self._sig == 0
