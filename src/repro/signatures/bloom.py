"""Bloom-filter signatures.

Two flavours:

* :class:`BloomSignature` — the plain 2 Kbit read/write signature of
  LogTM-SE (add, membership test, union, clear; no deletion).
* :class:`CountingSummarySignature` — the SUV *redirect summary
  signature* of Figure 5: a Bloom filter plus a parallel bit-vector that
  remembers which bits were set exactly once, allowing a conservative
  delete (a "Bloom counter").  Deleting may leave the filter a superset
  of the true set, which costs wasted lookups but never correctness.
"""

from __future__ import annotations

from repro.signatures.hashes import H3HashFamily


class BloomSignature:
    """A fixed-size Bloom filter over line addresses."""

    def __init__(self, bits: int, hashes: int, seed: int = 0xB100) -> None:
        self.bits = bits
        self.hashes = hashes
        self._hash = H3HashFamily.shared(hashes, bits, seed)
        self._word = 0  # the filter as one big int
        self._count = 0

    def add(self, value: int) -> None:
        for idx in self._hash.indexes(value):
            self._word |= 1 << idx
        self._count += 1

    def test(self, value: int) -> bool:
        """Might ``value`` be in the set?  (False ⇒ definitely not.)"""
        for idx in self._hash.indexes(value):
            if not (self._word >> idx) & 1:
                return False
        return True

    def clear(self) -> None:
        self._word = 0
        self._count = 0

    def union_inplace(self, other: "BloomSignature") -> None:
        """OR another signature into this one (nested-commit merge)."""
        if other.bits != self.bits:
            raise ValueError("signature sizes differ")
        self._word |= other._word
        self._count += other._count

    def intersects(self, other: "BloomSignature") -> bool:
        """Conservative set-intersection test (used for summary checks)."""
        return bool(self._word & other._word)

    @property
    def is_empty(self) -> bool:
        return self._word == 0

    @property
    def popcount(self) -> int:
        return bin(self._word).count("1")

    @property
    def added(self) -> int:
        """Number of ``add`` calls since the last clear."""
        return self._count

    def false_positive_rate(self) -> float:
        """Analytic FP estimate for the current fill level."""
        fill = self.popcount / self.bits
        return fill ** self.hashes


class CountingSummarySignature:
    """SUV's redirect summary signature with single-write tracking.

    ``signature`` is the Bloom filter proper; ``once`` marks bits that
    have been set by exactly one inserted address.  Removing an address
    clears only its *unique* bits (those still marked in ``once``), which
    is exactly the Figure 5 behaviour: deletion is conservative and the
    filter may remain a superset of the represented set.
    """

    def __init__(self, bits: int, hashes: int, seed: int = 0x5BB) -> None:
        self.bits = bits
        self.hashes = hashes
        self._hash = H3HashFamily.shared(hashes, bits, seed)
        self._sig = 0
        self._once = 0
        self.adds = 0
        self.removes = 0

    def _idx(self, value: int) -> list[int]:
        return self._hash.indexes(value)

    def add(self, value: int) -> None:
        self.adds += 1
        for idx in self._idx(value):
            bit = 1 << idx
            if self._sig & bit:
                # second writer: the bit is no longer uniquely owned
                self._once &= ~bit
            else:
                self._sig |= bit
                self._once |= bit

    def test(self, value: int) -> bool:
        for idx in self._idx(value):
            if not (self._sig >> idx) & 1:
                return False
        return True

    def remove(self, value: int) -> None:
        """Conservatively remove ``value`` (clears only its unique bits)."""
        self.removes += 1
        for idx in self._idx(value):
            bit = 1 << idx
            if self._once & bit:
                self._sig &= ~bit
                self._once &= ~bit

    def clear(self) -> None:
        self._sig = 0
        self._once = 0

    @property
    def popcount(self) -> int:
        return bin(self._sig).count("1")

    @property
    def is_empty(self) -> bool:
        return self._sig == 0
