"""Structured simulator exceptions.

The simulator used to fail with bare ``RuntimeError``/``AssertionError``
strings; campaign tooling (the fault harness, the runner's retry logic,
CI triage) needs machine-readable failures.  Every error below carries
the simulated context it arose in — cycle, core, thread, transaction
site — and the deadlock-flavoured ones embed a wait-for-graph dump.

All simulation-time errors inherit ``RuntimeError`` so existing callers
(and tests) that catch ``RuntimeError`` keep working; new code should
catch the typed classes.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


class ReproError(Exception):
    """Base class of every typed error raised by the repro package."""


class SimulationError(ReproError, RuntimeError):
    """A simulation failed; carries the simulated context of the failure.

    ``context`` is free-form (cycle, core, tid, site, ...) and rendered
    into the message so plain tracebacks stay informative.
    """

    def __init__(self, message: str, **context: Any) -> None:
        self.context: dict[str, Any] = {
            k: v for k, v in context.items() if v is not None
        }
        if self.context:
            detail = ", ".join(f"{k}={v}" for k, v in self.context.items())
            message = f"{message} [{detail}]"
        super().__init__(message)

    @property
    def cycle(self) -> int | None:
        return self.context.get("cycle")

    @property
    def core(self) -> int | None:
        return self.context.get("core")


class TransactionError(SimulationError):
    """A transactional program misused the transaction API."""


class InvariantViolation(SimulationError, AssertionError):
    """An internal simulator invariant broke (a bug, not a user error)."""


class DeadlockError(SimulationError):
    """The simulation ended with live threads that can never progress.

    ``wait_graph`` is a list of per-core rows (core, status, waiting_on,
    tid, site, parked) — the wait-for graph at the moment the event
    queue drained; :func:`format_wait_graph` renders it.
    """

    def __init__(
        self,
        message: str,
        wait_graph: Sequence[Mapping[str, Any]] = (),
        **context: Any,
    ) -> None:
        self.wait_graph = [dict(row) for row in wait_graph]
        if self.wait_graph:
            message = f"{message}\n{format_wait_graph(self.wait_graph)}"
        super().__init__(message, **context)


class BudgetExhausted(SimulationError):
    """An event/time budget guard tripped (runaway or livelocked run)."""


class PoolExhausted(ReproError, RuntimeError):
    """The preserved redirect pool hit its configured page cap.

    SUV converts this into a transaction abort (with backoff) so the
    run degrades instead of crashing; seeing it escape to a caller means
    an allocation happened outside a transactional store.
    """

    def __init__(self, message: str, max_pages: int = 0, live_lines: int = 0):
        super().__init__(message)
        self.max_pages = max_pages
        self.live_lines = live_lines


class AccelUnavailableError(ReproError, RuntimeError):
    """A forced accel backend cannot run on this host.

    Raised by :func:`repro.accel.resolve_backend` when ``REPRO_ACCEL``
    (or ``HTMConfig.accel``) *forces* a backend whose host requirements
    are missing.  Only a forced selection raises: ``accel="auto"``
    degrades to the pure backend silently, because auto-selection is a
    performance preference, while a forced name in a config or CI job
    is a correctness claim about the environment.
    """

    def __init__(self, message: str, backend: str = "", reason: str = ""):
        self.backend = backend
        self.reason = reason
        if backend:
            message = f"{message} [backend={backend}]"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)


class RetryBudgetExhausted(ReproError, RuntimeError):
    """A spec used up its per-spec retry budget and failed terminally.

    Raised (and recorded as a :class:`~repro.runner.RunOutcome`'s
    ``error_type``) by the runner's supervision layer when every allowed
    attempt of a spec crashed, timed out, or returned a corrupt payload.
    The failure is *terminal and visible*: the spec is never silently
    dropped, never retried forever.
    """

    def __init__(
        self,
        message: str,
        spec_label: str = "",
        attempts: int = 0,
        last_error: str = "",
    ) -> None:
        self.spec_label = spec_label
        self.attempts = attempts
        self.last_error = last_error
        detail = []
        if spec_label:
            detail.append(spec_label)
        if attempts:
            detail.append(f"attempts={attempts}")
        if detail:
            message = f"{message} [{', '.join(detail)}]"
        if last_error:
            message = f"{message}: last error: {last_error}"
        super().__init__(message)


class CampaignJournalError(ReproError, RuntimeError):
    """A campaign journal could not be replayed or does not match.

    Raised when ``--resume`` is pointed at a journal recorded for a
    different spec set (resuming it would silently mix campaigns), or
    when the journal file is corrupt beyond the tolerated truncated
    trailing line.
    """

    def __init__(self, message: str, path: str = "") -> None:
        self.path = path
        if path:
            message = f"{message} [journal={path}]"
        super().__init__(message)


class UnknownSchemeError(ReproError, ValueError):
    """A scheme name matched neither a registered scheme nor a legal
    axis composition.

    Inherits ``ValueError`` so pre-existing callers that catch the old
    bare ``ValueError`` from ``make_version_manager`` keep working.
    ``suggestions`` holds near-miss registered names (close spellings),
    already rendered into the message.
    """

    def __init__(
        self,
        message: str,
        name: str = "",
        suggestions: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.suggestions = tuple(suggestions)
        if self.suggestions:
            message += f"; did you mean {' or '.join(map(repr, self.suggestions))}?"
        super().__init__(message)


class IncompatiblePolicyError(ReproError, ValueError):
    """A scheme composition crossed physically-incompatible policy axes.

    ``axes`` is the offending ``{axis: value}`` mapping and ``reason``
    the one-line physical justification (both rendered into the
    message), so the legality-matrix tests and CLI errors can explain
    *why* a combination is rejected, not just that it is.
    """

    def __init__(
        self,
        message: str,
        axes: Mapping[str, str] | None = None,
        reason: str = "",
    ) -> None:
        self.axes = dict(axes) if axes else {}
        self.reason = reason
        if self.axes:
            detail = ", ".join(f"{k}={v}" for k, v in self.axes.items())
            message = f"{message} [{detail}]"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)


class OracleViolation(ReproError, AssertionError):
    """The atomicity oracle refuted a run.

    ``report`` is the oracle's structured verdict (see
    :mod:`repro.oracle`); the message embeds its failure list.
    """

    def __init__(self, message: str, report: Mapping[str, Any] | None = None):
        self.report = dict(report) if report else {}
        failures = self.report.get("failures")
        if failures:
            message += "\n  - " + "\n  - ".join(str(f) for f in failures)
        super().__init__(message)


def format_wait_graph(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render a wait-for-graph dump as an aligned text block."""
    lines = ["wait-for graph:"]
    for row in rows:
        waiting = row.get("waiting_on")
        arrow = f" -> core {waiting}" if waiting is not None else ""
        site = row.get("site")
        tx = f" tx@site={site}" if site is not None else ""
        lines.append(
            f"  core {row.get('core')}: {row.get('status')}"
            f" tid={row.get('tid')}{tx}{arrow}"
        )
    parked = [r for r in rows if r.get("parked")]
    if parked:
        lines.append("  parked threads: " + ", ".join(
            f"tid={r.get('tid')} ({r.get('park_reason')})" for r in parked
        ))
    return "\n".join(lines)
