"""Deterministic fault injection for the HTM simulator.

The robustness harness perturbs a run at chosen cycles — squeezing the
redirect-table capacity, capping the preserved pool, forcing summary-
signature false-positive storms, killing transactions, delaying cores,
and inflating backoff/stall timing — while keeping the run a pure
function of ``(config, workload, seed, plan)``: fault actions fire as
ordinary events on the simulator's deterministic :class:`EventQueue`,
and any randomness comes from the ``"faults"`` stream of the run's
seeded :class:`~repro.sim.rng.RngStreams`.  The same seed and plan
therefore reproduce the identical fault trace and the identical
:class:`~repro.simulator.SimResult`.

A :class:`FaultPlan` is a named, JSON-serializable list of
:class:`FaultAction`\\ s.  Plans travel through
:class:`~repro.runner.spec.ExperimentSpec` as strings (a preset name or
inline JSON — see :func:`parse_plan`) so they stay hashable and stable
under the result-cache key.

Supported action kinds
----------------------

``table_squeeze``
    Shrink the per-core L1 redirect tables to ``l1_entries`` and/or the
    shared L2 table to ``l2_ways`` ways; victims take the organic
    demotion/spill path (L1 → L2 → software overflow area).
``pool_cap``
    Cap the preserved pool at ``pool_pages`` pages (``0`` = freeze at
    the pages allocated so far).  Further growth raises
    :class:`~repro.errors.PoolExhausted`, which SUV converts into an
    abort-with-backoff.
``sig_storm``
    Force the redirect summary filter to answer "maybe redirected" for
    every inquiry for ``duration`` cycles — a saturated-filter
    false-positive storm (wasted lookups, never wrong results).
``kill_tx``
    Doom the transaction running on ``core`` (all in-flight
    transactions when ``core`` is ``None``); victims abort through the
    ordinary path and retry after backoff.
``delay_core``
    Freeze ``core`` for ``cycles`` cycles at its next operation
    boundary (models an interrupt / SMT interference burst).
``backoff_scale``
    Multiply every backoff delay by ``factor`` (plus seeded jitter)
    for ``duration`` cycles.
``stall_jitter``
    Randomize the stall-retry period within ``[period, period*factor]``
    for ``duration`` cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.simulator import Simulator

#: action kinds understood by the injector
KINDS = (
    "table_squeeze",
    "pool_cap",
    "sig_storm",
    "kill_tx",
    "delay_core",
    "backoff_scale",
    "stall_jitter",
)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled perturbation of the run."""

    kind: str
    at_cycle: int
    core: int | None = None       # kill_tx / delay_core target (None = all)
    cycles: int = 0               # delay_core: stall length
    duration: int = 0             # sig_storm / *_scale / *_jitter window
    l1_entries: int | None = None  # table_squeeze
    l2_ways: int | None = None     # table_squeeze
    pool_pages: int = 0            # pool_cap (0 = freeze at current)
    factor: float = 1.0            # backoff_scale / stall_jitter

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of {KINDS})"
            )
        if self.at_cycle < 0:
            raise ValueError("fault at_cycle must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "at_cycle": self.at_cycle}
        for key in ("core", "cycles", "duration", "l1_entries", "l2_ways",
                    "pool_pages", "factor"):
            value = getattr(self, key)
            default = FaultAction.__dataclass_fields__[key].default
            if value != default:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultAction":
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of fault actions."""

    name: str
    actions: tuple[FaultAction, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "actions": [a.to_dict() for a in self.actions],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        return cls(
            name=data.get("name", "inline"),
            actions=tuple(
                FaultAction.from_dict(a) for a in data.get("actions", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# preset plans (the CLI campaign vocabulary)
# ----------------------------------------------------------------------
def _presets() -> dict[str, FaultPlan]:
    return {
        "table-squeeze": FaultPlan(
            "table-squeeze",
            (
                FaultAction("table_squeeze", at_cycle=1500,
                            l1_entries=4, l2_ways=2),
                FaultAction("table_squeeze", at_cycle=4000,
                            l1_entries=2, l2_ways=1),
            ),
        ),
        "pool-pressure": FaultPlan(
            "pool-pressure",
            (FaultAction("pool_cap", at_cycle=1200, pool_pages=0),),
        ),
        "sig-storm": FaultPlan(
            "sig-storm",
            (FaultAction("sig_storm", at_cycle=800, duration=6000),),
        ),
        "tx-kill": FaultPlan(
            "tx-kill",
            (
                FaultAction("kill_tx", at_cycle=900),
                FaultAction("kill_tx", at_cycle=2300),
                FaultAction("kill_tx", at_cycle=4100),
            ),
        ),
        "jitter": FaultPlan(
            "jitter",
            (
                FaultAction("backoff_scale", at_cycle=500,
                            duration=12000, factor=4.0),
                FaultAction("stall_jitter", at_cycle=500,
                            duration=12000, factor=3.0),
                FaultAction("delay_core", at_cycle=1700, core=0, cycles=400),
            ),
        ),
    }


PRESETS: dict[str, FaultPlan] = _presets()


def list_presets() -> list[str]:
    """Names of the built-in fault plans, sorted."""
    return sorted(PRESETS)


def parse_plan(spec: str | None) -> FaultPlan | None:
    """Resolve a spec string into a plan.

    ``None``/empty → no faults; a preset name → that preset; a string
    starting with ``{`` → inline JSON (:meth:`FaultPlan.from_json`).
    """
    if not spec:
        return None
    if spec in PRESETS:
        return PRESETS[spec]
    if spec.lstrip().startswith("{"):
        return FaultPlan.from_json(spec)
    raise ValueError(
        f"unknown fault plan {spec!r}: not a preset "
        f"({', '.join(list_presets())}) and not inline JSON"
    )


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Arms a :class:`FaultPlan` against one simulator run.

    The injector schedules each action on the simulator's event queue
    at ``arm`` time and exposes three hooks the simulator consults on
    its hot paths (``consume_delay``, ``perturb_backoff``,
    ``perturb_stall_retry``).  Every applied action is appended to
    :attr:`trace` as ``{"cycle", "kind", "target", "hit", "detail"}``.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.trace: list[dict[str, Any]] = []
        self._sim: "Simulator" | None = None
        self._rng = None
        self._pending_delay: dict[int, int] = {}
        self._backoff_until = -1
        self._backoff_factor = 1.0
        self._stall_until = -1
        self._stall_factor = 1.0

    # -- lifecycle ------------------------------------------------------
    def arm(self, sim: "Simulator") -> None:
        """Bind to a run and schedule every action on its event queue."""
        self._sim = sim
        self._rng = sim.rng.stream("faults")
        for action in self.plan.actions:
            delay = max(0, action.at_cycle - sim.queue.now)
            sim.queue.schedule(delay, lambda a=action: self._apply(a))

    # -- simulator hooks ------------------------------------------------
    def consume_delay(self, core: int) -> int:
        """One-shot pending delay for ``core`` (0 when none)."""
        return self._pending_delay.pop(core, 0)

    def perturb_backoff(self, core: int, delay: int) -> int:
        """The (possibly inflated) backoff delay to actually use."""
        sim = self._sim
        if sim is None or sim.queue.now > self._backoff_until:
            return delay
        jitter = int(self._rng.integers(0, 16))
        return int(delay * self._backoff_factor) + jitter

    def perturb_stall_retry(self, core: int, period: int) -> int:
        """The (possibly randomized) stall-retry period to use."""
        sim = self._sim
        if sim is None or sim.queue.now > self._stall_until:
            return period
        hi = max(period + 1, int(period * self._stall_factor))
        return int(self._rng.integers(period, hi + 1))

    # -- action application ---------------------------------------------
    def _record(self, action: FaultAction, hit: bool, **detail: Any) -> None:
        self.trace.append({
            "cycle": self._sim.queue.now,
            "kind": action.kind,
            "target": action.core,
            "hit": hit,
            "detail": detail,
        })

    def _apply(self, action: FaultAction) -> None:
        handler = getattr(self, f"_do_{action.kind}")
        handler(action)

    def _do_table_squeeze(self, action: FaultAction) -> None:
        tables = list(self._find("table"))
        if not tables:
            self._record(action, hit=False, reason="no redirect table")
            return
        demoted = spilled = 0
        for table in tables:
            d, s = table.squeeze(action.l1_entries, action.l2_ways)
            demoted += d
            spilled += s
        self._record(action, hit=True, demoted=demoted, spilled=spilled,
                     l1_entries=action.l1_entries, l2_ways=action.l2_ways)

    def _do_pool_cap(self, action: FaultAction) -> None:
        pools = list(self._find("pool"))
        if not pools:
            self._record(action, hit=False, reason="no preserved pool")
            return
        caps = []
        for pool in pools:
            cap = action.pool_pages or max(1, pool.pages_allocated)
            pool.max_pages = cap
            caps.append(cap)
        self._record(action, hit=True, caps=caps)

    def _do_sig_storm(self, action: FaultAction) -> None:
        summaries = [s for s in self._find("summary") if s.enabled]
        if not summaries:
            self._record(action, hit=False, reason="no summary filter")
            return
        for summary in summaries:
            summary.force_positive = True
        self._record(action, hit=True, duration=action.duration)
        def _end() -> None:
            for summary in summaries:
                summary.force_positive = False
        self._sim.queue.schedule(max(1, action.duration), _end)

    def _do_kill_tx(self, action: FaultAction) -> None:
        sim = self._sim
        victims = []
        for core in sim.cores:
            if action.core is not None and core.idx != action.core:
                continue
            # only running/stalled/backing-off transactions are killable;
            # a committer/aborter is mid-flight and a barrier-parked core
            # cannot legally hold a transaction anyway
            if (core.ctx is None or not core.frames
                    or core.status in ("committing", "aborting",
                                       "barrier", "done")):
                continue
            victims.append(core.idx)
        for idx in victims:
            sim._doom(idx, 0)
        self._record(action, hit=bool(victims), victims=victims)

    def _do_delay_core(self, action: FaultAction) -> None:
        target = action.core if action.core is not None else 0
        self._pending_delay[target] = (
            self._pending_delay.get(target, 0) + max(1, action.cycles)
        )
        self._record(action, hit=True, cycles=action.cycles, target=target)

    def _do_backoff_scale(self, action: FaultAction) -> None:
        self._backoff_until = self._sim.queue.now + action.duration
        self._backoff_factor = action.factor
        self._record(action, hit=True, factor=action.factor,
                     until=self._backoff_until)

    def _do_stall_jitter(self, action: FaultAction) -> None:
        self._stall_until = self._sim.queue.now + action.duration
        self._stall_factor = action.factor
        self._record(action, hit=True, factor=action.factor,
                     until=self._stall_until)

    # -- component discovery --------------------------------------------
    def _find(self, attr: str) -> Iterable[Any]:
        """Instances of ``attr`` across the scheme and its sub-managers
        (DynTM wraps an eager manager and a lazy one)."""
        seen: list[Any] = []
        scheme = self._sim.scheme
        for vm in (scheme, getattr(scheme, "eager", None),
                   getattr(scheme, "lazy", None)):
            if vm is None:
                continue
            obj = getattr(vm, attr, None)
            if obj is not None and all(obj is not s for s in seen):
                seen.append(obj)
        return seen
