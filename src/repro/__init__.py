"""repro — a reproduction of "SUV: A Novel Single-Update
Version-Management Scheme for Hardware Transactional Memory Systems"
(Yan, Jiang, Feng, Tian, Tan — IPDPS 2012).

Quickstart::

    from repro import SimConfig, Simulator
    from repro.workloads import make_workload

    program = make_workload("intruder", n_threads=16, seed=1)
    result = Simulator(SimConfig(), scheme="suv").run(program.threads)
    print(result.total_cycles, result.breakdown)
"""

from repro.config import SimConfig, default_config
from repro.simulator import SimResult, Simulator
from repro.stats.breakdown import Breakdown

__version__ = "1.0.0"

__all__ = [
    "Breakdown",
    "SimConfig",
    "SimResult",
    "Simulator",
    "default_config",
    "__version__",
]
