"""repro — a reproduction of "SUV: A Novel Single-Update
Version-Management Scheme for Hardware Transactional Memory Systems"
(Yan, Jiang, Feng, Tian, Tan — IPDPS 2012).

Quickstart::

    from repro import SimConfig, Simulator
    from repro.workloads import make_workload

    program = make_workload("intruder", n_threads=16, seed=1)
    result = Simulator(SimConfig(), scheme="suv").run(program.threads)
    print(result.total_cycles, result.breakdown)

Or, through the experiment-runner API (caching, matrices, process
pools) without touching ``argparse`` or the simulator directly::

    from repro import ExperimentSpec, RunMatrix, run_experiment, run_matrix

    result = run_experiment(ExperimentSpec("intruder", scheme="suv"))
    outcomes = run_matrix(
        RunMatrix(workloads=("genome", "intruder"),
                  schemes=("logtm-se", "suv")),
        max_workers=4, cache=".repro-cache",
    )

Robustness harness: every run can carry a deterministic fault plan and
be checked by the atomicity oracle::

    from repro import ExperimentSpec, run_experiment

    result = run_experiment(
        ExperimentSpec("genome", fault_plan="table-squeeze", check=True)
    )
    assert result.oracle["passed"]

Observability: arm a :class:`Tracer` for structured events and
per-phase isolation-window accounting (zero-overhead when disabled)::

    from repro import ExperimentSpec, Tracer, execute_spec

    tracer = Tracer(events=True)
    result = execute_spec(ExperimentSpec("intruder"), trace=tracer)
    print(result.phase_breakdown["isolation"])
    tracer.write_chrome_trace("trace.json")   # chrome://tracing
"""

from repro.bench import compare as compare_bench
from repro.bench import run_bench
from repro.config import SimConfig, default_config
from repro.errors import (
    BudgetExhausted,
    DeadlockError,
    InvariantViolation,
    OracleViolation,
    PoolExhausted,
    ReproError,
    SimulationError,
    TransactionError,
)
from repro.faults import (
    FaultAction,
    FaultInjector,
    FaultPlan,
    list_presets,
    parse_plan,
)
from repro.htm.vm.base import available_schemes, register_scheme
from repro.oracle import OracleRecorder, check_run
from repro.runner import (
    ArtifactStore,
    ExperimentSpec,
    ResultCache,
    RunMatrix,
    RunOutcome,
    Runner,
    execute_spec,
    run_experiment,
    run_matrix,
)
from repro.provenance import provenance
from repro.simulator import SimResult, Simulator
from repro.stats.breakdown import Breakdown
from repro.trace import LatencyHistogram, Tracer

__version__ = "1.3.0"

__all__ = [
    "ArtifactStore",
    "Breakdown",
    "BudgetExhausted",
    "DeadlockError",
    "ExperimentSpec",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "InvariantViolation",
    "LatencyHistogram",
    "OracleRecorder",
    "OracleViolation",
    "PoolExhausted",
    "ReproError",
    "ResultCache",
    "RunMatrix",
    "RunOutcome",
    "Runner",
    "SimConfig",
    "SimResult",
    "SimulationError",
    "Simulator",
    "Tracer",
    "TransactionError",
    "available_schemes",
    "check_run",
    "compare_bench",
    "default_config",
    "execute_spec",
    "list_presets",
    "parse_plan",
    "provenance",
    "register_scheme",
    "run_bench",
    "run_experiment",
    "run_matrix",
    "__version__",
]
