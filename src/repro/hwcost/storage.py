"""Section V-C arithmetic: SUV's per-core storage, energy and area.

The paper's numbers:

* per-core state: a 2 Kbit redirect summary signature + a 2 Kbit
  uniquely-written bit vector + 512 first-level entries x 22 bits
  = (2 Kb + 2 Kb + 22 b x 512) / 8 = **1.875 KB**, about 5.86% of a
  32 KB L1;
* CMP dynamic energy bound: 0.5 x (0.150 nJ + 0.163 nJ) x 16 cores x
  1.2 GHz < **3 J**(/s), ~1.2% of the Rock processor's 250 W TDP;
* CMP area: 0.5 x 16 x 0.282 mm² = **2.26 mm²**, ~0.6% of Rock's
  396 mm² — the 0.5 factor being the 22-bit-vs-64-bit CACTI correction.
"""

from __future__ import annotations

from repro.config import RedirectConfig, SimConfig
from repro.data.processors import ROCK
from repro.hwcost.cacti import CactiLite


def per_core_storage_bytes(config: RedirectConfig | None = None,
                           entry_bits: int = 22) -> float:
    """Per-core SUV state in bytes (paper: 1.875 KB = 1920 B)."""
    cfg = config or RedirectConfig()
    bits = cfg.summary_bits            # redirect summary signature
    bits += cfg.summary_bits           # the uniquely-written bit vector
    bits += entry_bits * cfg.l1_entries
    return bits / 8


def per_core_storage_fraction_of_l1(config: SimConfig | None = None) -> float:
    """The paper's "about 5.86% of the L1 data cache" figure."""
    cfg = config or SimConfig()
    return per_core_storage_bytes(cfg.redirect) / cfg.l1.size_bytes


def cmp_energy_bound_joules(
    config: SimConfig | None = None,
    tech_nm: int = 45,
    correction: float = 0.5,
) -> float:
    """Upper bound on table energy per second across the CMP (paper: <3 J).

    Assumes one read + one write per cycle per core — the worst case —
    scaled by the 22-bit-entry correction factor.
    """
    cfg = config or SimConfig()
    est = CactiLite().estimate(tech_nm)
    per_access_nj = est.read_energy_nj + est.write_energy_nj
    accesses_per_s = cfg.clock_ghz * 1e9
    return correction * per_access_nj * 1e-9 * cfg.n_cores * accesses_per_s


def cmp_table_area_mm2(
    config: SimConfig | None = None,
    tech_nm: int = 45,
    correction: float = 0.5,
) -> float:
    """Total first-level-table silicon area across the CMP (paper: 2.26 mm²)."""
    cfg = config or SimConfig()
    est = CactiLite().estimate(tech_nm)
    return correction * cfg.n_cores * est.area_mm2


def suv_overhead_report(config: SimConfig | None = None) -> dict[str, float]:
    """All Section V-C figures in one dictionary."""
    cfg = config or SimConfig()
    energy = cmp_energy_bound_joules(cfg)
    area = cmp_table_area_mm2(cfg)
    return {
        "per_core_bytes": per_core_storage_bytes(cfg.redirect),
        "per_core_kb": per_core_storage_bytes(cfg.redirect) / 1024,
        "fraction_of_l1": per_core_storage_fraction_of_l1(cfg),
        "cmp_energy_joules_per_s": energy,
        "energy_fraction_of_rock_tdp": energy / ROCK.tdp_w,
        "cmp_area_mm2": area,
        "area_fraction_of_rock": area / ROCK.area_mm2,
    }
