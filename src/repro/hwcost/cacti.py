"""CACTI-lite: an analytic model of fully-associative table overheads.

The paper runs CACTI 5.3 on a 4 KB, 512-entry fully-associative table
(CACTI's 8-byte minimum line forces 64-bit entries even though a SUV
first-level entry is 22 bits) and reports access time, dynamic read and
write energy, and silicon area at four technology nodes (Table VII).

We reproduce those numbers with a small analytic model in the CACTI
spirit: a fully-associative lookup is a tag-CAM match followed by a data
read, so access time decomposes into a gate-delay term (scales with
feature size) and a wire term (scales super-linearly); dynamic energy
scales with C·V² (feature size × voltage²); area with feature size
squared.  The per-node device parameters are calibrated against the
paper's published Table VII values at the reference geometry, and the
model generalizes over entry count, entry width and associativity for
the sensitivity analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

#: per-node device scaling constants: (feature nm, supply V, relative
#: gate delay).  Supply voltages follow ITRS values used by CACTI 5.3.
_NODES = {
    90: dict(vdd=1.10, gate=1.00),
    65: dict(vdd=1.10, gate=0.72),
    45: dict(vdd=1.00, gate=0.43),
    32: dict(vdd=0.90, gate=0.30),
}

#: reference geometry of the paper's CACTI run
_REF_ENTRIES = 512
_REF_ENTRY_BITS = 64

#: calibration anchors: the paper's Table VII at the reference geometry.
#: access time (ns), read energy (nJ), write energy (nJ), area (mm^2)
_TABLE_VII = {
    90: (1.382, 0.403, 0.434, 0.951),
    65: (0.995, 0.239, 0.260, 0.589),
    45: (0.588, 0.150, 0.163, 0.282),
    32: (0.412, 0.072, 0.078, 0.143),
}


@dataclass(frozen=True)
class TableEstimate:
    """Estimated overheads of one hardware table at one node."""

    tech_nm: int
    entries: int
    entry_bits: int
    access_time_ns: float
    read_energy_nj: float
    write_energy_nj: float
    area_mm2: float

    def cycles_at(self, clock_ghz: float) -> int:
        """Whole clock cycles one access takes at ``clock_ghz``."""
        period_ns = 1.0 / clock_ghz
        cycles = self.access_time_ns / period_ns
        return max(1, int(-(-cycles // 1)))  # ceil


class CactiLite:
    """Analytic estimator calibrated to the paper's CACTI 5.3 outputs."""

    def __init__(self) -> None:
        self._anchors = _TABLE_VII

    @staticmethod
    def nodes() -> list[int]:
        return sorted(_NODES, reverse=True)

    def estimate(
        self,
        tech_nm: int,
        entries: int = _REF_ENTRIES,
        entry_bits: int = _REF_ENTRY_BITS,
    ) -> TableEstimate:
        """Overheads of a fully-associative table.

        At the reference geometry this returns the paper's Table VII
        values exactly; other geometries scale analytically: CAM match
        time grows with log2(entries) (match-line buildup), energy and
        area grow linearly with total bit count and match width.
        """
        if tech_nm not in self._anchors:
            raise ValueError(
                f"unsupported node {tech_nm} nm; choose from "
                f"{sorted(self._anchors)}"
            )
        t_ref, e_rd_ref, e_wr_ref, a_ref = self._anchors[tech_nm]

        import math

        size_ratio = (entries * entry_bits) / (_REF_ENTRIES * _REF_ENTRY_BITS)
        # match-line + decode depth term
        depth = math.log2(max(entries, 2)) / math.log2(_REF_ENTRIES)
        width = entry_bits / _REF_ENTRY_BITS

        access = t_ref * (0.6 + 0.4 * depth) * (0.8 + 0.2 * width)
        read = e_rd_ref * (0.3 + 0.7 * size_ratio)
        write = e_wr_ref * (0.3 + 0.7 * size_ratio)
        area = a_ref * (0.15 + 0.85 * size_ratio)
        return TableEstimate(
            tech_nm=tech_nm,
            entries=entries,
            entry_bits=entry_bits,
            access_time_ns=round(access, 3),
            read_energy_nj=round(read, 3),
            write_energy_nj=round(write, 3),
            area_mm2=round(area, 3),
        )

    def table_vii(self) -> list[TableEstimate]:
        """The paper's Table VII: reference table at every node."""
        return [self.estimate(node) for node in self.nodes()]

    def suv_corrected(self, tech_nm: int, entry_bits: int = 22) -> TableEstimate:
        """The paper's "actual SUV overheads" correction.

        CACTI forces 64-bit entries; a SUV first-level entry is 22 bits,
        so the paper argues true costs are below half the estimates.
        """
        return self.estimate(tech_nm, entries=_REF_ENTRIES,
                             entry_bits=entry_bits)
