"""Hardware cost models (paper Section V-C, Tables VI and VII)."""

from repro.hwcost.cacti import CactiLite, TableEstimate
from repro.hwcost.storage import (
    cmp_energy_bound_joules,
    cmp_table_area_mm2,
    per_core_storage_bytes,
    suv_overhead_report,
)

__all__ = [
    "CactiLite",
    "TableEstimate",
    "cmp_energy_bound_joules",
    "cmp_table_area_mm2",
    "per_core_storage_bytes",
    "suv_overhead_report",
]
