"""The MESI-coherent memory hierarchy of the simulated CMP.

Coherence is modelled at transaction granularity: a GETS/GETM request is
resolved atomically (lookup, forwarding, invalidations) and its total
latency returned to the caller.  This captures everything the paper's
evaluation depends on — hit/miss behaviour, dirty-line write-backs,
invalidation storms, directory and mesh latencies — without simulating
individual protocol races, which GEMS resolves the same way from the
perspective of the committed-instruction timeline.

Transactional conflict NACKs are *not* issued here: the HTM layer checks
read/write signatures before any coherence action, mirroring the paper's
"check signatures on GETS/GETM arrival" with a conservative
all-active-transactions probe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimConfig
from repro.interconnect.mesh import Mesh
from repro.mem.cache import CacheLineState as S
from repro.mem.cache import SetAssocCache

# int views of the MESI states for hot-path comparisons (DESIGN §11)
_M = int(S.MODIFIED)
_E = int(S.EXCLUSIVE)
_S = int(S.SHARED)
from repro.mem.memory import MainMemory


@dataclass(slots=True)
class AccessResult:
    """Outcome of one load/store as seen by the requesting core.

    The eviction fields default to an (immutable, shared) empty tuple so
    the hit path — the overwhelmingly common case — allocates no lists;
    consumers only iterate them, never mutate (DESIGN §11).
    """

    latency: int
    l1_hit: bool
    source: str  # "l1", "owner", "l2", "mem"
    #: speculative (transactionally-written) lines this access evicted
    #: from the requester's L1 — the FasTM/lazy overflow trigger.
    evicted_speculative: "list[int] | tuple[int, ...]" = ()
    #: every line this access evicted from the requester's L1 (used to
    #: count transactional write-set overflows for the eager schemes).
    evicted: "list[int] | tuple[int, ...]" = ()


class MemoryHierarchy:
    """Per-core L1s + shared L2 + directory + banked memory over a mesh."""

    def __init__(self, config: SimConfig, mesh: Mesh | None = None) -> None:
        self.config = config
        self.mesh = mesh or Mesh(config.n_cores, config.mesh, config.memory.banks)
        self.l1s = [SetAssocCache(config.l1) for _ in range(config.n_cores)]
        self.l2 = SetAssocCache(config.l2)
        # the accel backend supplies the directory implementation (pure
        # set-based or vector bitmask); holder sets are equal either way
        from repro.accel import resolve_backend

        self.directory = resolve_backend(config.htm.accel).make_directory(
            config.directory, config.n_cores
        )
        self.memory = MainMemory(config.memory)
        # latency constants hoisted out of the per-access attribute
        # chains (config.l1.latency etc. never change after construction)
        self._l1_lat = config.l1.latency
        self._l2_lat = config.l2.latency
        self._dir_lat = self.directory.latency
        self._mem_lat = self.memory.access_latency()
        # L1 hits vastly outnumber misses and always produce the same
        # result object; consumers never mutate AccessResult (its
        # eviction fields are shared empty tuples already), so one
        # preallocated instance serves every hit
        self._hit = AccessResult(self._l1_lat, True, "l1")
        # counters
        self.l1_writebacks = 0
        self.invalidations = 0
        self.forwards = 0

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _to_bank(self, core: int, line: int) -> int:
        return self.mesh.core_to_bank(core, line)

    def _fetch_from_l2_or_mem(self, line: int) -> tuple[int, str]:
        """Latency and source of a fill serviced below the L1s."""
        if self.l2.lookup(line) is not None:
            return self._l2_lat, "l2"
        latency = self._l2_lat + self._mem_lat
        victim = self.l2.insert(line, S.EXCLUSIVE)
        # dirty L2 victims drain to memory off the critical path
        return latency, "mem"

    def _install_l1(
        self, core: int, line: int, state: S, dirty: bool, speculative: bool
    ) -> tuple[list[int], list[int]]:
        """Install a line in a core's L1, handling the victim.

        Returns ``(evicted_lines, evicted_speculative_lines)``.
        """
        victim = self.l1s[core].insert(line, state, dirty=dirty, speculative=speculative)
        evicted: list[int] = []
        evicted_spec: list[int] = []
        if victim is not None:
            evicted.append(victim.line)
            if victim.dirty:
                self.l1_writebacks += 1
                self.l2.insert(victim.line, S.MODIFIED, dirty=True)
            if victim.speculative:
                evicted_spec.append(victim.line)
            self.directory.drop(victim.line, core)
        return evicted, evicted_spec

    def _invalidate_holders(self, line: int, except_core: int) -> int:
        """Invalidate every remote copy; returns the added latency."""
        holders = self.directory.holders(line) - {except_core}
        if not holders:
            return 0
        worst = 0
        for holder in holders:
            self.invalidations += 1
            entry = self.l1s[holder].invalidate(line)
            if entry is not None and entry.dirty:
                self.l1_writebacks += 1
                self.l2.insert(line, S.MODIFIED, dirty=True)
            self.directory.drop(line, holder)
            worst = max(worst, self.mesh.core_to_core(except_core, holder))
        # request + acknowledgement round trip to the farthest holder
        return 2 * worst

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def read(self, core: int, line: int) -> AccessResult:
        """Perform a load of ``line`` by ``core`` (GETS on miss)."""
        l1 = self.l1s[core]
        entry = l1.lookup(line)
        if entry is not None:
            return self._hit

        latency = self._l1_lat  # detect the miss
        latency += self._to_bank(core, line) + self._dir_lat
        owner = self.directory.owner_of(line)
        if owner is not None and owner != core:
            # cache-to-cache forward; owner downgrades to S, dirty data
            # drains to the L2 so the L2 copy is up to date.
            self.forwards += 1
            own_entry = self.l1s[owner].peek(line)
            if own_entry is not None:
                if own_entry.dirty:
                    self.l1_writebacks += 1
                    self.l2.insert(line, S.MODIFIED, dirty=True)
                    own_entry.dirty = False
                own_entry.state = S.SHARED
                self.directory.record_shared(line, owner)
                latency += self.mesh.core_to_core(owner, core) + self._l1_lat
                source = "owner"
            else:
                # stale directory (silent eviction): fall through to L2
                self.directory.drop(line, owner)
                fill, source = self._fetch_from_l2_or_mem(line)
                latency += fill
        else:
            fill, source = self._fetch_from_l2_or_mem(line)
            latency += fill

        others = self.directory.holders(line) - {core}
        state = S.SHARED if others else S.EXCLUSIVE
        evicted, evicted_spec = self._install_l1(
            core, line, state, dirty=False, speculative=False
        )
        if state is S.SHARED:
            self.directory.record_shared(line, core)
        else:
            self.directory.record_owner(line, core)
        return AccessResult(latency, False, source, evicted_spec, evicted)

    def write(self, core: int, line: int, speculative: bool = False) -> AccessResult:
        """Perform a store to ``line`` by ``core`` (GETM on miss/upgrade)."""
        l1 = self.l1s[core]
        entry = l1.lookup(line)
        if entry is not None and entry.state <= _E:  # MODIFIED or EXCLUSIVE
            entry.state = S.MODIFIED
            entry.dirty = True
            if speculative and not entry.speculative:
                l1._note_speculative(entry)
            self.directory.record_owner(line, core)
            return self._hit

        if entry is not None and entry.state == _S:
            # upgrade: invalidate the other sharers through the directory
            latency = self._l1_lat
            latency += self._to_bank(core, line) + self._dir_lat
            latency += self._invalidate_holders(line, core)
            entry.state = S.MODIFIED
            entry.dirty = True
            if speculative and not entry.speculative:
                l1._note_speculative(entry)
            self.directory.record_owner(line, core)
            return AccessResult(latency, True, "l1")

        # full miss: GETM
        latency = self._l1_lat
        latency += self._to_bank(core, line) + self._dir_lat
        owner = self.directory.owner_of(line)
        if owner is not None and owner != core and self.l1s[owner].peek(line):
            self.forwards += 1
            own_entry = self.l1s[owner].invalidate(line)
            self.directory.drop(line, owner)
            if own_entry is not None and own_entry.dirty:
                self.l1_writebacks += 1
                self.l2.insert(line, S.MODIFIED, dirty=True)
            latency += self.mesh.core_to_core(owner, core) + self._l1_lat
            source = "owner"
        else:
            latency += self._invalidate_holders(line, core)
            fill, source = self._fetch_from_l2_or_mem(line)
            latency += fill
        evicted, evicted_spec = self._install_l1(
            core, line, S.MODIFIED, dirty=True, speculative=speculative
        )
        self.directory.record_owner(line, core)
        return AccessResult(latency, False, source, evicted_spec, evicted)

    def allocate_write(
        self, core: int, line: int, speculative: bool = False
    ) -> AccessResult:
        """Install a freshly-allocated line for writing without a fetch.

        SUV's redirected stores target brand-new pool lines: there is no
        old data below to fetch and no remote copy to invalidate, so the
        hardware allocates the line directly in the L1 (the line's
        contents come from the in-core copy of the original line).
        """
        l1 = self.l1s[core]
        entry = l1.lookup(line)
        if entry is not None:
            entry.state = S.MODIFIED
            entry.dirty = True
            if speculative and not entry.speculative:
                l1._note_speculative(entry)
            self.directory.record_owner(line, core)
            return self._hit
        evicted, evicted_spec = self._install_l1(
            core, line, S.MODIFIED, dirty=True, speculative=speculative
        )
        self.directory.record_owner(line, core)
        return AccessResult(
            self._l1_lat, False, "l1", evicted_spec, evicted
        )

    def local_write(self, core: int, line: int, speculative: bool = False) -> AccessResult:
        """A store that stays core-local (lazy/TCC-style buffering).

        The line is filled into the L1 if absent but no GETM is issued:
        remote copies stay valid and the directory is not updated, so
        the write is invisible to the rest of the CMP until the owning
        transaction publishes it at commit.
        """
        l1 = self.l1s[core]
        entry = l1.lookup(line)
        if entry is not None:
            entry.dirty = True
            if speculative and not entry.speculative:
                l1._note_speculative(entry)
            return self._hit
        latency = self._l1_lat
        latency += self._to_bank(core, line) + self._dir_lat
        fill, source = self._fetch_from_l2_or_mem(line)
        latency += fill
        evicted, evicted_spec = self._install_l1(
            core, line, S.MODIFIED, dirty=True, speculative=speculative
        )
        return AccessResult(latency, False, source, evicted_spec, evicted)

    def invalidate_remote(self, core: int, line: int) -> int:
        """Invalidate every remote copy of ``line`` without moving data.

        Used by SUV-based lazy commits: the new data already lives at the
        redirected address, so publication only needs the invalidation
        round trip.
        """
        return (
            self._to_bank(core, line)
            + self._dir_lat
            + self._invalidate_holders(line, core)
        )

    def flush_to_l2(self, core: int, line: int) -> int:
        """Write a dirty L1 line back to the L2 (FasTM's pre-store flush).

        Returns the latency; 0 if the line is not dirty in this L1.
        """
        entry = self.l1s[core].peek(line)
        if entry is None or not entry.dirty:
            return 0
        self.l1_writebacks += 1
        self.l2.insert(line, S.MODIFIED, dirty=True)
        entry.dirty = False
        return self._to_bank(core, line) + self._l2_lat

    def drop_speculative(self, core: int, invalidate: bool) -> list[int]:
        """Commit (keep) or abort (invalidate) a core's speculative lines."""
        lines = self.l1s[core].clear_speculative(invalidate=invalidate)
        if invalidate:
            for ln in lines:
                self.directory.drop(ln, core)
        return lines

    def mark_speculative(self, core: int, line: int) -> None:
        l1 = self.l1s[core]
        entry = l1.peek(line)
        if entry is not None and not entry.speculative:
            l1._note_speculative(entry)
