"""A set-associative, write-back cache with LRU replacement.

The cache tracks *lines* (already-shifted line indices), their MESI state,
dirtiness, and a ``speculative`` flag used by the FasTM and lazy version
managers to pin transactionally-written data in the L1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config import CacheConfig


class CacheLineState(enum.Enum):
    """MESI states of a cached line."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CacheLine:
    """One resident line."""

    line: int
    state: CacheLineState
    dirty: bool = False
    speculative: bool = False
    lru_tick: int = 0


class SetAssocCache:
    """LRU set-associative cache keyed by line index."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.ways = config.ways
        # one dict per set: line -> CacheLine (len <= ways)
        self._sets: list[dict[int, CacheLine]] = [dict() for _ in range(self.n_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, line: int) -> dict[int, CacheLine]:
        return self._sets[line % self.n_sets]

    def set_index(self, line: int) -> int:
        return line % self.n_sets

    def lookup(self, line: int, touch: bool = True) -> CacheLine | None:
        """The resident entry for ``line``, or None.  Counts hit/miss."""
        entry = self._set_of(line).get(line)
        if entry is None or entry.state is CacheLineState.INVALID:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            self._tick += 1
            entry.lru_tick = self._tick
        return entry

    def peek(self, line: int) -> CacheLine | None:
        """Like lookup but without touching LRU or counters."""
        entry = self._set_of(line).get(line)
        if entry is None or entry.state is CacheLineState.INVALID:
            return None
        return entry

    def insert(
        self,
        line: int,
        state: CacheLineState,
        dirty: bool = False,
        speculative: bool = False,
    ) -> CacheLine | None:
        """Install ``line``; returns the victim line evicted to make room.

        Victim selection is LRU among non-speculative lines first: FasTM
        pins speculative lines as long as a non-speculative victim exists
        (it *overflows* only when a set fills with speculative lines, which
        the caller detects because the returned victim is speculative).
        """
        cset = self._set_of(line)
        existing = cset.get(line)
        self._tick += 1
        if existing is not None:
            existing.state = state
            existing.dirty = dirty or existing.dirty
            existing.speculative = speculative or existing.speculative
            existing.lru_tick = self._tick
            return None
        victim: CacheLine | None = None
        if len(cset) >= self.ways:
            normal = [e for e in cset.values() if not e.speculative]
            pool = normal if normal else list(cset.values())
            victim = min(pool, key=lambda e: e.lru_tick)
            del cset[victim.line]
            self.evictions += 1
        cset[line] = CacheLine(
            line=line, state=state, dirty=dirty, speculative=speculative,
            lru_tick=self._tick,
        )
        return victim

    def invalidate(self, line: int) -> CacheLine | None:
        """Drop ``line``; returns the entry that was resident (if any)."""
        cset = self._set_of(line)
        return cset.pop(line, None)

    def resident_lines(self) -> list[int]:
        """All currently-resident line indices (test/diagnostic helper)."""
        return [ln for cset in self._sets for ln in cset]

    def speculative_lines(self) -> list[int]:
        return [
            e.line for cset in self._sets for e in cset.values() if e.speculative
        ]

    def clear_speculative(self, invalidate: bool = False) -> list[int]:
        """Commit (clear flags) or abort (invalidate) speculative lines.

        Returns the affected line indices.
        """
        affected: list[int] = []
        for cset in self._sets:
            for ln in list(cset):
                entry = cset[ln]
                if not entry.speculative:
                    continue
                affected.append(ln)
                if invalidate:
                    del cset[ln]
                else:
                    entry.speculative = False
        return affected

    @property
    def occupancy(self) -> int:
        return sum(len(cset) for cset in self._sets)
