"""A set-associative, write-back cache with LRU replacement.

The cache tracks *lines* (already-shifted line indices), their MESI state,
dirtiness, and a ``speculative`` flag used by the FasTM and lazy version
managers to pin transactionally-written data in the L1.

Hot-path notes (DESIGN §11):

* :class:`CacheLineState` is an ``IntEnum`` so MESI checks on the lookup
  path compare machine ints, not enum identities;
* :class:`CacheLine` uses ``__slots__`` (no per-line ``__dict__``);
* the set index uses a bitmask when the set count is a power of two;
* per-set dicts are allocated lazily — tiny workloads touch a handful
  of the L2's 2 048 sets, so eager allocation was pure construction
  cost;
* speculative lines are tracked in an insertion-ordered side index, so
  commit/abort processing visits exactly the speculative lines instead
  of scanning every set.
"""

from __future__ import annotations

import enum

from repro.config import CacheConfig


class CacheLineState(enum.IntEnum):
    """MESI states of a cached line."""

    MODIFIED = 0
    EXCLUSIVE = 1
    SHARED = 2
    INVALID = 3


_INVALID = int(CacheLineState.INVALID)


class CacheLine:
    """One resident line."""

    __slots__ = ("line", "state", "dirty", "speculative", "lru_tick")

    def __init__(
        self,
        line: int,
        state: CacheLineState,
        dirty: bool = False,
        speculative: bool = False,
        lru_tick: int = 0,
    ) -> None:
        self.line = line
        self.state = state
        self.dirty = dirty
        self.speculative = speculative
        self.lru_tick = lru_tick

    def __repr__(self) -> str:  # diagnostics only
        return (
            f"CacheLine(line={self.line}, state={self.state!r}, "
            f"dirty={self.dirty}, speculative={self.speculative}, "
            f"lru_tick={self.lru_tick})"
        )


class SetAssocCache:
    """LRU set-associative cache keyed by line index."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.ways = config.ways
        # one dict per set (line -> CacheLine, len <= ways), allocated on
        # first touch
        self._sets: list[dict[int, CacheLine] | None] = [None] * self.n_sets
        #: bitmask set index when n_sets is a power of two, else -1
        self._set_mask = (
            self.n_sets - 1 if self.n_sets & (self.n_sets - 1) == 0 else -1
        )
        #: insertion-ordered index of currently-speculative lines
        self._spec: dict[int, CacheLine] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def set_index(self, line: int) -> int:
        mask = self._set_mask
        return line & mask if mask >= 0 else line % self.n_sets

    def _set_of(self, line: int) -> dict[int, CacheLine]:
        mask = self._set_mask
        idx = line & mask if mask >= 0 else line % self.n_sets
        cset = self._sets[idx]
        if cset is None:
            cset = self._sets[idx] = {}
        return cset

    # ------------------------------------------------------------------
    def _note_speculative(self, entry: CacheLine) -> None:
        """Flag ``entry`` speculative and index it for commit/abort."""
        entry.speculative = True
        self._spec[entry.line] = entry

    def _drop_speculative_index(self, line: int) -> None:
        self._spec.pop(line, None)

    # ------------------------------------------------------------------
    def lookup(self, line: int, touch: bool = True) -> CacheLine | None:
        """The resident entry for ``line``, or None.  Counts hit/miss."""
        # set indexing inlined: this is the single hottest cache method
        mask = self._set_mask
        cset = self._sets[line & mask if mask >= 0 else line % self.n_sets]
        entry = cset.get(line) if cset is not None else None
        if entry is None or entry.state == _INVALID:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            self._tick += 1
            entry.lru_tick = self._tick
        return entry

    def peek(self, line: int) -> CacheLine | None:
        """Like lookup but without touching LRU or counters."""
        mask = self._set_mask
        cset = self._sets[line & mask if mask >= 0 else line % self.n_sets]
        entry = cset.get(line) if cset is not None else None
        if entry is None or entry.state == _INVALID:
            return None
        return entry

    def insert(
        self,
        line: int,
        state: CacheLineState,
        dirty: bool = False,
        speculative: bool = False,
    ) -> CacheLine | None:
        """Install ``line``; returns the victim line evicted to make room.

        Victim selection is LRU among non-speculative lines first: FasTM
        pins speculative lines as long as a non-speculative victim exists
        (it *overflows* only when a set fills with speculative lines, which
        the caller detects because the returned victim is speculative).
        """
        cset = self._set_of(line)
        existing = cset.get(line)
        self._tick += 1
        if existing is not None:
            existing.state = state
            existing.dirty = dirty or existing.dirty
            if speculative and not existing.speculative:
                self._note_speculative(existing)
            existing.lru_tick = self._tick
            return None
        victim: CacheLine | None = None
        if len(cset) >= self.ways:
            normal = [e for e in cset.values() if not e.speculative]
            pool = normal if normal else list(cset.values())
            victim = min(pool, key=lambda e: e.lru_tick)
            del cset[victim.line]
            if victim.speculative:
                self._drop_speculative_index(victim.line)
            self.evictions += 1
        entry = CacheLine(
            line=line, state=state, dirty=dirty, speculative=False,
            lru_tick=self._tick,
        )
        cset[line] = entry
        if speculative:
            self._note_speculative(entry)
        return victim

    def invalidate(self, line: int) -> CacheLine | None:
        """Drop ``line``; returns the entry that was resident (if any)."""
        entry = self._set_of(line).pop(line, None)
        if entry is not None and entry.speculative:
            self._drop_speculative_index(line)
        return entry

    def resident_lines(self) -> list[int]:
        """All currently-resident line indices (test/diagnostic helper)."""
        return [
            ln for cset in self._sets if cset is not None for ln in cset
        ]

    def speculative_lines(self) -> list[int]:
        return list(self._spec)

    def clear_speculative(self, invalidate: bool = False) -> list[int]:
        """Commit (clear flags) or abort (invalidate) speculative lines.

        Returns the affected line indices.
        """
        affected = list(self._spec)
        if invalidate:
            for ln in affected:
                self._set_of(ln).pop(ln, None)
        else:
            for entry in self._spec.values():
                entry.speculative = False
        self._spec.clear()
        return affected

    @property
    def occupancy(self) -> int:
        return sum(len(cset) for cset in self._sets if cset is not None)
