"""Bit-vector sharer directory (one entry per tracked line).

The directory lives logically alongside the L2 banks; its lookup latency
is the 6 cycles of Table III.  It records, for each line, either a single
owner holding the line in M/E, or the set of cores sharing it in S.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DirectoryConfig


@dataclass(slots=True)
class DirEntry:
    """Directory state for one line."""

    owner: int | None = None           # core holding M/E, if any
    sharers: set[int] = field(default_factory=set)

    @property
    def is_idle(self) -> bool:
        return self.owner is None and not self.sharers


class Directory:
    """Sharer-tracking directory with a bit-vector per line."""

    def __init__(self, config: DirectoryConfig, n_cores: int) -> None:
        self.config = config
        self.n_cores = n_cores
        self._entries: dict[int, DirEntry] = {}
        self.lookups = 0

    @property
    def latency(self) -> int:
        return self.config.latency

    def entry(self, line: int) -> DirEntry:
        self.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = DirEntry()
            self._entries[line] = e
        return e

    def record_shared(self, line: int, core: int) -> None:
        # entry() inlined here and in record_owner: these two sit on the
        # per-access hot path (every L1-hit store re-records its owner)
        self.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = self._entries[line] = DirEntry()
        if e.owner is not None and e.owner != core:
            # owner was downgraded by the controller before this call
            e.sharers.add(e.owner)
            e.owner = None
        e.sharers.add(core)
        if e.owner == core:
            e.owner = None
            e.sharers.add(core)

    def record_owner(self, line: int, core: int) -> None:
        self.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = self._entries[line] = DirEntry()
        e.owner = core
        e.sharers.clear()

    def drop(self, line: int, core: int) -> None:
        """Core silently dropped / evicted its copy."""
        e = self._entries.get(line)
        if e is None:
            return
        if e.owner == core:
            e.owner = None
        e.sharers.discard(core)
        if e.is_idle:
            del self._entries[line]

    def holders(self, line: int) -> set[int]:
        """Every core that may hold a valid copy."""
        e = self._entries.get(line)
        if e is None:
            return set()
        out = set(e.sharers)
        if e.owner is not None:
            out.add(e.owner)
        return out

    def owner_of(self, line: int) -> int | None:
        e = self._entries.get(line)
        return e.owner if e is not None else None

    @property
    def tracked_lines(self) -> int:
        return len(self._entries)
