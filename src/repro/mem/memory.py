"""Banked main memory: latency model plus the functional value store.

The value store is word-granular (8-byte words) and shared by every
version-management scheme; the *timing* of who reads/writes which line
when is what differs between schemes.
"""

from __future__ import annotations

from repro.config import MemoryConfig


class MainMemory:
    """4-bank main memory with a flat word-granular value store."""

    WORD_BYTES = 8

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self._values: dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    # -- timing ---------------------------------------------------------
    def access_latency(self) -> int:
        """Latency of one DRAM access (bank conflicts not modelled)."""
        return self.config.latency

    def bank_of_line(self, line: int) -> int:
        return line % self.config.banks

    # -- functional value store -----------------------------------------
    def load(self, addr: int) -> int:
        """Word value at ``addr`` (uninitialized memory reads as 0)."""
        self.reads += 1
        return self._values.get(addr, 0)

    def peek(self, addr: int) -> int:
        """Like :meth:`load` but without counting a read — used by
        bookkeeping that snoops values (version pre-imaging, oracles)
        rather than modelling a program access."""
        return self._values.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        self.writes += 1
        self._values[addr] = value

    def bulk_store(self, items: dict[int, int]) -> None:
        """Publish a committed write buffer."""
        self.writes += len(items)
        self._values.update(items)

    def snapshot(self) -> dict[int, int]:
        """Copy of all defined words (test helper)."""
        return dict(self._values)
