"""Memory-hierarchy substrate: caches, directory, MESI, main memory."""

from repro.mem.cache import CacheLineState, SetAssocCache
from repro.mem.directory import Directory
from repro.mem.hierarchy import AccessResult, MemoryHierarchy
from repro.mem.memory import MainMemory

__all__ = [
    "AccessResult",
    "CacheLineState",
    "Directory",
    "MainMemory",
    "MemoryHierarchy",
    "SetAssocCache",
]
