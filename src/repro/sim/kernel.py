"""A minimal deterministic discrete-event queue.

The CMP simulator schedules one outstanding event per core plus a handful
of bookkeeping events.  Events at equal timestamps are delivered in
insertion order, which keeps runs bit-reproducible.

Host-performance notes (DESIGN §11): this queue is the innermost loop of
the whole simulator, so it avoids per-event Python overhead wherever the
semantics allow:

* :class:`Event` is a ``__slots__`` class and the heap is keyed by plain
  ``(time, seq)`` tuples, so ``heapq`` compares tuples in C instead of
  calling a generated dataclass ``__lt__``;
* **zero-delay events skip the heap**: an event scheduled for the
  current cycle goes to a FIFO of ``(seq, event)`` pairs.  Delivery
  interleaves the FIFO with the heap strictly by ``(time, seq)``, so
  the executed order is *identical* to an all-heap queue — the fast
  path can change host time only, never simulated order;
* the live-event count is maintained incrementally (``__len__`` is
  O(1)) and :attr:`peak_queue` tracks **live** events only — cancelled
  events awaiting pop are queue garbage, not queue pressure;
* cancelled events are compacted lazily: when more than half the heap
  is dead weight the heap is rebuilt, keeping pop cost bounded without
  paying O(n) removal on every cancel.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Callable

from repro.errors import BudgetExhausted

# Event lifecycle states (ints, not an enum: this is the hot path)
_PENDING = 0
_DONE = 1
_CANCELLED = 2

#: rebuild the heap once it holds this many cancelled entries *and*
#: they outnumber the live ones (amortized O(1) per cancel)
_COMPACT_MIN = 64


class Event:
    """A scheduled callback.  Ordering key is ``(time, seq)``."""

    __slots__ = ("time", "seq", "fn", "_state", "_queue")

    def __init__(self, time: int, seq: int, fn: Callable[[], None],
                 queue: "EventQueue | None" = None) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self._state = _PENDING
        self._queue = queue

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if self._state != _PENDING:
            return
        self._state = _CANCELLED
        q = self._queue
        if q is not None:
            q._live -= 1
            q._dead += 1
            q._maybe_compact()


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        #: (time, seq, event) triples — tuple ordering, no Event.__lt__
        self._heap: list[tuple[int, int, Event]] = []
        #: (seq, event) FIFO of events scheduled for the *current* cycle;
        #: always drained before ``now`` may advance
        self._zero: list[tuple[int, int, Event]] = []
        self._zero_head = 0
        self._seq = 0
        self._live = 0
        self._dead = 0
        self.now = 0
        #: most *live* events ever outstanding at once — a queue-pressure
        #: gauge surfaced on ``SimResult.phase_breakdown["kernel"]``
        self.peak_queue = 0

    def __len__(self) -> int:
        return self._live

    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        # Event.__init__ bypassed: schedule() runs once or twice per
        # simulated event, and the constructor call frame is pure
        # overhead for five slot stores
        ev = Event.__new__(Event)
        ev.fn = fn
        ev._state = _PENDING
        ev._queue = self
        ev.seq = seq
        if delay == 0:
            ev.time = now = self.now
            self._zero.append((now, seq, ev))
        else:
            ev.time = when = self.now + int(delay)
            heappush(self._heap, (when, seq, ev))
        live = self._live + 1
        self._live = live
        if live > self.peak_queue:
            self.peak_queue = live
        return ev

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute timestamp ``time >= now``."""
        return self.schedule(time - self.now, fn)

    #: fire-and-forget variant of :meth:`schedule` for call sites that
    #: never cancel (the overwhelming majority of the simulator's hot
    #: scheduling).  The pure queue has no cheaper representation than
    #: an Event, so this is an alias; the vector backend's calendar
    #: queue overrides it with a no-allocation fast path.  Callers must
    #: treat the return value as ``None``.
    schedule_fast = schedule

    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Drop cancelled heap entries once they dominate the queue."""
        if self._dead < _COMPACT_MIN or self._dead <= self._live:
            return
        # compact IN PLACE: run()'s inner loop holds local aliases of
        # both lists, so rebinding self._heap/self._zero here would
        # silently detach them
        self._heap[:] = [
            item for item in self._heap if item[2]._state == _PENDING
        ]
        heapq.heapify(self._heap)
        start = self._zero_head
        if start:
            del self._zero[:start]
            self._zero_head = 0
        self._zero[:] = [
            item for item in self._zero if item[2]._state == _PENDING
        ]
        self._dead = 0

    def _pop_next(self) -> Event | None:
        """The next live event in strict ``(time, seq)`` order, or None.

        The zero-FIFO holds only events stamped with the current ``now``,
        and every heap entry has ``time >= now``; comparing the two front
        keys therefore reproduces exactly the order a single heap would
        deliver.
        """
        heap = self._heap
        zero = self._zero
        while True:
            zi = self._zero_head
            # (time, seq) is globally unique, so comparing the triples
            # never reaches the Event element
            if zi < len(zero) and (not heap or heap[0] > zero[zi]):
                ev = zero[zi][2]
                self._zero_head = zi + 1
                if self._zero_head >= len(zero):
                    del zero[:]
                    self._zero_head = 0
            elif heap:
                ev = heappop(heap)[2]
            else:
                return None
            if ev._state == _PENDING:
                return ev
            # cancelled entry finally popped: no longer dead weight
            self._dead -= 1

    def _peek_next(self) -> Event | None:
        """The next live event without removing it (budget checks)."""
        heap = self._heap
        zero = self._zero
        while True:
            zi = self._zero_head
            if zi < len(zero) and (not heap or heap[0] > zero[zi]):
                ev = zero[zi][2]
                if ev._state == _PENDING:
                    return ev
                self._zero_head = zi + 1
                self._dead -= 1
            elif heap:
                ev = heap[0][2]
                if ev._state == _PENDING:
                    return ev
                heappop(heap)
                self._dead -= 1
            else:
                return None

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next live event; returns False when the queue is empty."""
        ev = self._pop_next()
        if ev is None:
            return False
        ev._state = _DONE
        self._live -= 1
        self.now = ev.time
        ev.fn()
        return True

    def run(self, max_events: int | None = None, max_time: int | None = None) -> int:
        """Drain the queue; returns the number of events executed.

        ``max_events``/``max_time`` guard against runaway simulations
        (e.g. a livelocked conflict-resolution policy under test).
        """
        executed = 0
        if max_time is None:
            # fast path (also covers a pure event budget): no peek per
            # event — the budget check is one int compare, and the next
            # event is only peeked once the budget is actually hit, to
            # distinguish "drained" from "exhausted"
            budget = -1 if max_events is None else max_events
            heap = self._heap
            zero = self._zero
            while True:
                if executed == budget:
                    if self._peek_next() is None:
                        return executed
                    raise BudgetExhausted(
                        f"event budget exhausted ({max_events} events)",
                        cycle=self.now, events=executed,
                    )
                # _pop_next inlined: this loop is the innermost loop of
                # the whole simulator (see the module docstring)
                while True:
                    zi = self._zero_head
                    if zi < len(zero) and (not heap or heap[0] > zero[zi]):
                        ev = zero[zi][2]
                        self._zero_head = zi + 1
                        if self._zero_head >= len(zero):
                            del zero[:]
                            self._zero_head = 0
                    elif heap:
                        ev = heappop(heap)[2]
                    else:
                        return executed
                    if ev._state == _PENDING:
                        break
                    self._dead -= 1
                ev._state = _DONE
                self._live -= 1
                self.now = ev.time
                ev.fn()
                executed += 1
        while True:
            nxt = self._peek_next()
            if nxt is None:
                return executed
            if max_events is not None and executed >= max_events:
                raise BudgetExhausted(
                    f"event budget exhausted ({max_events} events)",
                    cycle=self.now, events=executed,
                )
            if nxt.time > max_time:
                raise BudgetExhausted(
                    f"time budget exhausted (t={nxt.time} > {max_time})",
                    cycle=self.now, events=executed,
                )
            ev = self._pop_next()
            assert ev is nxt
            ev._state = _DONE
            self._live -= 1
            self.now = ev.time
            ev.fn()
            executed += 1
