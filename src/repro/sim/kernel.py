"""A minimal deterministic discrete-event queue.

The CMP simulator schedules one outstanding event per core plus a handful
of bookkeeping events.  Events at equal timestamps are delivered in
insertion order, which keeps runs bit-reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import BudgetExhausted


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering key is ``(time, seq)``."""

    time: int
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self.now = 0
        #: most events ever outstanding at once (includes cancelled
        #: events awaiting pop) — a cheap queue-pressure gauge surfaced
        #: on ``SimResult.phase_breakdown["kernel"]``
        self.peak_queue = 0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        ev = Event(self.now + int(delay), self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        if len(self._heap) > self.peak_queue:
            self.peak_queue = len(self._heap)
        return ev

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute timestamp ``time >= now``."""
        return self.schedule(time - self.now, fn)

    def step(self) -> bool:
        """Run the next live event; returns False when the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            ev.fn()
            return True
        return False

    def run(self, max_events: int | None = None, max_time: int | None = None) -> int:
        """Drain the queue; returns the number of events executed.

        ``max_events``/``max_time`` guard against runaway simulations
        (e.g. a livelocked conflict-resolution policy under test).
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                raise BudgetExhausted(
                    f"event budget exhausted ({max_events} events)",
                    cycle=self.now, events=executed,
                )
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                continue
            if max_time is not None and nxt.time > max_time:
                raise BudgetExhausted(
                    f"time budget exhausted (t={nxt.time} > {max_time})",
                    cycle=self.now, events=executed,
                )
            self.step()
            executed += 1
        return executed
