"""Discrete-event simulation kernel: event queue, clock and RNG streams."""

from repro.sim.kernel import Event, EventQueue
from repro.sim.rng import RngStreams

__all__ = ["Event", "EventQueue", "RngStreams"]
