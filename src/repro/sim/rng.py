"""Named deterministic RNG streams.

Every stochastic decision in the simulator (workload data, backoff jitter,
signature hash salts) draws from a stream derived from a single root seed,
so a run is a pure function of ``(config, workload, seed)``.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A family of independent, reproducible generators keyed by name."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(self.root_seed, spawn_key=(_stable_key(name),))
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)


def _stable_key(name: str) -> int:
    """A deterministic 63-bit key for a stream name (FNV-1a)."""
    h = 0xCBF29CE484222325
    for b in name.encode():
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFFFFFFFFFF
