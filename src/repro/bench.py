"""Host-performance benchmark with a regression gate.

``repro bench`` runs a *pinned* matrix of tiny-scale experiments
serially (no cache, no pool — measured work only) and records, per
entry:

* **fidelity metrics** — simulated cycles, commits, aborts and the
  isolation-window accounting.  These are seed-deterministic and must
  match a baseline *exactly*: a difference means the simulator's
  behaviour changed, which a performance PR must not do silently.
* **host metrics** — wall-clock seconds, simulated events per second
  and transactions per second.  These vary across machines and loads,
  so :func:`compare` judges them leniently (default 15%) and only in
  the slower direction, after normalizing by a calibration probe.

The output file is schema-versioned (``BENCH_SCHEMA_VERSION``) and
named ``BENCH_<date>.json``; ``repro compare-bench`` diffs two such
files and exits non-zero past the thresholds, which is the CI gate.
"""

from __future__ import annotations

import datetime
import json
import time
from pathlib import Path

from repro.provenance import provenance
from repro.runner.executor import execute_spec
from repro.runner.spec import ExperimentSpec

#: bump when the BENCH file layout changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: the pinned matrix: small enough for CI, wide enough to cover an
#: undo-log scheme, an L1-pinned scheme and the paper's SUV
BENCH_WORKLOADS = ("ssca2", "synthetic")
BENCH_SCHEMES = ("logtm-se", "fastm", "suv")
BENCH_SEED = 3
BENCH_CORES = 4

#: fidelity keys compared exactly (per entry)
FIDELITY_KEYS = ("total_cycles", "commits", "aborts")


def bench_specs(scale: str = "tiny") -> list[ExperimentSpec]:
    """The pinned spec matrix at ``scale``."""
    return [
        ExperimentSpec(
            workload=workload,
            scheme=scheme,
            scale=scale,
            seed=BENCH_SEED,
            cores=BENCH_CORES,
        )
        for workload in BENCH_WORKLOADS
        for scheme in BENCH_SCHEMES
    ]


def calibrate(iterations: int = 2_000_000) -> float:
    """Seconds a fixed pure-python loop takes on this host.

    Benchmarks run on heterogeneous machines (laptops, CI runners);
    dividing wall times by this probe before comparing factors the raw
    host speed out, leaving mostly *code* slowdowns to trip the gate.
    """
    best = float("inf")
    for _ in range(3):
        acc = 0
        start = time.perf_counter()
        for i in range(iterations):
            acc += i & 7
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(
    scale: str = "tiny", calibration: bool = True, repeats: int = 3
) -> dict:
    """Run the pinned matrix; returns the schema-versioned document.

    Each entry is measured *warm*: one untimed warm-up run absorbs
    one-off costs (imports, numpy RNG setup, H3 memo fills, workload
    build), then the fastest of ``repeats`` timed runs is recorded —
    steady-state host throughput, not cold-start noise.  The simulation
    is seed-deterministic, so every run returns identical fidelity
    metrics; only the wall-clock measurement varies.
    """
    entries = []
    for spec in bench_specs(scale):
        execute_spec(spec)  # warm-up, untimed
        wall = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = execute_spec(spec)
            wall = min(wall, time.perf_counter() - start)
        txs = result.commits
        entries.append({
            "label": spec.label(),
            "workload": spec.workload,
            "scheme": spec.scheme,
            "seed": spec.seed,
            "cores": spec.cores,
            "scale": spec.scale,
            # fidelity (exact-match across hosts)
            "total_cycles": result.total_cycles,
            "commits": result.commits,
            "aborts": result.aborts,
            "phase_breakdown": result.phase_breakdown,
            # host performance (lenient-match)
            "wall_s": round(wall, 6),
            "events_per_s": round(result.events_executed / wall, 1),
            "txs_per_s": round(txs / wall, 1),
        })
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "scale": scale,
        "calibration_s": round(calibrate(), 6) if calibration else None,
        "provenance": provenance(),
        "entries": entries,
    }


def write_bench(doc: dict, out_dir: str | Path, date: str | None = None) -> Path:
    """Write ``doc`` as ``<out_dir>/BENCH_<date>.json``; returns the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stamp = date or datetime.date.today().isoformat()
    path = out / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict:
    """Load and schema-check one BENCH file."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r}, "
            f"this build reads {BENCH_SCHEMA_VERSION}"
        )
    return doc


def _calibrated_wall(entry: dict, doc: dict) -> float:
    """Wall seconds normalized by the document's calibration probe."""
    wall = float(entry["wall_s"])
    probe = doc.get("calibration_s")
    if probe:
        return wall / float(probe)
    return wall


def compare(
    baseline: dict, current: dict, wall_threshold: float = 0.15
) -> list[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass).

    Fidelity metrics must match exactly; calibrated wall time may only
    be slower by ``wall_threshold`` (fraction).  Entries present in one
    document only are reported too — a silently shrunk matrix must not
    look like a pass.
    """
    problems: list[str] = []
    base_by = {e["label"]: e for e in baseline.get("entries", ())}
    cur_by = {e["label"]: e for e in current.get("entries", ())}
    for label in sorted(base_by.keys() - cur_by.keys()):
        problems.append(f"{label}: missing from current run")
    for label in sorted(cur_by.keys() - base_by.keys()):
        problems.append(f"{label}: missing from baseline")
    for label in sorted(base_by.keys() & cur_by.keys()):
        base, cur = base_by[label], cur_by[label]
        for key in FIDELITY_KEYS:
            if base.get(key) != cur.get(key):
                problems.append(
                    f"{label}: {key} changed "
                    f"{base.get(key)} -> {cur.get(key)} (must match exactly)"
                )
        base_iso = (base.get("phase_breakdown") or {}).get("isolation")
        cur_iso = (cur.get("phase_breakdown") or {}).get("isolation")
        if base_iso is not None and base_iso != cur_iso:
            problems.append(
                f"{label}: isolation-window accounting changed "
                f"{base_iso} -> {cur_iso} (must match exactly)"
            )
        base_wall = _calibrated_wall(base, baseline)
        cur_wall = _calibrated_wall(cur, current)
        if base_wall > 0 and cur_wall > base_wall * (1.0 + wall_threshold):
            problems.append(
                f"{label}: calibrated wall time regressed "
                f"{base_wall:.3f} -> {cur_wall:.3f} "
                f"(+{cur_wall / base_wall - 1.0:.0%}, "
                f"threshold {wall_threshold:.0%})"
            )
    return problems
