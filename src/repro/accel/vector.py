"""The vector backend: word-array kernels for the profiled hot substrates.

Four substrates, each a drop-in for its pure sibling with **bit-identical
simulated behaviour** (the parity proofs live next to each class):

* :class:`VectorEventQueue` — a calendar queue (per-timestamp deque
  buckets plus a heap of distinct timestamps) with an allocation-free
  ``schedule_fast`` path.  Within a bucket, append order *is* global
  schedule order, so delivery order equals the pure heap's strict
  ``(time, seq)`` order.
* :class:`SignaturePool` / :class:`VectorBloomSignature` — read/write
  signatures as rows of one shared uint64 matrix, probed either singly
  (``test_mask``) or all at once (:meth:`SignaturePool.first_match`,
  the batched conflict scan).
* :class:`VectorCountingSummarySignature` — the Figure 5 Bloom counter
  with whole-array add/remove and a fully vectorized rebuild over the
  live redirect entries.
* :class:`VectorDirectory` — sharer sets as per-line int bitmasks
  (constant-word set algebra; the pure class allocates a Python set
  per line).

Everything here assumes a little-endian host (uint64 views of packed
bit streams); :func:`repro.accel.vector_unavailable_reason` gates on
that before this module is imported.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.config import DirectoryConfig, SignatureConfig
from repro.errors import BudgetExhausted
from repro.accel.pure import AccelBackend
from repro.sim.kernel import _PENDING, _DONE, Event
from repro.signatures.hashes import H3HashFamily

#: compact calendar buckets once this many cancelled events accumulate
#: *and* they outnumber the live ones (same policy as the pure heap)
_COMPACT_MIN = 64


class VectorEventQueue:
    """Deterministic calendar queue, API-compatible with ``EventQueue``.

    Events live in per-timestamp deques; a separate heap orders the
    *distinct* timestamps.  Draining a bucket front to back delivers
    events in append order, and appends happen in global ``schedule``
    call order, so the executed order is identical to the pure queue's
    ``(time, seq)`` heap — including zero-delay events, which land at
    the back of the bucket currently being drained.

    ``schedule_fast`` appends the bare callable (no :class:`Event`
    allocation, no handle); ``schedule`` still returns a cancellable
    :class:`Event` whose ``cancel`` marks it dead for the drain to skip.
    """

    def __init__(self) -> None:
        self._buckets: dict[int, deque] = {}
        self._times: list[int] = []  # heap of distinct bucket timestamps
        self._seq = 0
        self._live = 0
        self._dead = 0
        self.now = 0
        self.peak_queue = 0

    def __len__(self) -> int:
        return self._live

    def _bucket(self, when: int) -> deque:
        bucket = self._buckets.get(when)
        if bucket is None:
            bucket = self._buckets[when] = deque()
            heappush(self._times, when)
        return bucket

    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` in ``delay`` cycles; returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        ev = Event.__new__(Event)
        ev.fn = fn
        ev._state = _PENDING
        ev._queue = self
        ev.seq = seq
        ev.time = when = self.now + int(delay)
        self._bucket(when).append(ev)
        live = self._live + 1
        self._live = live
        if live > self.peak_queue:
            self.peak_queue = live
        return ev

    def schedule_fast(self, delay: int, fn: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no Event, no handle."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._bucket(self.now + int(delay)).append(fn)
        live = self._live + 1
        self._live = live
        if live > self.peak_queue:
            self.peak_queue = live

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute timestamp ``time >= now``."""
        return self.schedule(time - self.now, fn)

    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Rewrite buckets dominated by cancelled events (cancel() hook).

        The bucket for the *current* timestamp is skipped: ``run`` may
        hold an alias of it mid-drain, and its dead entries are swept by
        the drain itself anyway.
        """
        if self._dead < _COMPACT_MIN or self._dead <= self._live:
            return
        now = self.now
        removed = 0
        for when, bucket in self._buckets.items():
            if when == now:
                continue
            kept = deque(
                item for item in bucket
                if item.__class__ is not Event or item._state == _PENDING
            )
            removed += len(bucket) - len(kept)
            # empty buckets keep their dict slot and heap entry; run()
            # discards both when the timestamp is reached
            self._buckets[when] = kept
        self._dead -= removed

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next live event; returns False when the queue is empty."""
        buckets = self._buckets
        times = self._times
        while times:
            when = times[0]
            bucket = buckets[when]
            while bucket:
                item = bucket.popleft()
                if item.__class__ is Event:
                    if item._state != _PENDING:
                        self._dead -= 1
                        continue
                    item._state = _DONE
                    fn = item.fn
                else:
                    fn = item
                self._live -= 1
                self.now = when
                fn()
                return True
            del buckets[when]
            heappop(times)
        return False

    def run(self, max_events: int | None = None, max_time: int | None = None) -> int:
        """Drain the queue; returns the number of events executed.

        Matches the pure queue's budget semantics exactly: an exhausted
        budget raises only when a *live* next event exists, and the
        reported cycle is the last executed event's timestamp.
        """
        executed = 0
        budget = -1 if max_events is None else max_events
        buckets = self._buckets
        times = self._times
        while self._live:
            when = times[0]
            bucket = buckets[when]
            if max_time is not None and when > max_time:
                live_ahead = any(
                    item.__class__ is not Event or item._state == _PENDING
                    for item in bucket
                )
                if not live_ahead:
                    self._dead -= len(bucket)
                    del buckets[when]
                    heappop(times)
                    continue
                raise BudgetExhausted(
                    f"time budget exhausted (t={when} > {max_time})",
                    cycle=self.now, events=executed,
                )
            while bucket:
                item = bucket.popleft()
                if item.__class__ is Event:
                    if item._state != _PENDING:
                        self._dead -= 1
                        continue
                    if executed == budget:
                        bucket.appendleft(item)
                        raise BudgetExhausted(
                            f"event budget exhausted ({max_events} events)",
                            cycle=self.now, events=executed,
                        )
                    item._state = _DONE
                    fn = item.fn
                else:
                    if executed == budget:
                        bucket.appendleft(item)
                        raise BudgetExhausted(
                            f"event budget exhausted ({max_events} events)",
                            cycle=self.now, events=executed,
                        )
                    fn = item
                self._live -= 1
                self.now = when
                fn()
                executed += 1
            del buckets[when]
            heappop(times)
        return executed


class SignaturePool:
    """One shared (rows × words) uint64 matrix holding every signature.

    Rows are handed out LIFO from a free list and zeroed on release, so
    a fresh signature always starts empty.  Row indices carry no
    semantic meaning — the conflict scan orders its probes by core and
    frame, never by row — so recycling order cannot affect simulated
    results.
    """

    def __init__(self, words: int, capacity: int = 64) -> None:
        self.words = words
        self.arr = np.zeros((capacity, words), dtype=np.uint64)
        self._free = list(range(capacity - 1, -1, -1))

    def alloc(self) -> int:
        free = self._free
        if not free:
            old = self.arr
            cap = old.shape[0]
            grown = np.zeros((cap * 2, self.words), dtype=np.uint64)
            grown[:cap] = old
            self.arr = grown
            free.extend(range(cap * 2 - 1, cap - 1, -1))
        return free.pop()

    def release(self, row: int) -> None:
        self.arr[row] = 0
        self._free.append(row)

    def first_match(self, rows: Sequence[int], mask: np.ndarray) -> int:
        """Index into ``rows`` of the first signature containing ``mask``.

        The batched conflict scan: one fancy-index gather plus one
        compare over every probed signature, replacing the per-core
        Python loop.  Returns -1 when no row matches.
        """
        sub = self.arr[rows]
        ok = ((sub & mask) == mask).all(axis=1)
        i = int(ok.argmax())
        return i if ok[i] else -1


class VectorBloomSignature:
    """A Bloom signature stored as one row of a :class:`SignaturePool`.

    Same bits as :class:`~repro.signatures.bloom.BloomSignature` for the
    same insertions: both go through the shared H3 family, and the word
    array is just the big int split at 64-bit boundaries (little-endian
    word order, see ``H3HashFamily.mask_words``).
    """

    __slots__ = ("bits", "hashes", "_hash", "_pool", "_row", "_count")

    def __init__(self, pool: SignaturePool, bits: int, hashes: int,
                 seed: int = 0xB100) -> None:
        self.bits = bits
        self.hashes = hashes
        self._hash = H3HashFamily.shared(hashes, bits, seed)
        self._pool = pool
        self._row = pool.alloc()
        self._count = 0

    def __del__(self) -> None:
        # recycle the pool row when the owning frame is released; row
        # identity is semantically inert (see SignaturePool), so GC
        # timing cannot perturb simulated results
        try:
            self._pool.release(self._row)
        except Exception:  # pragma: no cover — interpreter shutdown
            pass

    def add(self, value: int) -> None:
        row = self._pool.arr[self._row]
        row |= self._hash.mask_words(value)
        self._count += 1

    def test(self, value: int) -> bool:
        mask = self._hash.mask_words(value)
        row = self._pool.arr[self._row]
        return bool(((row & mask) == mask).all())

    def test_mask(self, mask: np.ndarray) -> bool:
        row = self._pool.arr[self._row]
        return bool(((row & mask) == mask).all())

    def line_mask(self, value: int) -> np.ndarray:
        return self._hash.mask_words(value)

    @property
    def family(self) -> H3HashFamily:
        return self._hash

    def clear(self) -> None:
        self._pool.arr[self._row] = 0
        self._count = 0

    def union_inplace(self, other: "VectorBloomSignature") -> None:
        if other.bits != self.bits:
            raise ValueError("signature sizes differ")
        arr = self._pool.arr
        mine = arr[self._row]
        merged = mine | arr[other._row]
        if (merged != mine).any():
            self._count += other._count
        arr[self._row] = merged

    def intersects(self, other: "VectorBloomSignature") -> bool:
        arr = self._pool.arr
        return bool((arr[self._row] & arr[other._row]).any())

    @property
    def is_empty(self) -> bool:
        return not self._pool.arr[self._row].any()

    @property
    def popcount(self) -> int:
        return int(np.bitwise_count(self._pool.arr[self._row]).sum())

    @property
    def added(self) -> int:
        return self._count

    def false_positive_rate(self) -> float:
        fill = self.popcount / self.bits
        return fill ** self.hashes


class VectorSignatureScan:
    """Bit-sliced :class:`~repro.accel.pure.SignatureScan` twin.

    Construction *transposes* the probed signatures into one bit-plane
    per Bloom bit: plane ``b`` is an n-bit integer whose bit ``j`` says
    signature ``j`` has Bloom bit ``b`` set.  A probe then ANDs the
    planes of the mask's set bits — at most ``hashes`` of them — and
    the lowest set bit of the product names the first signature (in
    construction order) containing the whole mask, exactly what the
    pure per-signature loop returns.  This is the classic bit-sliced
    signature-file layout: probe cost is O(k) word ops instead of
    O(n · words), at the price of a transpose paid once per scan — so,
    like the pure class, the signature set is fixed at construction.
    """

    def __init__(self, pool: SignaturePool,
                 signatures: Sequence[VectorBloomSignature]) -> None:
        self._signatures = list(signatures)  # keep rows alive
        n = len(self._signatures)
        self._all = (1 << n) - 1
        if n:
            rows = np.array([sig._row for sig in self._signatures],
                            dtype=np.intp)
            sub = pool.arr[rows]
            # (n, bits) bit matrix -> (bits, ceil(n/8)) packed planes;
            # both views are little-endian, the layout the backend gates on
            bits = np.unpackbits(sub.view(np.uint8), axis=1,
                                 bitorder="little")
            packed = np.packbits(bits.T, axis=1, bitorder="little")
            stride = packed.shape[1]
            data = packed.tobytes()
            self._planes = [
                int.from_bytes(data[i * stride:(i + 1) * stride], "little")
                for i in range(packed.shape[0])
            ]
        else:
            self._planes = []

    def first_match(self, mask: np.ndarray) -> int:
        hit = self._all
        if not hit:
            return -1
        planes = self._planes
        for w in np.flatnonzero(mask):
            word = int(mask[w])
            base = int(w) << 6
            while word:
                low = word & -word
                hit &= planes[base + low.bit_length() - 1]
                if not hit:
                    return -1
                word ^= low
        return (hit & -hit).bit_length() - 1


class VectorSignatureContext:
    """Vector sibling of :class:`repro.accel.pure.SignatureContext`."""

    vectorized = True

    def __init__(self, config: SignatureConfig) -> None:
        self.config = config
        self.family = H3HashFamily.shared(config.hashes, config.bits, config.seed)
        self.mask_of: Callable[[int], np.ndarray] = self.family.mask_words
        self.pool = SignaturePool(self.family.words)

    def make_signature(self) -> VectorBloomSignature:
        cfg = self.config
        return VectorBloomSignature(self.pool, cfg.bits, cfg.hashes, cfg.seed)

    def make_scan(
        self, signatures: Iterable[VectorBloomSignature]
    ) -> VectorSignatureScan:
        return VectorSignatureScan(self.pool, list(signatures))


class VectorCountingSummarySignature:
    """Word-array Figure 5 Bloom counter, bit-identical to the pure one.

    The pure class walks the k hash indexes *sequentially*, which
    matters when two hashes collide on one bit for the same address: the
    second visit clears the ``once`` mark the first visit just set.  The
    whole-array ops below reproduce that exactly by splitting each
    address's mask into uniquely-hit bits ``u`` (from
    ``H3HashFamily.unique_mask_words``) and the rest:

    * **add** — a doubly-hit bit ends with ``sig=1, once=0`` whatever
      the prior state; a uniquely-hit bit sets ``once`` iff ``sig`` was
      clear, else clears it.  Hence ``once = (once & ~((u & sig) |
      (m & ~u))) | (u & ~sig)`` then ``sig |= m``.
    * **remove** — the pure loop clears exactly the bits of ``m`` still
      marked ``once`` (a doubly-hit bit is never marked): ``rm = once &
      m``.
    * **rebuild** — re-insertion from empty is order-independent; bit b
      ends ``once=1`` iff exactly one inserted address hits it *and*
      hits it uniquely, i.e. ``(per-bit insert count == 1) & OR(u_i)``.
    """

    __slots__ = ("bits", "hashes", "_hash", "_sig", "_once",
                 "adds", "removes")

    def __init__(self, bits: int, hashes: int, seed: int = 0x5BB) -> None:
        self.bits = bits
        self.hashes = hashes
        self._hash = H3HashFamily.shared(hashes, bits, seed)
        words = self._hash.words
        self._sig = np.zeros(words, dtype=np.uint64)
        self._once = np.zeros(words, dtype=np.uint64)
        self.adds = 0
        self.removes = 0

    def add(self, value: int) -> None:
        self.adds += 1
        m = self._hash.mask_words(value)
        u = self._hash.unique_mask_words(value)
        sig = self._sig
        once = self._once
        fresh_unique = u & ~sig
        once &= ~((u & sig) | (m & ~u))
        once |= fresh_unique
        sig |= m

    def test(self, value: int) -> bool:
        mask = self._hash.mask_words(value)
        return bool(((self._sig & mask) == mask).all())

    def remove(self, value: int) -> None:
        """Conservatively remove ``value`` (clears only its unique bits)."""
        self.removes += 1
        rm = self._once & self._hash.mask_words(value)
        self._sig &= ~rm
        self._once &= ~rm

    def clear(self) -> None:
        self._sig[:] = 0
        self._once[:] = 0

    def rebuild(self, values) -> None:
        """Vectorized clear-and-reinsert (the periodic software rebuild)."""
        vals = list(values)
        self.adds += len(vals)  # mirrors the pure rebuild's add() calls
        if not vals:
            self.clear()
            return
        family = self._hash
        masks = np.stack([family.mask_words(v) for v in vals])
        uniques = np.stack([family.unique_mask_words(v) for v in vals])
        self._sig = np.bitwise_or.reduce(masks, axis=0)
        # per-bit insertion counts via the packed byte stream (the
        # uint64<->uint8 views agree because the host is little-endian,
        # gated in repro.accel.vector_unavailable_reason)
        bits = np.unpackbits(masks.view(np.uint8), axis=1, bitorder="little")
        once_bits = (bits.sum(axis=0, dtype=np.int64) == 1).astype(np.uint8)
        once = np.packbits(once_bits, bitorder="little").view(np.uint64)
        self._once = once & np.bitwise_or.reduce(uniques, axis=0)

    @property
    def popcount(self) -> int:
        return int(np.bitwise_count(self._sig).sum())

    @property
    def is_empty(self) -> bool:
        return not self._sig.any()


class _VectorDirEntry:
    """Directory state for one line: owner + sharer bitmask."""

    __slots__ = ("owner", "sharer_bits")

    def __init__(self) -> None:
        self.owner: int | None = None
        self.sharer_bits = 0

    @property
    def is_idle(self) -> bool:
        return self.owner is None and not self.sharer_bits

    @property
    def sharers(self) -> set[int]:
        """Sharer set view (API parity with the pure ``DirEntry``)."""
        return _bits_to_set(self.sharer_bits)


def _bits_to_set(bits: int) -> set[int]:
    out = set()
    while bits:
        low = bits & -bits
        out.add(low.bit_length() - 1)
        bits ^= low
    return out


class VectorDirectory:
    """Sharer directory with int-bitmask sharer sets.

    Set algebra on an int bitmask is one ALU op regardless of sharer
    count, where the pure class pays per-element set operations — the
    difference that matters at the 64–256-core meshes the ROADMAP
    targets.  ``holders`` materializes an ordinary ``set`` (ascending
    core order) for its order-insensitive consumers in
    ``mem/hierarchy.py``.
    """

    def __init__(self, config: DirectoryConfig, n_cores: int) -> None:
        self.config = config
        self.n_cores = n_cores
        self._entries: dict[int, _VectorDirEntry] = {}
        self.lookups = 0

    @property
    def latency(self) -> int:
        return self.config.latency

    def entry(self, line: int) -> _VectorDirEntry:
        self.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = _VectorDirEntry()
            self._entries[line] = e
        return e

    def record_shared(self, line: int, core: int) -> None:
        self.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = self._entries[line] = _VectorDirEntry()
        owner = e.owner
        if owner is not None and owner != core:
            e.sharer_bits |= 1 << owner
            e.owner = None
        e.sharer_bits |= 1 << core
        if e.owner == core:
            e.owner = None

    def record_owner(self, line: int, core: int) -> None:
        self.lookups += 1
        e = self._entries.get(line)
        if e is None:
            e = self._entries[line] = _VectorDirEntry()
        e.owner = core
        e.sharer_bits = 0

    def drop(self, line: int, core: int) -> None:
        """Core silently dropped / evicted its copy."""
        e = self._entries.get(line)
        if e is None:
            return
        if e.owner == core:
            e.owner = None
        e.sharer_bits &= ~(1 << core)
        if e.owner is None and not e.sharer_bits:
            del self._entries[line]

    def holders(self, line: int) -> set[int]:
        """Every core that may hold a valid copy."""
        e = self._entries.get(line)
        if e is None:
            return set()
        out = _bits_to_set(e.sharer_bits)
        if e.owner is not None:
            out.add(e.owner)
        return out

    def owner_of(self, line: int) -> int | None:
        e = self._entries.get(line)
        return e.owner if e is not None else None

    @property
    def tracked_lines(self) -> int:
        return len(self._entries)


class VectorBackend(AccelBackend):
    """numpy word-array backend for the profiled hot substrates."""

    name = "vector"
    vectorized = True

    def make_event_queue(self) -> VectorEventQueue:
        return VectorEventQueue()

    def make_signature_context(
        self, config: SignatureConfig
    ) -> VectorSignatureContext:
        return VectorSignatureContext(config)

    def make_counting_summary(
        self, bits: int, hashes: int, seed: int = 0x5BB
    ) -> VectorCountingSummarySignature:
        return VectorCountingSummarySignature(bits, hashes, seed)

    def make_directory(self, config: DirectoryConfig, n_cores: int) -> VectorDirectory:
        return VectorDirectory(config, n_cores)
