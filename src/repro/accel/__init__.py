"""Accelerated hot-core backends (DESIGN §16).

``repro profile`` attributes most host time to four substrates: the
kernel event loop, the Bloom-signature conflict scan, the redirect
summary signature, and the directory sharer bookkeeping.  This package
supplies *drop-in* implementations of exactly those substrates behind a
tiny registry:

* ``pure`` — the existing big-int / heap implementations (default);
* ``vector`` — numpy word-array signatures with a batched conflict
  scan, a vectorized counting summary, bitmask sharer sets, and a
  calendar event queue with an allocation-free ``schedule_fast`` path.

The contract is absolute: per-seed :class:`~repro.simulator.SimResult`
objects are **bit-identical** across backends for every scheme.  The
determinism suite, the golden per-seed digests and the cross-backend
parity tests are the gate; because results never differ, the backend is
deliberately *not* part of :class:`~repro.runner.ExperimentSpec`
identity and cached results stay valid whichever backend produced them.

Selection precedence: an explicit ``HTMConfig.accel`` value beats the
``REPRO_ACCEL`` environment variable beats the ``pure`` default.
``auto`` degrades silently when the vector backend is unavailable; a
*forced* ``vector`` raises :class:`~repro.errors.AccelUnavailableError`
instead, because a forced name in a config or CI job is a claim about
the environment.
"""

from __future__ import annotations

import os
import sys
from typing import TYPE_CHECKING

from repro.errors import AccelUnavailableError

if TYPE_CHECKING:  # pragma: no cover
    from repro.accel.pure import AccelBackend

#: environment variable consulted when ``HTMConfig.accel`` is ``""``
ACCEL_ENV = "REPRO_ACCEL"

#: every backend name the registry knows how to build
BACKEND_NAMES = ("pure", "vector")

_INSTANCES: dict[str, "AccelBackend"] = {}


def vector_unavailable_reason() -> str:
    """Why the vector backend cannot run here; ``""`` when it can.

    The word-array layout assumes a little-endian host (uint64 views of
    packed bit streams), so big-endian machines fall back to pure even
    with numpy installed.
    """
    if sys.byteorder != "little":
        return f"word-array layout needs a little-endian host, not {sys.byteorder}"
    try:
        import numpy  # noqa: F401
    except Exception as exc:  # pragma: no cover — numpy ships in the image
        return f"numpy is not importable ({exc})"
    return ""


def available_backends() -> tuple[str, ...]:
    """Backend names that can actually run on this host."""
    names = ["pure"]
    if not vector_unavailable_reason():
        names.append("vector")
    return tuple(names)


def resolve_backend(name: str = "") -> "AccelBackend":
    """The backend for ``name`` (an ``HTMConfig.accel`` value).

    ``""`` defers to ``$REPRO_ACCEL`` (default ``pure``); ``auto``
    picks ``vector`` when available and degrades to ``pure``
    otherwise; a forced ``pure``/``vector`` is honoured or raises
    :class:`AccelUnavailableError`.  Backend objects are stateless
    singletons — per-run state (signature pools, queues) is created by
    their ``make_*`` factories.
    """
    requested = name or os.environ.get(ACCEL_ENV, "") or "pure"
    if requested == "auto":
        requested = "vector" if not vector_unavailable_reason() else "pure"
    if requested not in BACKEND_NAMES:
        raise ValueError(
            f"unknown accel backend {requested!r} "
            f"(expected one of {', '.join(BACKEND_NAMES)} or 'auto')"
        )
    if requested == "vector":
        reason = vector_unavailable_reason()
        if reason:
            raise AccelUnavailableError(
                "the vector accel backend was forced but cannot run here",
                backend="vector", reason=reason,
            )
    backend = _INSTANCES.get(requested)
    if backend is None:
        if requested == "vector":
            from repro.accel.vector import VectorBackend

            backend = VectorBackend()
        else:
            from repro.accel.pure import PureBackend

            backend = PureBackend()
        _INSTANCES[requested] = backend
    return backend


def default_backend_name() -> str:
    """The backend name an unconfigured run would use right now.

    Reads ``$REPRO_ACCEL`` like :func:`resolve_backend` does but never
    raises: a forced-but-unavailable selection is reported as
    ``"<name> (unavailable)"`` so provenance records the intent.
    """
    try:
        return resolve_backend("").name
    except AccelUnavailableError:
        return f"{os.environ.get(ACCEL_ENV, 'pure')} (unavailable)"


__all__ = [
    "ACCEL_ENV",
    "BACKEND_NAMES",
    "available_backends",
    "default_backend_name",
    "resolve_backend",
    "vector_unavailable_reason",
]
