"""The pure-Python backend: the existing substrates, re-exported.

This module defines the backend interface (:class:`AccelBackend`) and
implements it with the big-int / heap classes the simulator has always
used, so ``resolve_backend("pure")`` is an exact identity for existing
behaviour *and* host performance.  The vector backend mirrors every
factory here (see :mod:`repro.accel.vector`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.config import DirectoryConfig, SignatureConfig
from repro.mem.directory import Directory
from repro.sim.kernel import EventQueue
from repro.signatures.bloom import BloomSignature, CountingSummarySignature
from repro.signatures.hashes import H3HashFamily


class SignatureScan:
    """Probe one pre-computed line mask against a fixed signature set.

    The conflict scan's inner loop, packaged for the microbench: the
    pure flavour tests each big-int signature in order; the vector
    flavour transposes the set into bit planes and probes them all at
    once.  Both return the index of the *first* matching signature
    (or -1), so scan results — and therefore conflict attribution —
    are backend-independent.  The signature set is fixed at
    construction (the vector transpose is a snapshot); build a new
    scan after mutating a probed signature.
    """

    def __init__(self, signatures: Sequence[BloomSignature]) -> None:
        self._words = [sig._word for sig in signatures]

    def first_match(self, mask: int) -> int:
        for i, word in enumerate(self._words):
            if word & mask == mask:
                return i
        return -1


class SignatureContext:
    """Per-simulator signature machinery for one hash-family geometry.

    Owns nothing for the pure backend (signatures are standalone big
    ints); the vector context owns the shared word-matrix pool.  The
    simulator resolves ``mask_of`` and ``make_signature`` from here so
    its conflict-scan call sites never branch on the backend type.
    """

    vectorized = False

    def __init__(self, config: SignatureConfig) -> None:
        self.config = config
        self.family = H3HashFamily.shared(config.hashes, config.bits, config.seed)
        #: line -> probe mask, in whatever representation the backend's
        #: ``test_mask`` consumes (big int here, uint64 array for vector)
        self.mask_of: Callable[[int], int] = self.family.mask
        #: shared word-matrix pool; ``None`` marks the pure backend for
        #: the simulator's scan-path selection
        self.pool = None

    def make_signature(self) -> BloomSignature:
        cfg = self.config
        return BloomSignature(cfg.bits, cfg.hashes, cfg.seed)

    def make_scan(self, signatures: Iterable[BloomSignature]) -> SignatureScan:
        return SignatureScan(list(signatures))


class AccelBackend:
    """Factory surface every accel backend implements (and the pure one)."""

    name = "pure"
    vectorized = False

    def make_event_queue(self) -> EventQueue:
        return EventQueue()

    def make_signature_context(self, config: SignatureConfig) -> SignatureContext:
        return SignatureContext(config)

    def make_counting_summary(
        self, bits: int, hashes: int, seed: int = 0x5BB
    ) -> CountingSummarySignature:
        return CountingSummarySignature(bits, hashes, seed)

    def make_directory(self, config: DirectoryConfig, n_cores: int) -> Directory:
        return Directory(config, n_cores)


class PureBackend(AccelBackend):
    """The default backend: exactly the classes the simulator always used."""
