"""Simulation configuration (paper Table III).

Every latency is expressed in core clock cycles of the simulated 1.2 GHz
in-order cores.  The defaults reproduce the configuration of Table III of
the paper; benchmarks override individual fields for the sensitivity
studies (Figures 7 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

#: Cache-line size used throughout the simulated CMP (bytes).
LINE_BYTES = 64
#: log2(LINE_BYTES); an address's line index is ``addr >> LINE_SHIFT``.
LINE_SHIFT = 6


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of a set-associative cache."""

    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = LINE_BYTES

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.ways

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )


@dataclass(frozen=True)
class MemoryConfig:
    """Banked main memory (Table III: 4 GB, 4 banks, 150-cycle latency)."""

    size_bytes: int = 4 << 30
    banks: int = 4
    latency: int = 150


@dataclass(frozen=True)
class DirectoryConfig:
    """Bit-vector sharer directory attached to the L2 (6-cycle latency)."""

    latency: int = 6


@dataclass(frozen=True)
class MeshConfig:
    """2-D mesh interconnect (2-cycle wire + 1-cycle route per hop)."""

    wire_latency: int = 2
    route_latency: int = 1

    @property
    def hop_latency(self) -> int:
        return self.wire_latency + self.route_latency


@dataclass(frozen=True)
class SignatureConfig:
    """Bloom-filter read/write signatures (2 Kbit in the paper)."""

    bits: int = 2048
    hashes: int = 4
    seed: int = 0xB100


@dataclass(frozen=True)
class RedirectConfig:
    """The SUV redirect machinery (paper Section III/IV, Table III).

    ``l1_entries``/``l1_latency`` describe the per-core zero-latency
    fully-associative first-level table; ``l2_*`` the shared 8-way
    second-level table; entries that overflow both levels live in a
    software-managed region of main memory, reached at ``memory_latency``.
    """

    l1_entries: int = 512
    l1_latency: int = 0
    l2_entries: int = 16384
    l2_ways: int = 8
    l2_latency: int = 10
    memory_latency: int = 150
    #: software handler cost on top of the raw memory access when an entry
    #: must be fetched from / spilled to the in-memory overflow structure.
    software_overhead: int = 40
    #: pipeline-flush penalty when the speculative use of the original
    #: address turns out wrong (a valid swapped-out entry existed in
    #: memory; Section IV-A).
    misspeculation_penalty: int = 24
    pool_page_bytes: int = 8192
    pool_base: int = 1 << 40
    #: cap on preserved-pool pages; 0 = unbounded (the paper's
    #: assumption).  With a cap, allocation past it raises a typed
    #: ``PoolExhausted`` that SUV converts into an abort-with-backoff.
    pool_max_pages: int = 0
    #: committed versions retained per line by the multiversioned SUV
    #: extension (``vm=mvsuv``); plain SUV keeps exactly the current
    #: version and ignores this knob.  Must be >= 1.
    versions_k: int = 4
    #: redirect summary signature used to filter lookups (2 Kbit + a 2 Kbit
    #: "written once" bit-vector acting as a Bloom counter, Figure 5).
    summary_bits: int = 2048
    summary_hashes: int = 2
    #: optional features (ablations)
    redirect_back: bool = True
    use_summary_signature: bool = True


@dataclass(frozen=True)
class HTMConfig:
    """Transactional-memory policy parameters shared by all schemes."""

    #: deprecated spelling of :attr:`resolution`; kept so old configs
    #: keep working.  ``"abort"`` maps to ``"abort_requester"``.  Using
    #: it emits a :class:`DeprecationWarning`; prefer ``resolution=``.
    policy: str = ""
    #: conflict-resolution axis: ``stall`` (requester stalls; deadlock
    #: cycles are broken by aborting the youngest transaction),
    #: ``abort_requester`` (requester immediately aborts — partially,
    #: at the innermost nesting level), ``abort_responder`` (the
    #: paper's alternative: the holder aborts so the requester runs),
    #: ``timestamp`` (the older transaction wins the conflict), or one
    #: of the contention managers ``polite``/``greedy``/``karma`` (see
    #: :mod:`repro.htm.policy` for their semantics).  The legal value
    #: set is :data:`repro.htm.policy.RESOLUTION_AXIS`.
    resolution: str = ""
    #: commit-arbitration axis for lazy-mode commits: ``serial`` (one
    #: committer at a time, the classic global token) or ``widthN``
    #: (N read/write-disjoint committers may overlap, N >= 2).
    arbitration: str = "serial"
    #: cycles to take / restore a register checkpoint at begin / abort.
    checkpoint_cycles: int = 4
    #: cycles to enter the software abort handler (LogTM-SE-style trap).
    abort_trap_cycles: int = 80
    #: randomized exponential backoff after an abort.
    backoff_base: int = 32
    backoff_cap: int = 4096
    #: period with which a stalled requester re-issues its request when it
    #: has not been woken explicitly (guards against missed wakeups).
    stall_retry_period: int = 50
    #: threads start within a random window of this many cycles (models
    #: OS thread-launch skew; perfectly synchronized starts produce
    #: artificially symmetric conflict storms).  0 = all threads start
    #: at cycle 0 (deterministic timing, used by the unit tests); the
    #: benchmark harness uses a realistic window.
    start_stagger: int = 0
    #: host-acceleration backend for the hot substrates (event queue,
    #: signatures, conflict scan, directory): ``""`` defers to the
    #: ``REPRO_ACCEL`` environment variable (default ``pure``),
    #: ``pure``/``vector`` force a backend, ``auto`` picks ``vector``
    #: when available and falls back to ``pure``.  Simulated results
    #: are bit-identical across backends (DESIGN §16), so this knob is
    #: deliberately *not* part of :class:`~repro.runner.ExperimentSpec`
    #: identity and never invalidates cached results.
    accel: str = ""
    #: scheduler time slice for thread multiplexing (Section IV-C).
    #: 0 = no preemption unless there are more threads than cores, in
    #: which case a 20K-cycle default slice applies.
    time_slice: int = 0
    #: cycles charged when a core switches to a different thread.
    context_switch_cycles: int = 100
    #: a thread inside a transaction gets this many slices of grace
    #: before it is preempted: descheduling an active transaction leaves
    #: its signatures armed and stalls every conflicting neighbour, so
    #: the scheduler avoids it except for runaway transactions.
    tx_slice_grace: int = 10

    def __post_init__(self) -> None:
        resolution = self.resolution
        if self.policy:
            import warnings

            mapped = (
                "abort_requester" if self.policy == "abort" else self.policy
            )
            warnings.warn(
                f"HTMConfig(policy={self.policy!r}) is deprecated; use "
                f"HTMConfig(resolution={mapped!r})",
                DeprecationWarning,
                stacklevel=3,
            )
            if resolution and resolution != mapped:
                raise ValueError(
                    f"conflicting policy={self.policy!r} and "
                    f"resolution={resolution!r}"
                )
            resolution = mapped
        if not resolution:
            resolution = "stall"
        # deferred import: repro.htm.policy (via the repro.htm package)
        # imports this module at load time
        from repro.htm.policy import RESOLUTION_AXIS

        if resolution not in RESOLUTION_AXIS:
            raise ValueError(f"unknown conflict resolution {resolution!r}")
        if self.accel not in ("", "pure", "vector", "auto"):
            raise ValueError(
                f"unknown accel backend {self.accel!r} "
                "(expected '', 'pure', 'vector' or 'auto')"
            )
        arb = self.arbitration
        if arb != "serial" and not (
            arb.startswith("width") and arb[5:].isdigit() and int(arb[5:]) >= 2
        ):
            raise ValueError(f"unknown commit arbitration {arb!r}")
        # normalize in place (frozen dataclass): the deprecated field is
        # cleared so dataclasses.replace() does not re-warn
        object.__setattr__(self, "policy", "")
        object.__setattr__(self, "resolution", resolution)


@dataclass(frozen=True)
class DynTMConfig:
    """History-based execution-mode selector of DynTM (behavioural)."""

    counter_bits: int = 2
    #: counter value at or above which a transaction site runs lazily.
    lazy_threshold: int = 2
    #: per-written-line cost of the lazy commit's merge broadcast when the
    #: underlying version manager must move data (FasTM-based DynTM).
    commit_arbitration_cycles: int = 20


@dataclass(frozen=True)
class SimConfig:
    """Full simulated-CMP configuration (defaults = paper Table III)."""

    n_cores: int = 16
    clock_ghz: float = 1.2
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 << 10, ways=4, latency=1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=8 << 20, ways=8, latency=15)
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    mesh: MeshConfig = field(default_factory=MeshConfig)
    signature: SignatureConfig = field(default_factory=SignatureConfig)
    redirect: RedirectConfig = field(default_factory=RedirectConfig)
    htm: HTMConfig = field(default_factory=HTMConfig)
    dyntm: DynTMConfig = field(default_factory=DynTMConfig)

    def with_(self, **kwargs: Any) -> "SimConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)


def line_of(addr: int) -> int:
    """Cache-line index of a byte address."""
    return addr >> LINE_SHIFT


def default_config() -> SimConfig:
    """The Table III configuration."""
    return SimConfig()
