"""vacation — an in-memory travel-reservation database.

STAMP's vacation emulates an OLTP workload: client tasks run
transactions against tables of cars, rooms and flights, each row
holding (total, used, price).  Mirroring the original's action mix
(``-u`` percent user queries), a task is one of:

* **make reservation** — query ``q`` random rows per requested kind,
  reserve the cheapest available one, record it on the customer and
  bill them;
* **delete customer** — release every reservation the customer holds
  and zero their bill;
* **update tables** — grow/shrink the capacity of random rows
  (never below the currently-reserved count).

With many rows and moderate task counts the medium-length transactions
rarely collide — Table IV's "Low" contention class.

The verifier checks full relational consistency: every row's ``used``
equals the live reservations pointing at it, no row is overbooked,
every customer's bill equals the sum of their reservations' prices, and
the global counters agree.
"""

from __future__ import annotations

import numpy as np

from repro.htm.ops import Barrier, Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get

TABLES = ("car", "room", "flight")
ROW_TOTAL, ROW_USED, ROW_PRICE, ROW_SIZE = 0, 1, 2, 3

#: customer record layout: bill, reservation count, then slot words
CUST_BILL, CUST_COUNT, CUST_SLOTS = 0, 1, 2
MAX_RESERVATIONS = 12

ACT_RESERVE, ACT_DELETE, ACT_UPDATE = "reserve", "delete", "update"


def make_vacation(
    n_threads: int = 16,
    seed: int = 1,
    n_relations: int = 128,
    n_tasks: int = 96,
    queries_per_task: int = 4,
    n_customers: int = 64,
    user_fraction: float = 0.8,
    work_per_query: int = 25,
) -> Program:
    """Build the vacation program (paper: -n4 -q60 -u90 -r16384 -t4096)."""
    rng = np.random.default_rng(seed)
    space = AddressSpace()
    tables = {
        t: space.alloc(f"table_{t}", n_relations * ROW_SIZE) for t in TABLES
    }
    cust_size = CUST_SLOTS + MAX_RESERVATIONS
    customers = space.alloc("customers", n_customers * cust_size)
    reserved_total = space.alloc("reserved_total", 1)

    def row_addr(table_idx: int, row: int, field: int) -> int:
        return space.word(tables[TABLES[table_idx]], row * ROW_SIZE + field)

    def cust_addr(c: int, field: int) -> int:
        return space.word(customers, c * cust_size + field)

    capacities = {t: rng.integers(1, 5, size=n_relations) for t in TABLES}
    prices = {t: rng.integers(100, 999, size=n_relations) for t in TABLES}

    # task plan
    tasks: list[tuple] = []
    for _ in range(n_tasks):
        roll = rng.random()
        if roll < user_fraction:
            kinds = [int(k) for k in
                     rng.choice(len(TABLES), size=rng.integers(1, 4),
                                replace=False)]
            cands = {
                k: [int(r) for r in rng.choice(
                    n_relations, size=queries_per_task, replace=False)]
                for k in kinds
            }
            tasks.append((ACT_RESERVE, int(rng.integers(n_customers)),
                          kinds, cands))
        elif roll < user_fraction + (1 - user_fraction) / 2:
            tasks.append((ACT_DELETE, int(rng.integers(n_customers))))
        else:
            updates = [
                (int(rng.integers(len(TABLES))), int(rng.integers(n_relations)),
                 int(rng.integers(-1, 3)))
                for _ in range(queries_per_task)
            ]
            tasks.append((ACT_UPDATE, updates))
    my_tasks = [tasks[t::n_threads] for t in range(n_threads)]

    def encode_slot(table_idx: int, row: int) -> int:
        return table_idx * n_relations + row + 1

    def decode_slot(slot: int) -> tuple[int, int]:
        return (slot - 1) // n_relations, (slot - 1) % n_relations

    def reserve_tx(customer, kinds, cands):
        n_res = yield Read(cust_addr(customer, CUST_COUNT))
        bill_delta, booked = 0, []
        for kind in kinds:
            if n_res + len(booked) >= MAX_RESERVATIONS:
                break
            best_row, best_price = -1, None
            for r in cands[kind]:
                total = yield Read(row_addr(kind, r, ROW_TOTAL))
                used = yield Read(row_addr(kind, r, ROW_USED))
                price = yield Read(row_addr(kind, r, ROW_PRICE))
                yield Work(work_per_query)
                if used < total and (best_price is None or price < best_price):
                    best_row, best_price = r, price
            if best_row < 0:
                continue
            used = yield Read(row_addr(kind, best_row, ROW_USED))
            total = yield Read(row_addr(kind, best_row, ROW_TOTAL))
            if used >= total:
                continue
            yield Write(row_addr(kind, best_row, ROW_USED), used + 1)
            booked.append((kind, best_row))
            bill_delta += best_price
        if booked:
            for i, (kind, row) in enumerate(booked):
                yield Write(cust_addr(customer, CUST_SLOTS + n_res + i),
                            encode_slot(kind, row))
            yield Write(cust_addr(customer, CUST_COUNT), n_res + len(booked))
            bill = yield Read(cust_addr(customer, CUST_BILL))
            yield Write(cust_addr(customer, CUST_BILL), bill + bill_delta)
            count = yield Read(reserved_total)
            yield Write(reserved_total, count + len(booked))

    def delete_tx(customer):
        n_res = yield Read(cust_addr(customer, CUST_COUNT))
        if not n_res:
            return
        for i in range(n_res):
            slot = yield Read(cust_addr(customer, CUST_SLOTS + i))
            kind, row = decode_slot(slot)
            used = yield Read(row_addr(kind, row, ROW_USED))
            yield Write(row_addr(kind, row, ROW_USED), used - 1)
            yield Write(cust_addr(customer, CUST_SLOTS + i), 0)
            yield Work(work_per_query)
        yield Write(cust_addr(customer, CUST_COUNT), 0)
        yield Write(cust_addr(customer, CUST_BILL), 0)
        count = yield Read(reserved_total)
        yield Write(reserved_total, count - n_res)

    def update_tx(updates):
        for kind, row, delta in updates:
            total = yield Read(row_addr(kind, row, ROW_TOTAL))
            used = yield Read(row_addr(kind, row, ROW_USED))
            yield Work(work_per_query)
            new_total = total + delta
            if new_total >= used and new_total >= 0:
                yield Write(row_addr(kind, row, ROW_TOTAL), new_total)

    def make_thread(tid: int):
        def thread():
            if tid == 0:
                for ti, t in enumerate(TABLES):
                    for r in range(n_relations):
                        yield Write(row_addr(ti, r, ROW_TOTAL),
                                    int(capacities[t][r]))
                        yield Write(row_addr(ti, r, ROW_PRICE),
                                    int(prices[t][r]))
            yield Barrier(0)
            for task in my_tasks[tid]:
                if task[0] == ACT_RESERVE:
                    _, customer, kinds, cands = task
                    yield Tx(
                        lambda c=customer, k=kinds, q=cands: reserve_tx(c, k, q),
                        site=1,
                    )
                elif task[0] == ACT_DELETE:
                    yield Tx(lambda c=task[1]: delete_tx(c), site=2)
                else:
                    yield Tx(lambda u=task[1]: update_tx(u), site=3)
                yield Work(work_per_query)
        return thread

    def verifier(memory: dict[int, int]) -> None:
        # rebuild per-row live-reservation counts from customer records
        live: dict[tuple[int, int], int] = {}
        total_live = 0
        for c in range(n_customers):
            n_res = mem_get(memory, cust_addr(c, CUST_COUNT))
            assert 0 <= n_res <= MAX_RESERVATIONS
            bill = 0
            for i in range(n_res):
                slot = mem_get(memory, cust_addr(c, CUST_SLOTS + i))
                assert slot > 0, f"customer {c}: empty live slot {i}"
                kind, row = decode_slot(slot)
                live[(kind, row)] = live.get((kind, row), 0) + 1
                bill += int(prices[TABLES[kind]][row])
                total_live += 1
            assert mem_get(memory, cust_addr(c, CUST_BILL)) == bill, (
                f"customer {c}: bill mismatch"
            )
        for ti, t in enumerate(TABLES):
            for r in range(n_relations):
                total = mem_get(memory, row_addr(ti, r, ROW_TOTAL))
                used = mem_get(memory, row_addr(ti, r, ROW_USED))
                assert used <= total, f"{t}[{r}] overbooked {used}/{total}"
                assert used == live.get((ti, r), 0), (
                    f"{t}[{r}]: used={used} but {live.get((ti, r), 0)} "
                    "live reservations"
                )
        assert total_live == mem_get(memory, reserved_total)

    return Program(
        name="vacation",
        threads=[make_thread(t) for t in range(n_threads)],
        params=dict(
            n_relations=n_relations, n_tasks=n_tasks,
            queries_per_task=queries_per_task, user_fraction=user_fraction,
        ),
        contention="low",
        verifier=verifier,
    )
