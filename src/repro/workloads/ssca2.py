"""ssca2 — kernel 1 of the SSCA#2 graph benchmark: graph construction.

Threads insert a partitioned edge list into shared adjacency structures:
a tiny transaction per edge bumps the endpoint's degree counter and
writes the adjacency slot.  With thousands of vertices the probability
of two threads hitting the same vertex at once is small: Table IV's
shortest, lowest-contention entry (length 21).

The verifier rebuilds the degree vector from the input and compares,
and checks every adjacency slot is a real edge target.
"""

from __future__ import annotations

import numpy as np

from repro.htm.ops import Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get


def make_ssca2(
    n_threads: int = 16,
    seed: int = 1,
    scale: int = 7,
    edge_factor: int = 3,
    max_degree: int = 48,
    work_per_edge: int = 4,
) -> Program:
    """Build the ssca2 program (paper: -s13 ..., scaled to 2**scale nodes)."""
    rng = np.random.default_rng(seed)
    n_vertices = 1 << scale
    n_edges = n_vertices * edge_factor
    # mildly-skewed endpoints: SSCA2's generator produces cliques whose
    # per-vertex insert rate is near-uniform at kernel-1 time, which is
    # why the paper classes ssca2 as low-contention
    u = rng.random(n_edges)
    v = rng.random(n_edges)
    src = (u ** 1.2 * n_vertices).astype(np.int64)
    dst = (v * n_vertices).astype(np.int64)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    # clamp degrees to the adjacency capacity
    deg = np.zeros(n_vertices, dtype=np.int64)
    edges: list[tuple[int, int]] = []
    for s, d in zip(src.tolist(), dst.tolist()):
        if deg[s] < max_degree:
            deg[s] += 1
            edges.append((s, d))
    n_edges = len(edges)

    space = AddressSpace()
    degrees = space.alloc("degrees", n_vertices)
    adjacency = space.alloc("adjacency", n_vertices * max_degree)

    def adj_addr(vertex: int, slot: int) -> int:
        return space.word(adjacency, vertex * max_degree + slot)

    my_edges = [edges[t::n_threads] for t in range(n_threads)]

    def make_thread(tid: int):
        def thread():
            for s, d in my_edges[tid]:
                def insert(s=s, d=d):
                    cur = yield Read(space.word(degrees, s))
                    yield Write(adj_addr(s, cur), d + 1)
                    yield Write(space.word(degrees, s), cur + 1)
                yield Tx(insert, site=1)
                yield Work(work_per_edge)
        return thread

    expected_deg = deg

    def verifier(memory: dict[int, int]) -> None:
        edge_set = {}
        for s, d in edges:
            edge_set.setdefault(s, []).append(d)
        total = 0
        for vtx in range(n_vertices):
            got = mem_get(memory, space.word(degrees, vtx))
            assert got == int(expected_deg[vtx]), (
                f"vertex {vtx}: degree {got} != {int(expected_deg[vtx])}"
            )
            total += got
            slots = sorted(
                mem_get(memory, adj_addr(vtx, i)) - 1 for i in range(got)
            )
            assert slots == sorted(edge_set.get(vtx, ())), (
                f"vertex {vtx}: adjacency mismatch"
            )
        assert total == n_edges

    return Program(
        name="ssca2",
        threads=[make_thread(t) for t in range(n_threads)],
        params=dict(scale=scale, n_vertices=n_vertices, n_edges=n_edges),
        contention="low",
        verifier=verifier,
    )
