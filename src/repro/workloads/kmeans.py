"""kmeans — iterative clustering (Table IV: short tx, low contention).

Threads partition the points; each iteration they compute the nearest
centre for their points (non-transactional reads + compute) and apply a
short transaction per point to fold it into that centre's accumulator
(sums and count).  A barrier separates assignment from re-centering,
which thread 0 performs.  With enough centres, transactions rarely
collide — the paper's "Low" contention class.

The verifier recomputes the final membership counts sequentially from
the same inputs and demands an exact match.
"""

from __future__ import annotations

import numpy as np

from repro.htm.ops import Barrier, Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get


def make_kmeans(
    n_threads: int = 16,
    seed: int = 1,
    n_points: int = 256,
    n_dims: int = 4,
    n_clusters: int = 16,
    n_iterations: int = 3,
    work_distance: int = 8,
) -> Program:
    """Build the kmeans program (paper: -m40 -n40, random-n2048-d16-c16)."""
    rng = np.random.default_rng(seed)
    points = rng.integers(0, 1000, size=(n_points, n_dims)).astype(np.int64)

    space = AddressSpace()
    centers = space.alloc("centers", n_clusters * n_dims)
    # per-cluster accumulators are line-aligned: STAMP pads these to
    # avoid false sharing between adjacent clusters
    dims_per_cluster = ((n_dims + 7) // 8) * 8
    sums = space.alloc("sums", n_clusters * dims_per_cluster)
    counts = space.alloc("counts", n_clusters, pad_lines=True)

    def center_addr(c: int, d: int) -> int:
        return space.word(centers, c * n_dims + d)

    def sum_addr(c: int, d: int) -> int:
        return space.word(sums, c * dims_per_cluster + d)

    # deterministic reference run (golden model)
    def reference() -> np.ndarray:
        ctr = points[:n_clusters].astype(np.float64).copy()
        member = np.zeros(n_points, dtype=np.int64)
        for _ in range(n_iterations):
            d2 = ((points[:, None, :] - ctr[None, :, :]) ** 2).sum(axis=2)
            member = d2.argmin(axis=1)
            for c in range(n_clusters):
                sel = points[member == c]
                if len(sel):
                    ctr[c] = np.floor(sel.mean(axis=0))
        final_counts = np.bincount(member, minlength=n_clusters)
        return final_counts

    expected_counts = reference()
    my_points = [list(range(t, n_points, n_threads)) for t in range(n_threads)]

    def make_thread(tid: int):
        def thread():
            if tid == 0:
                # initialize centres to the first k points
                for c in range(n_clusters):
                    for d in range(n_dims):
                        yield Write(center_addr(c, d), int(points[c, d]))
            yield Barrier(0)

            for it in range(n_iterations):
                for p in my_points[tid]:
                    # nearest-centre search: transactional reads are not
                    # needed (centres are stable within an iteration)
                    best_c, best_d2 = -1, None
                    for c in range(n_clusters):
                        d2 = 0
                        for d in range(n_dims):
                            cv = yield Read(center_addr(c, d))
                            diff = int(points[p, d]) - cv
                            d2 += diff * diff
                        yield Work(work_distance)
                        if best_d2 is None or d2 < best_d2:
                            best_c, best_d2 = c, d2

                    def fold(c=best_c, p=p):
                        cnt = yield Read(space.word(counts, c, padded=True))
                        yield Write(space.word(counts, c, padded=True), cnt + 1)
                        for d in range(n_dims):
                            s = yield Read(sum_addr(c, d))
                            yield Write(sum_addr(c, d), s + int(points[p, d]))
                    yield Tx(fold, site=10 + it)

                yield Barrier(1000 + 2 * it)
                if tid == 0:
                    # re-center from the accumulators, then reset them;
                    # single-threaded phase, still transactional per centre
                    for c in range(n_clusters):
                        def recenter(c=c, last=(it == n_iterations - 1)):
                            cnt = yield Read(space.word(counts, c, padded=True))
                            for d in range(n_dims):
                                s = yield Read(sum_addr(c, d))
                                if cnt and not last:
                                    yield Write(center_addr(c, d), s // cnt)
                                if not last:
                                    yield Write(sum_addr(c, d), 0)
                            if not last:
                                yield Write(space.word(counts, c, padded=True), 0)
                        yield Tx(recenter, site=50)
                yield Barrier(1001 + 2 * it)
        return thread

    def verifier(memory: dict[int, int]) -> None:
        got = [mem_get(memory, space.word(counts, c, padded=True)) for c in range(n_clusters)]
        assert got == expected_counts.tolist(), (
            f"membership counts {got} != reference {expected_counts.tolist()}"
        )

    return Program(
        name="kmeans",
        threads=[make_thread(t) for t in range(n_threads)],
        params=dict(
            n_points=n_points, n_dims=n_dims, n_clusters=n_clusters,
            n_iterations=n_iterations,
        ),
        contention="low",
        verifier=verifier,
    )
