"""labyrinth — Lee-style path routing in a 3-D grid.

STAMP's labyrinth routes point-to-point connections through a shared
3-D grid.  Each route is one *huge* transaction (Table IV: the longest
in the suite): the router transactionally reads the grid cells it
expands over (a breadth-first wavefront), computes a shortest path on
that snapshot, and transactionally claims the path's cells.  Two
concurrent routes touching overlapping regions conflict, and the loser
re-expands from scratch — the coarse-grained, high-contention behaviour
the paper leans on.

The verifier re-walks every claimed path: cells claimed exactly once,
paths connected, endpoints correct.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.htm.ops import Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get


def make_labyrinth(
    n_threads: int = 16,
    seed: int = 1,
    dim_x: int = 16,
    dim_y: int = 16,
    dim_z: int = 3,
    n_routes: int = 24,
    work_expand: int = 4,
) -> Program:
    """Build the labyrinth program (paper: random-x32-y32-z3-n64, scaled)."""
    rng = np.random.default_rng(seed)
    n_cells = dim_x * dim_y * dim_z

    space = AddressSpace()
    grid = space.alloc("grid", n_cells)          # 0 = free, route_id+1 = claimed
    work_queue_head = space.alloc("wq_head", 1)
    routed_flags = space.alloc("routed", n_routes)
    # per-thread local grid copies: STAMP's router copies the grid into a
    # thread-local scratch *inside the transaction*, which is what gives
    # labyrinth its enormous (L1-overflowing) transactional write sets
    scratch = [
        space.alloc(f"local_grid_{t}", n_cells) for t in range(n_threads)
    ]

    def cell_index(x: int, y: int, z: int) -> int:
        return (z * dim_y + y) * dim_x + x

    def cell_addr(x: int, y: int, z: int) -> int:
        return space.word(grid, cell_index(x, y, z))

    def neighbors(x: int, y: int, z: int):
        for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
                           (0, 0, 1), (0, 0, -1)):
            nx, ny, nz = x + dx, y + dy, z + dz
            if 0 <= nx < dim_x and 0 <= ny < dim_y and 0 <= nz < dim_z:
                yield nx, ny, nz

    # distinct endpoints for every route
    endpoints: list[tuple[tuple[int, int, int], tuple[int, int, int]]] = []
    taken: set[tuple[int, int, int]] = set()
    while len(endpoints) < n_routes:
        cand = tuple(
            (int(rng.integers(dim_x)), int(rng.integers(dim_y)),
             int(rng.integers(dim_z)))
            for _ in range(2)
        )
        if cand[0] != cand[1] and not (set(cand) & taken):
            endpoints.append(cand)
            taken.update(cand)

    def make_thread(tid: int):
        def thread():
            while True:
                def grab():
                    head = yield Read(work_queue_head)
                    if head >= n_routes:
                        return -1
                    yield Write(work_queue_head, head + 1)
                    return head
                rid = yield Tx(grab, site=1)
                if rid is None or rid < 0:
                    break
                src, dst = endpoints[rid]

                def route(rid=rid, src=src, dst=dst, my_scratch=scratch[tid]):
                    # ---- expansion over a transactional snapshot; the
                    # wavefront distances are written to the thread-local
                    # grid copy as in STAMP (transactional stores) ----
                    dist: dict[tuple[int, int, int], int] = {src: 0}
                    parent: dict[tuple, tuple] = {}
                    frontier = deque([src])
                    found = False
                    yield Write(space.word(my_scratch, cell_index(*src)), 1)
                    while frontier and not found:
                        cur = frontier.popleft()
                        for nxt in neighbors(*cur):
                            if nxt in dist:
                                continue
                            if nxt in taken and nxt != dst:
                                # endpoints of other routes are reserved
                                continue
                            occupied = yield Read(cell_addr(*nxt))
                            yield Work(work_expand)
                            if occupied and nxt != dst:
                                continue
                            dist[nxt] = dist[cur] + 1
                            parent[nxt] = cur
                            yield Write(
                                space.word(my_scratch, cell_index(*nxt)),
                                dist[nxt] + 1,
                            )
                            if nxt == dst:
                                found = True
                                break
                            frontier.append(nxt)
                    if not found:
                        return 0
                    # ---- claim the path cells ----
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    for cell in path:
                        yield Write(cell_addr(*cell), rid + 1)
                    yield Write(space.word(routed_flags, rid), len(path))
                    return 1
                yield Tx(route, site=2)
                yield Work(20)
        return thread

    def verifier(memory: dict[int, int]) -> None:
        claimed: dict[int, list[tuple[int, int, int]]] = {}
        for x in range(dim_x):
            for y in range(dim_y):
                for z in range(dim_z):
                    v = mem_get(memory, cell_addr(x, y, z))
                    if v:
                        claimed.setdefault(v - 1, []).append((x, y, z))
        for rid, (src, dst) in enumerate(endpoints):
            plen = mem_get(memory, space.word(routed_flags, rid))
            cells = set(claimed.get(rid, ()))
            if plen == 0:
                assert not cells, f"unrouted route {rid} claimed cells"
                continue
            assert len(cells) == plen, (
                f"route {rid}: {len(cells)} cells vs recorded length {plen}"
            )
            assert src in cells and dst in cells
            # connectivity: walk from src within the claimed set
            seen = {src}
            frontier = deque([src])
            while frontier:
                cur = frontier.popleft()
                for nxt in neighbors(*cur):
                    if nxt in cells and nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            assert dst in seen, f"route {rid} is not connected"

    return Program(
        name="labyrinth",
        threads=[make_thread(t) for t in range(n_threads)],
        params=dict(dim=(dim_x, dim_y, dim_z), n_routes=n_routes),
        contention="high",
        verifier=verifier,
    )
