"""bayes — structure learning of a Bayesian network (hill climbing).

STAMP's bayes learns a Bayes-net structure from data: worker threads
pop "find best insert/remove for variable v" tasks from a shared queue,
score candidate parent changes against sufficient statistics (a long
compute + read phase), and — in the same long transaction — apply the
best edge change to the shared adjacency and enqueue follow-up work.
Transactions are the longest in the suite after labyrinth, and the
adjacency rows and the task queue are heavily contended: Table IV's
"high" class with a 43K-instruction mean length.

Our port keeps the exact control structure: a shared task queue, a
shared adjacency matrix with per-variable parent counts, scoring from a
deterministic per-pair gain table (standing in for the log-likelihood
computation, which is pure compute), and an acyclicity guard performed
transactionally on the adjacency — so the learned graph is a DAG, which
the verifier checks along with edge-count bookkeeping and that every
applied edge had positive gain.
"""

from __future__ import annotations

import numpy as np

from repro.htm.ops import Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get


def _sample_records(
    rng: np.random.Generator, n_vars: int, n_records: int
) -> np.ndarray:
    """Ancestral sampling from a random ground-truth Bayes net.

    Variables are topologically ordered 0..n-1; each has up to two
    parents among lower-numbered variables and follows a noisy-OR-ish
    conditional, so pairwise dependence actually exists in the data.
    """
    parents = [
        rng.choice(v, size=min(v, int(rng.integers(0, 3))), replace=False)
        if v else np.array([], dtype=int)
        for v in range(n_vars)
    ]
    data = np.zeros((n_records, n_vars), dtype=np.int8)
    for v in range(n_vars):
        base = rng.random(n_records) < 0.3
        influence = np.zeros(n_records, dtype=bool)
        for p in parents[v]:
            influence |= (data[:, p] == 1) & (rng.random(n_records) < 0.7)
        data[:, v] = (base | influence).astype(np.int8)
    return data


def _mutual_information_gains(data: np.ndarray) -> np.ndarray:
    """Integer pairwise-MI score table (the hill climber's edge gains)."""
    n_records, n_vars = data.shape
    gains = np.zeros((n_vars, n_vars), dtype=np.int64)
    p1 = data.mean(axis=0)
    for u in range(n_vars):
        for v in range(n_vars):
            if u == v:
                continue
            p_uv = float(np.mean((data[:, u] == 1) & (data[:, v] == 1)))
            mi = 0.0
            for a, b, pj in (
                (1, 1, p_uv),
                (1, 0, p1[u] - p_uv),
                (0, 1, p1[v] - p_uv),
                (0, 0, 1 - p1[u] - p1[v] + p_uv),
            ):
                pa = p1[u] if a else 1 - p1[u]
                pb = p1[v] if b else 1 - p1[v]
                if pj > 1e-9 and pa > 1e-9 and pb > 1e-9:
                    mi += pj * np.log(pj / (pa * pb))
            gains[u, v] = int(round(mi * 1000))
    # weak dependences are not worth an edge (the score penalty term)
    gains[gains < 8] = 0
    return gains


def make_bayes(
    n_threads: int = 16,
    seed: int = 1,
    n_vars: int = 24,
    max_parents: int = 4,
    n_records: int = 512,
    work_per_score: int = 120,
    scratch_factor: int = 1,
) -> Program:
    """Build the bayes program (paper: -v32 -r1024 -n2 ..., scaled)."""
    rng = np.random.default_rng(seed)
    # the gain table is derived from actual sampled records of a random
    # ground-truth network: gains[u, v] > 0 means the data supports an
    # edge u→v (pairwise mutual information, as the adtree-backed score
    # computation of the original would report)
    records = _sample_records(rng, n_vars, n_records)
    gains = _mutual_information_gains(records)

    space = AddressSpace()
    adj = space.alloc("adjacency", n_vars * n_vars)       # adj[i*n+j] = i→j
    parent_count = space.alloc("parent_count", n_vars)
    edge_count = space.alloc("edge_count", 1)
    total_gain = space.alloc("total_gain", 1)
    # capacity: one initial task per variable plus at most max_parents - 1
    # re-enqueues, with headroom
    queue = space.alloc("task_queue", 6 * n_vars)
    q_head = space.alloc("q_head", 1)
    q_tail = space.alloc("q_tail", 1)
    # per-thread scoring scratch: STAMP's learner materializes candidate
    # scores/sufficient-statistic deltas inside the transaction, giving
    # bayes its very large (43K-instruction) write sets
    scratch = [
        space.alloc(f"score_scratch_{t}", n_vars * n_vars * scratch_factor)
        for t in range(n_threads)
    ]

    def adj_addr(i: int, j: int) -> int:
        return space.word(adj, i * n_vars + j)

    def make_thread(tid: int):
        def thread():
            from repro.htm.ops import Barrier

            if tid == 0:
                for v in range(n_vars):
                    yield Write(space.word(queue, v), v + 1)
                yield Write(q_tail, n_vars)
            yield Barrier(0)

            while True:
                def learn():
                    # ---- pop a "improve variable v" task ----
                    head = yield Read(q_head)
                    tail = yield Read(q_tail)
                    if head >= tail:
                        return -1
                    yield Write(q_head, head + 1)
                    v = (yield Read(space.word(queue, head))) - 1

                    # ---- scoring: examine candidate parents of v ----
                    n_parents = yield Read(space.word(parent_count, v))
                    if n_parents >= max_parents:
                        return 0
                    best_u, best_gain = -1, 0
                    my_scratch = scratch[tid]
                    for u in range(n_vars):
                        if u == v:
                            continue
                        present = yield Read(adj_addr(u, v))
                        yield Work(work_per_score)
                        # materialize the candidate's score row in the
                        # thread scratch (transactional stores): the
                        # original computes a score for *every* candidate
                        # parent, which is where bayes' 43K-instruction
                        # write sets come from
                        row = n_vars * scratch_factor
                        for w in range(0, row, 2):
                            yield Write(
                                space.word(my_scratch, u * row + w),
                                int(gains[u, v]) + w,
                            )
                        if present or gains[u, v] <= 0:
                            continue
                        # acyclicity guard: adding u→v must not close a
                        # cycle; walk v's descendants in the adjacency
                        reachable = {v}
                        frontier = [v]
                        hits_u = False
                        while frontier:
                            x = frontier.pop()
                            for y in range(n_vars):
                                if y in reachable:
                                    continue
                                edge = yield Read(adj_addr(x, y))
                                if edge:
                                    if y == u:
                                        hits_u = True
                                        frontier = []
                                        break
                                    reachable.add(y)
                                    frontier.append(y)
                        if hits_u:
                            continue
                        if gains[u, v] > best_gain:
                            best_u, best_gain = u, int(gains[u, v])

                    if best_u < 0:
                        return 0
                    # ---- apply the best edge and enqueue follow-up ----
                    yield Write(adj_addr(best_u, v), 1)
                    yield Write(space.word(parent_count, v), n_parents + 1)
                    edges = yield Read(edge_count)
                    yield Write(edge_count, edges + 1)
                    gain = yield Read(total_gain)
                    yield Write(total_gain, gain + best_gain)
                    if n_parents + 1 < max_parents:
                        tail = yield Read(q_tail)
                        yield Write(space.word(queue, tail), v + 1)
                        yield Write(q_tail, tail + 1)
                    return 1

                outcome = yield Tx(learn, site=1)
                if outcome is None or outcome < 0:
                    break
                yield Work(50)
        return thread

    def verifier(memory: dict[int, int]) -> None:
        edges = []
        for i in range(n_vars):
            for j in range(n_vars):
                if mem_get(memory, adj_addr(i, j)):
                    edges.append((i, j))
                    assert gains[i, j] > 0, f"edge {i}->{j} had no gain"
        assert len(edges) == mem_get(memory, edge_count)
        # parent counts match the adjacency
        for v in range(n_vars):
            n_par = sum(1 for (i, j) in edges if j == v)
            assert n_par == mem_get(memory, space.word(parent_count, v))
            assert n_par <= max_parents
        # the learned structure is a DAG (topological elimination)
        children: dict[int, set[int]] = {}
        indeg = dict.fromkeys(range(n_vars), 0)
        for i, j in edges:
            children.setdefault(i, set()).add(j)
            indeg[j] += 1
        ready = [v for v in range(n_vars) if indeg[v] == 0]
        seen = 0
        while ready:
            x = ready.pop()
            seen += 1
            for y in children.get(x, ()):
                indeg[y] -= 1
                if indeg[y] == 0:
                    ready.append(y)
        assert seen == n_vars, "learned structure contains a cycle"
        # total gain bookkeeping
        assert mem_get(memory, total_gain) == sum(
            int(gains[i, j]) for (i, j) in edges
        )

    return Program(
        name="bayes",
        threads=[make_thread(t) for t in range(n_threads)],
        params=dict(n_vars=n_vars, max_parents=max_parents),
        contention="high",
        verifier=verifier,
    )
