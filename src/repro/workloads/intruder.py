"""intruder — signature-based network intrusion detection.

STAMP's intruder pushes packet fragments through three phases:

* **capture** — pop a fragment from a shared queue (transactional);
* **reassembly** — store the fragment's payload chunk into the flow's
  buffer and count it; the last fragment completes the flow
  (transactional);
* **detection** — scan the reassembled payload for known attack
  signatures (non-transactional compute over the completed buffer),
  then record any verdict (transactional).

The shared queue head and the flow-completion counters make the many
tiny transactions conflict frequently: Table IV's shortest,
high-contention workload.  Payloads are real data: the verifier
re-runs the signature matcher sequentially and demands the same set of
detected attacks, plus exact reassembly of every flow.
"""

from __future__ import annotations

import numpy as np

from repro.htm.ops import Barrier, Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get

#: payload words per fragment
CHUNK = 2
#: the attack signatures scanned for (word patterns)
ATTACK_SIGNATURES = ((7, 13), (42, 42))


def _contains_signature(payload: list[int]) -> bool:
    for sig in ATTACK_SIGNATURES:
        for i in range(len(payload) - len(sig) + 1):
            if tuple(payload[i:i + len(sig)]) == sig:
                return True
    return False


def make_intruder(
    n_threads: int = 16,
    seed: int = 1,
    n_flows: int = 64,
    max_fragments: int = 4,
    attack_fraction: float = 0.25,
    work_scan: int = 60,
) -> Program:
    """Build the intruder program (paper input: -a10 -l4 -n2038, scaled)."""
    rng = np.random.default_rng(seed)
    frags_per_flow = rng.integers(1, max_fragments + 1, size=n_flows)

    # real payloads; a fraction get an attack signature implanted
    payloads: list[list[int]] = []
    for f in range(n_flows):
        words = [int(w) for w in rng.integers(0, 100, frags_per_flow[f] * CHUNK)]
        if rng.random() < attack_fraction:
            sig = ATTACK_SIGNATURES[int(rng.integers(len(ATTACK_SIGNATURES)))]
            pos = int(rng.integers(0, max(1, len(words) - len(sig) + 1)))
            words[pos:pos + len(sig)] = list(sig)
        payloads.append(words)
    expected_attacks = {
        f for f, p in enumerate(payloads) if _contains_signature(p)
    }

    packets: list[tuple[int, int]] = [
        (f, i) for f in range(n_flows) for i in range(frags_per_flow[f])
    ]
    order = rng.permutation(len(packets))
    packets = [packets[i] for i in order]
    n_packets = len(packets)

    space = AddressSpace()
    queue = space.alloc("packet_queue", n_packets)
    queue_head = space.alloc("queue_head", 1)
    flow_received = space.alloc("flow_received", n_flows)
    flow_done = space.alloc("flow_done", n_flows)
    flow_buffers = space.alloc("flow_buffers",
                               n_flows * max_fragments * CHUNK)
    attacks_found = space.alloc("attacks_found", 1)
    attack_flags = space.alloc("attack_flags", n_flows)
    processed = space.alloc("processed", 1)

    def buf_addr(flow: int, word: int) -> int:
        return space.word(flow_buffers, flow * max_fragments * CHUNK + word)

    def make_thread(tid: int):
        def thread():
            if tid == 0:
                # thread 0 injects the packet trace into the shared queue
                # (encoded as flow * max_fragments + fragment + 1)
                for i, (flow, frag) in enumerate(packets):
                    yield Write(
                        space.word(queue, i), flow * max_fragments + frag + 1
                    )
            yield Barrier(0)

            while True:
                # -- capture: transactional pop of the next packet
                def pop():
                    head = yield Read(queue_head)
                    if head >= n_packets:
                        return -1
                    pkt = yield Read(space.word(queue, head))
                    yield Write(queue_head, head + 1)
                    return pkt
                pkt = yield Tx(pop, site=1)
                if pkt is None or pkt < 0:
                    break
                flow = (pkt - 1) // max_fragments
                frag = (pkt - 1) % max_fragments

                # -- reassembly: store the chunk, count the fragment
                def assemble(flow=flow, frag=frag):
                    chunk = payloads[flow][frag * CHUNK:(frag + 1) * CHUNK]
                    for j, w in enumerate(chunk):
                        yield Write(buf_addr(flow, frag * CHUNK + j), w + 1)
                    got = yield Read(space.word(flow_received, flow))
                    yield Write(space.word(flow_received, flow), got + 1)
                    done = yield Read(space.word(flow_done, flow))
                    if got + 1 == int(frags_per_flow[flow]) and not done:
                        yield Write(space.word(flow_done, flow), 1)
                        return True
                    return False
                completed = yield Tx(assemble, site=2)

                # -- detection: scan the reassembled payload
                if completed:
                    n_words = int(frags_per_flow[flow]) * CHUNK
                    payload = []
                    for j in range(n_words):
                        w = yield Read(buf_addr(flow, j))
                        payload.append(w - 1)
                    yield Work(work_scan * n_words)
                    if _contains_signature(payload):
                        def report(flow=flow):
                            found = yield Read(attacks_found)
                            yield Write(attacks_found, found + 1)
                            yield Write(space.word(attack_flags, flow), 1)
                        yield Tx(report, site=3)

                def count():
                    done = yield Read(processed)
                    yield Write(processed, done + 1)
                yield Tx(count, site=4)
        return thread

    def verifier(memory: dict[int, int]) -> None:
        assert mem_get(memory, processed) == n_packets
        assert mem_get(memory, queue_head) >= n_packets
        for f in range(n_flows):
            got = mem_get(memory, space.word(flow_received, f))
            assert got == int(frags_per_flow[f]), f"flow {f} lost fragments"
            assert mem_get(memory, space.word(flow_done, f)) == 1
            # exact reassembly
            for j in range(int(frags_per_flow[f]) * CHUNK):
                assert mem_get(memory, buf_addr(f, j)) == payloads[f][j] + 1, (
                    f"flow {f}: payload word {j} corrupted"
                )
        flagged = {
            f for f in range(n_flows)
            if mem_get(memory, space.word(attack_flags, f))
        }
        assert flagged == expected_attacks, (
            f"attacks {sorted(flagged)} != expected {sorted(expected_attacks)}"
        )
        assert mem_get(memory, attacks_found) == len(expected_attacks)

    return Program(
        name="intruder",
        threads=[make_thread(t) for t in range(n_threads)],
        params=dict(
            n_flows=n_flows,
            max_fragments=max_fragments,
            n_packets=n_packets,
            n_attacks=len(expected_attacks),
        ),
        contention="high",
        verifier=verifier,
    )
