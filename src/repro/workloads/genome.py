"""genome — gene sequencing by segment dedup and overlap chaining.

STAMP's genome reconstructs a gene from random segments in transactional
phases:

1. **deduplication** — every segment is inserted into a shared hash-set
   (transaction per insert); duplicates are dropped.
2. **indexing** — each unique segment's *prefix* is inserted into a
   shared prefix hash table (transaction per insert).
3. **matching** — each thread looks up its segments' *suffixes* in the
   prefix table and links overlapping segments (``suffix_k(a) ==
   prefix_k(b)``), claiming the successor transactionally so every
   segment gains at most one predecessor — exactly the Pass-2 chaining
   of the original.

Transactions are short-to-medium and the hash buckets are hot, giving
the "high contention" class of Table IV.  The verifier checks the exact
unique-segment set, that every link is a true k-symbol overlap, and
that no segment has two predecessors.
"""

from __future__ import annotations

import numpy as np

from repro.htm.ops import Barrier, Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get

#: hash-set node field offsets (in words)
NODE_VALUE, NODE_NEXT, NODE_SIZE = 0, 1, 2
#: per-unique-segment link record: successor index + 1, has-predecessor
LINK_NEXT, LINK_HAS_PRED, LINK_SIZE = 0, 1, 2


def make_genome(
    n_threads: int = 16,
    seed: int = 1,
    gene_length: int = 256,
    segment_length: int = 16,
    n_segments: int = 512,
    n_buckets: int = 32,
    overlap: int | None = None,
    work_per_op: int = 30,
) -> Program:
    """Build the genome program (paper input: -g256 -s16 -n16384, scaled)."""
    rng = np.random.default_rng(seed)
    gene = rng.integers(0, 4, size=gene_length)
    starts = rng.integers(0, gene_length - segment_length, size=n_segments)
    seg_tuples = [tuple(int(x) for x in gene[s:s + segment_length])
                  for s in starts]

    def encode(symbols: tuple[int, ...]) -> int:
        out = 0
        for s in symbols:
            out = (out << 2) | s
        return out

    segments = [encode(t) for t in seg_tuples]
    unique_segments = sorted(set(segments))
    seg_index = {seg: i for i, seg in enumerate(unique_segments)}
    unique_tuples = {encode(t): t for t in seg_tuples}
    k = overlap if overlap is not None else segment_length - 1

    def prefix_of(seg: int) -> tuple[int, ...]:
        return unique_tuples[seg][:k]

    def suffix_of(seg: int) -> tuple[int, ...]:
        return unique_tuples[seg][-k:]

    space = AddressSpace()
    buckets = space.alloc("buckets", n_buckets, pad_lines=True)
    pool = space.alloc("node_pool", n_segments * NODE_SIZE)
    pool_cursor = space.alloc("pool_cursor", 1)
    unique_count = space.alloc("unique_count", 1)
    # phase 2: prefix index
    pbuckets = space.alloc("prefix_buckets", n_buckets, pad_lines=True)
    ppool = space.alloc("prefix_pool", n_segments * NODE_SIZE)
    ppool_cursor = space.alloc("prefix_pool_cursor", 1)
    # phase 3: links
    links = space.alloc("links", n_segments * LINK_SIZE)
    link_count = space.alloc("link_count", 1)

    def node_addr(base: int, index: int, f: int) -> int:
        return space.word(base, index * NODE_SIZE + f)

    def link_addr(index: int, f: int) -> int:
        return space.word(links, index * LINK_SIZE + f)

    def bucket_of(value: int) -> int:
        return (value * 2654435761) % n_buckets

    per_thread = [segments[t::n_threads] for t in range(n_threads)]
    uniq_per_thread = [unique_segments[t::n_threads] for t in range(n_threads)]

    def make_thread(tid: int):
        def thread():
            # ---- phase 1: transactional dedup insert ----
            for seg in per_thread[tid]:
                def insert(seg=seg):
                    bucket_addr = space.word(buckets, bucket_of(seg),
                                             padded=True)
                    yield Work(work_per_op)  # hash computation
                    head = yield Read(bucket_addr)
                    node = head
                    while node:
                        value = yield Read(node_addr(pool, node - 1, NODE_VALUE))
                        if value == seg:
                            return
                        node = yield Read(node_addr(pool, node - 1, NODE_NEXT))
                    cursor = yield Read(pool_cursor)
                    yield Write(pool_cursor, cursor + 1)
                    yield Write(node_addr(pool, cursor, NODE_VALUE), seg)
                    yield Write(node_addr(pool, cursor, NODE_NEXT), head)
                    yield Write(bucket_addr, cursor + 1)
                    count = yield Read(unique_count)
                    yield Write(unique_count, count + 1)
                yield Tx(insert, site=1)
                yield Work(work_per_op)
            yield Barrier(100)

            # ---- phase 2: index every unique segment by prefix ----
            for seg in uniq_per_thread[tid]:
                def index(seg=seg):
                    key = encode(prefix_of(seg))
                    bucket_addr = space.word(pbuckets, bucket_of(key),
                                             padded=True)
                    yield Work(work_per_op)
                    head = yield Read(bucket_addr)
                    cursor = yield Read(ppool_cursor)
                    yield Write(ppool_cursor, cursor + 1)
                    yield Write(node_addr(ppool, cursor, NODE_VALUE),
                                seg_index[seg] + 1)
                    yield Write(node_addr(ppool, cursor, NODE_NEXT), head)
                    yield Write(bucket_addr, cursor + 1)
                yield Tx(index, site=2)
            yield Barrier(101)

            # ---- phase 3: match suffix → prefix and link ----
            for seg in uniq_per_thread[tid]:
                def match(seg=seg):
                    me = seg_index[seg]
                    key = encode(suffix_of(seg))
                    bucket_addr = space.word(pbuckets, bucket_of(key),
                                             padded=True)
                    node = yield Read(bucket_addr)
                    while node:
                        cand_idx = (yield Read(
                            node_addr(ppool, node - 1, NODE_VALUE))) - 1
                        yield Work(work_per_op)  # symbol comparison
                        cand = unique_segments[cand_idx]
                        if (cand_idx != me
                                and prefix_of(cand) == suffix_of(seg)):
                            taken = yield Read(link_addr(cand_idx,
                                                         LINK_HAS_PRED))
                            mine = yield Read(link_addr(me, LINK_NEXT))
                            if not taken and not mine:
                                yield Write(link_addr(cand_idx,
                                                      LINK_HAS_PRED), 1)
                                yield Write(link_addr(me, LINK_NEXT),
                                            cand_idx + 1)
                                n = yield Read(link_count)
                                yield Write(link_count, n + 1)
                                return
                        node = yield Read(node_addr(ppool, node - 1,
                                                    NODE_NEXT))
                yield Tx(match, site=3)
                yield Work(work_per_op)
        return thread

    def verifier(memory: dict[int, int]) -> None:
        n_unique = mem_get(memory, unique_count)
        assert n_unique == len(unique_segments), (
            f"dedup found {n_unique} unique, expected {len(unique_segments)}"
        )
        used_nodes = mem_get(memory, pool_cursor)
        assert used_nodes == len(unique_segments)
        found = sorted(
            mem_get(memory, node_addr(pool, i, NODE_VALUE))
            for i in range(used_nodes)
        )
        assert found == unique_segments
        # the prefix index holds every unique segment exactly once
        assert mem_get(memory, ppool_cursor) == len(unique_segments)
        # links are true overlaps, and nobody has two predecessors
        n_links = 0
        pred_count: dict[int, int] = {}
        for i, seg in enumerate(unique_segments):
            nxt = mem_get(memory, link_addr(i, LINK_NEXT))
            if nxt:
                succ = unique_segments[nxt - 1]
                assert suffix_of(seg) == prefix_of(succ), (
                    f"link {i}→{nxt - 1} is not a {k}-symbol overlap"
                )
                pred_count[nxt - 1] = pred_count.get(nxt - 1, 0) + 1
                n_links += 1
        assert all(v == 1 for v in pred_count.values())
        for idx, cnt in pred_count.items():
            assert mem_get(memory, link_addr(idx, LINK_HAS_PRED)) == 1
        assert n_links == mem_get(memory, link_count)

    return Program(
        name="genome",
        threads=[make_thread(t) for t in range(n_threads)],
        params=dict(
            gene_length=gene_length,
            segment_length=segment_length,
            n_segments=n_segments,
            n_buckets=n_buckets,
            overlap=k,
        ),
        contention="high",
        verifier=verifier,
    )
