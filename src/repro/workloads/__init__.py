"""STAMP-like transactional workloads (paper Table IV).

Each workload is a re-implementation of the corresponding STAMP
application's algorithm and data structures as a transactional program
over the :mod:`repro.htm.ops` protocol, with inputs scaled for a
behavioural simulator.  Every program computes a real result and ships a
verifier so the functional correctness of each version-management
scheme is checked, not assumed.

============  =========================================  ==========
name          kernel                                     contention
============  =========================================  ==========
bayes         Bayes-net structure learning (hill climb)  high
genome        segment dedup + overlap chaining            high
intruder      packet reassembly + detection               high
kmeans        k-means clustering                          low
labyrinth     3-D grid path routing (Lee algorithm)       high
ssca2         graph construction kernel                   low
vacation      travel-reservation database                 low
yada          Delaunay-style mesh refinement              high
============  =========================================  ==========
"""

from repro.workloads.base import AddressSpace, Program, load, store
from repro.workloads.registry import (
    HIGH_CONTENTION,
    STAMP_APPS,
    WORKLOAD_NAMES,
    make_workload,
)

__all__ = [
    "AddressSpace",
    "HIGH_CONTENTION",
    "Program",
    "STAMP_APPS",
    "WORKLOAD_NAMES",
    "load",
    "make_workload",
    "store",
]
