"""Workload registry: build any Table IV application by name.

Three input scales are provided per application:

* ``tiny``  — seconds-long unit-test inputs;
* ``small`` — the benchmark default (minutes for the full Figure 6 run);
* ``full``  — closest to the paper's Table IV parameters that remains
  tractable for a pure-Python simulator.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Program
from repro.workloads.bayes import make_bayes
from repro.workloads.genome import make_genome
from repro.workloads.intruder import make_intruder
from repro.workloads.kmeans import make_kmeans
from repro.workloads.labyrinth import make_labyrinth
from repro.workloads.ssca2 import make_ssca2
from repro.workloads.starve import make_starve
from repro.workloads.synthetic import make_synthetic
from repro.workloads.vacation import make_vacation
from repro.workloads.yada import make_yada

#: the paper's eight Table IV applications — what the figure/table
#: benchmarks sweep when they reproduce a published number
STAMP_APPS = (
    "bayes", "genome", "intruder", "kmeans",
    "labyrinth", "ssca2", "vacation", "yada",
)

#: every runnable workload: the paper apps plus purpose-built stresses
#: (starve: one huge reader vs. many small writers)
WORKLOAD_NAMES = STAMP_APPS + ("starve",)

#: the five high-contention applications of Table IV
HIGH_CONTENTION = ("bayes", "genome", "intruder", "labyrinth", "yada")

_FACTORIES: dict[str, Callable[..., Program]] = {
    "bayes": make_bayes,
    "genome": make_genome,
    "intruder": make_intruder,
    "kmeans": make_kmeans,
    "labyrinth": make_labyrinth,
    "ssca2": make_ssca2,
    "vacation": make_vacation,
    "yada": make_yada,
    "synthetic": make_synthetic,
    "starve": make_starve,
}

#: factories whose Programs carry no run-mutable captured state: their
#: thread closures and verifiers only *read* the pre-planned inputs, so
#: one built Program can be re-run any number of times.  The other
#: workloads mutate captured structures while running (e.g. labyrinth's
#: claimed-routes map) and must be rebuilt per run.
_PURE_FACTORIES = frozenset({"ssca2", "synthetic", "starve"})

#: memoized Programs for the pure factories (keyed by every build
#: parameter); bench/sweep loops rebuild the same workload for each
#: scheme, and the build can cost several ms against a ~20 ms tiny run
_PROGRAM_MEMO: dict[tuple, Program] = {}

_SCALES: dict[str, dict[str, dict[str, object]]] = {
    "bayes": {
        "tiny": dict(n_vars=10, work_per_score=40),
        "small": dict(n_vars=20, work_per_score=100, scratch_factor=2),
        # ~31 candidate rows x 4x32 words ≈ 500 lines/transaction: the
        # write-set-to-L1 ratio of the paper's -v32 input
        "full": dict(n_vars=32, work_per_score=160, scratch_factor=4),
    },
    "genome": {
        "tiny": dict(gene_length=96, n_segments=96, n_buckets=16),
        "small": dict(gene_length=256, n_segments=384, n_buckets=32),
        "full": dict(gene_length=256, n_segments=1024, n_buckets=64),
    },
    "intruder": {
        "tiny": dict(n_flows=24),
        "small": dict(n_flows=64),
        "full": dict(n_flows=192),
    },
    "kmeans": {
        "tiny": dict(n_points=96, n_clusters=8, n_iterations=2),
        # the paper's input is d16 c16: the 16-dimensional distance
        # computation is what makes kmeans compute-bound / low-contention
        "small": dict(n_points=256, n_clusters=16, n_dims=12,
                      n_iterations=2, work_distance=12),
        "full": dict(n_points=512, n_clusters=16, n_dims=16,
                     n_iterations=3, work_distance=12),
    },
    "labyrinth": {
        "tiny": dict(dim_x=8, dim_y=8, dim_z=2, n_routes=8),
        "small": dict(dim_x=24, dim_y=24, dim_z=3, n_routes=16),
        # the paper's input (x32 y32 z3): the in-transaction grid copy is
        # 24 KB against the 32 KB L1, which is what overflows it
        "full": dict(dim_x=32, dim_y=32, dim_z=3, n_routes=24),
    },
    "ssca2": {
        "tiny": dict(scale=6, edge_factor=2),
        "small": dict(scale=9, edge_factor=2),
        "full": dict(scale=10, edge_factor=3),
    },
    "vacation": {
        "tiny": dict(n_relations=64, n_tasks=48),
        "small": dict(n_relations=128, n_tasks=96),
        "full": dict(n_relations=512, n_tasks=256),
    },
    "yada": {
        "tiny": dict(n_initial=24, scratch_words=192),
        "small": dict(n_initial=48, scratch_words=1024),
        "full": dict(n_initial=72, scratch_words=3584),
    },
    "synthetic": {
        "tiny": dict(tx_per_thread=8),
        "small": dict(tx_per_thread=16),
        "full": dict(tx_per_thread=48),
    },
    "starve": {
        "tiny": dict(reader_slots=32, tx_per_writer=3),
        "small": dict(reader_slots=64, tx_per_writer=6),
        "full": dict(reader_slots=128, tx_per_writer=12),
    },
}


def make_workload(
    name: str,
    n_threads: int = 16,
    seed: int = 1,
    scale: str = "small",
    **overrides: object,
) -> Program:
    """Build a workload by name at the given input scale."""
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(_FACTORIES)}"
        )
    if scale not in ("tiny", "small", "full"):
        raise ValueError(f"unknown scale {scale!r}")
    kwargs: dict[str, object] = dict(_SCALES[name][scale])
    kwargs.update(overrides)
    if name in _PURE_FACTORIES:
        key = (name, n_threads, seed, tuple(sorted(kwargs.items())))
        try:
            program = _PROGRAM_MEMO.get(key)
        except TypeError:          # unhashable override value
            return _FACTORIES[name](n_threads=n_threads, seed=seed, **kwargs)
        if program is None:
            program = _FACTORIES[name](n_threads=n_threads, seed=seed, **kwargs)
            _PROGRAM_MEMO[key] = program
        return program
    return _FACTORIES[name](n_threads=n_threads, seed=seed, **kwargs)
