"""Workload building blocks: address space, helpers, the Program type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.config import LINE_BYTES
from repro.htm.ops import Read, Write

#: bytes per memory word (all workload values are 8-byte words)
WORD = 8
#: words per cache line
WORDS_PER_LINE = LINE_BYTES // WORD


class AddressSpace:
    """A bump allocator carving named regions out of the flat memory.

    Regions are line-aligned so distinct structures never share a cache
    line; elements *within* an array do (8 words per 64-byte line),
    which preserves the false-sharing behaviour of the real programs.
    """

    #: well below the undo-log region (1<<41) and redirect pool (1<<40)
    BASE = 0x100000

    def __init__(self) -> None:
        self._next = self.BASE
        self.regions: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, n_words: int, pad_lines: bool = False) -> int:
        """Allocate ``n_words`` 8-byte words; returns the base address.

        ``pad_lines`` puts each word on its own cache line (used for hot
        scalars like queue heads, to match the padded layouts STAMP uses
        for its locks/counters).
        """
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        stride = LINE_BYTES if pad_lines else WORD
        base = self._next
        size = n_words * stride
        self.regions[name] = (base, size)
        # next region starts on a fresh line
        end = base + size
        self._next = (end + LINE_BYTES - 1) // LINE_BYTES * LINE_BYTES
        return base

    def word(self, base: int, index: int, padded: bool = False) -> int:
        """Address of element ``index`` in a region."""
        return base + index * (LINE_BYTES if padded else WORD)

    @property
    def bytes_allocated(self) -> int:
        return self._next - self.BASE


def load(addr: int) -> Generator:
    """``value = yield from load(addr)`` inside a thread/tx body."""
    value = yield Read(addr)
    return value


def store(addr: int, value: int) -> Generator:
    """``yield from store(addr, value)``."""
    yield Write(addr, value)


@dataclass
class Program:
    """A runnable multi-threaded transactional program."""

    name: str
    threads: list[Callable[[], Generator]]
    #: free-form description of inputs (mirrors Table IV's parameters)
    params: dict[str, object] = field(default_factory=dict)
    #: "high" or "low" (Table IV's contention class)
    contention: str = "low"
    #: functional checker run against the post-run memory image
    verifier: Callable[[dict[int, int]], None] | None = None

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def verify(self, memory: dict[int, int]) -> None:
        """Raise AssertionError if the computed result is wrong."""
        if self.verifier is not None:
            self.verifier(memory)


def mem_get(memory: dict[int, int], addr: int) -> int:
    """Post-run memory accessor used by verifiers (missing word = 0)."""
    return memory.get(addr, 0)
