"""Starvation-freedom stress: one huge reader vs. many small writers.

Thread 0 runs a single *declared read-only* transaction that scans every
slot of a shared array (``site=1``); every other thread streams short
read-modify-write transactions that increment randomly chosen slots
(``site=2``).  Under plain SUV with ``resolution="abort_responder"`` the
huge reader's read set conflicts with every writer commit, so it is
doomed over and over and only commits once the writers drain — the
classic reader-starvation pathology.  Under mvsuv the reader runs in
snapshot mode over the version chains: it is invisible to conflict
detection and commits first try.

The reader accumulates a checksum locally but deliberately does **not**
store it: the sum depends on how many writer transactions serialized
before the reader's snapshot, which is timing- (and scheme-) dependent,
and the functional verifier must stay scheme-independent.  The verifier
checks only the writers' pre-planned increments.
"""

from __future__ import annotations

import numpy as np

from repro.htm.ops import Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get


def make_starve(
    n_threads: int = 16,
    seed: int = 1,
    reader_slots: int = 64,
    tx_per_writer: int = 6,
    writes_per_tx: int = 2,
    work_per_access: int = 10,
) -> Program:
    """Build the starvation stress.

    ``reader_slots`` sets the size of the shared array (and thus of the
    huge reader's read set); ``tx_per_writer`` and ``writes_per_tx``
    control how much writer traffic the reader must survive.
    """
    if n_threads < 2:
        raise ValueError("starve needs at least one reader and one writer")
    space = AddressSpace()
    slot_base = space.alloc("slots", reader_slots)
    rng = np.random.default_rng(seed)

    # pre-plan every writer increment so the final counts are known
    n_writers = n_threads - 1
    plans: list[list[list[int]]] = []
    expected: dict[int, int] = {}
    for _w in range(n_writers):
        writer_plan = []
        for _x in range(tx_per_writer):
            tx_plan = []
            for _a in range(writes_per_tx):
                addr = space.word(slot_base, int(rng.integers(reader_slots)))
                tx_plan.append(addr)
                expected[addr] = expected.get(addr, 0) + 1
            writer_plan.append(tx_plan)
        plans.append(writer_plan)

    def reader_thread():
        def body():
            checksum = 0
            for idx in range(reader_slots):
                value = yield Read(space.word(slot_base, idx))
                checksum += value
                yield Work(work_per_access)
            # the checksum is never stored: see the module docstring
        yield Tx(body, site=1, read_only=True)

    def make_writer(wid: int):
        def thread():
            for tx_plan in plans[wid]:
                def body(plan=tx_plan):
                    for addr in plan:
                        value = yield Read(addr)
                        yield Work(work_per_access)
                        yield Write(addr, value + 1)
                yield Tx(body, site=2)
                yield Work(work_per_access)
        return thread

    def verifier(memory: dict[int, int]) -> None:
        for addr, count in expected.items():
            got = mem_get(memory, addr)
            assert got == count, (
                f"slot {addr:#x}: expected {count} increments, found {got}"
            )

    return Program(
        name="starve",
        threads=[reader_thread] + [make_writer(w) for w in range(n_writers)],
        params=dict(
            reader_slots=reader_slots,
            tx_per_writer=tx_per_writer,
            writes_per_tx=writes_per_tx,
            work_per_access=work_per_access,
        ),
        contention="high",
        verifier=verifier,
    )
