"""A parametric micro-benchmark with contention/length knobs.

Used for the Figure 1 pathology demonstration, the ablation benches and
unit tests: every thread runs transactions that read/modify/write a mix
of *hot* (shared, conflict-prone) and *cold* (private-ish) words, with
tunable transaction length.  The functional result — every word holds
the number of increments applied to it — is exactly checkable.
"""

from __future__ import annotations

import numpy as np

from repro.htm.ops import Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get


def make_synthetic(
    n_threads: int = 16,
    seed: int = 1,
    tx_per_thread: int = 16,
    accesses_per_tx: int = 8,
    hot_fraction: float = 0.25,
    hot_words: int = 4,
    cold_words: int = 4096,
    work_per_access: int = 20,
    read_only_fraction: float = 0.5,
) -> Program:
    """Build the micro-benchmark.

    ``hot_fraction`` of the accesses target one of ``hot_words`` shared
    words (8 per cache line → line-level conflicts); the rest spread
    over ``cold_words``.  Raising ``hot_fraction``/``accesses_per_tx``
    raises contention / transaction length respectively.
    """
    space = AddressSpace()
    hot_base = space.alloc("hot", hot_words)
    cold_base = space.alloc("cold", cold_words)
    rng = np.random.default_rng(seed)

    # pre-plan every access so the expected final counts are known
    plans: list[list[list[tuple[int, bool]]]] = []
    expected: dict[int, int] = {}
    for _t in range(n_threads):
        thread_plan = []
        for _x in range(tx_per_thread):
            tx_plan = []
            for _a in range(accesses_per_tx):
                if rng.random() < hot_fraction:
                    addr = space.word(hot_base, int(rng.integers(hot_words)))
                else:
                    addr = space.word(cold_base, int(rng.integers(cold_words)))
                is_write = rng.random() >= read_only_fraction
                tx_plan.append((addr, is_write))
                if is_write:
                    expected[addr] = expected.get(addr, 0) + 1
            thread_plan.append(tx_plan)
        plans.append(thread_plan)

    def make_thread(tid: int):
        def thread():
            for tx_plan in plans[tid]:
                def body(plan=tx_plan):
                    for addr, is_write in plan:
                        value = yield Read(addr)
                        yield Work(work_per_access)
                        if is_write:
                            yield Write(addr, value + 1)
                yield Tx(body, site=1)
                yield Work(work_per_access)
        return thread

    def verifier(memory: dict[int, int]) -> None:
        for addr, count in expected.items():
            got = mem_get(memory, addr)
            assert got == count, (
                f"word {addr:#x}: expected {count} increments, found {got}"
            )

    return Program(
        name="synthetic",
        threads=[make_thread(t) for t in range(n_threads)],
        params=dict(
            tx_per_thread=tx_per_thread,
            accesses_per_tx=accesses_per_tx,
            hot_fraction=hot_fraction,
            hot_words=hot_words,
            cold_words=cold_words,
            work_per_access=work_per_access,
        ),
        contention="high" if hot_fraction >= 0.2 else "low",
        verifier=verifier,
    )
