"""yada — Delaunay-style mesh refinement (Ruppert's algorithm).

STAMP's yada repeatedly takes a "bad" triangle from a shared work heap,
transactionally collects its *cavity* (the triangle plus surrounding
neighbours), retriangulates the cavity — retiring the old triangles and
inserting new ones — and pushes any newly-bad triangles back on the
heap.  Transactions are long (a whole cavity) and the heap plus mesh
regions are contended: Table IV's "high" class.

We port the algorithm over an explicit triangle store with neighbour
links; cavity membership follows the links exactly as the pointer-based
original does.  "Badness" is carried per triangle from a deterministic
quality function, and each retriangulation of a cavity of ``k``
triangles produces ``k + 1`` replacements of improving quality, which
guarantees termination like the geometric original.  The verifier
checks the mesh bookkeeping exactly: every triangle retired exactly
once or live, no bad triangle left, and the retire/create counts
balance.
"""

from __future__ import annotations

import numpy as np

from repro.htm.ops import Read, Tx, Work, Write
from repro.workloads.base import AddressSpace, Program, mem_get

# triangle record layout (words)
T_ALIVE, T_QUALITY, T_NBR0, T_NBR1, T_NBR2, T_SIZE = 0, 1, 2, 3, 4, 5
#: a triangle is "bad" (needs refinement) below this quality
GOOD_QUALITY = 3


def make_yada(
    n_threads: int = 16,
    seed: int = 1,
    n_initial: int = 48,
    bad_fraction: float = 0.5,
    max_triangles: int = 4096,
    work_per_cavity_step: int = 40,
    scratch_words: int = 192,
) -> Program:
    """Build the yada program (paper: -a20 -i 633.2, scaled)."""
    rng = np.random.default_rng(seed)

    space = AddressSpace()
    triangles = space.alloc("triangles", max_triangles * T_SIZE)
    tri_cursor = space.alloc("tri_cursor", 1)          # next free slot
    heap = space.alloc("work_heap", max_triangles)
    heap_head = space.alloc("heap_head", 1)
    heap_tail = space.alloc("heap_tail", 1)
    retired_count = space.alloc("retired", 1)
    created_count = space.alloc("created", 1)
    # per-thread geometry scratch: the real refinement recomputes the
    # cavity's coordinates/circumcenters in transaction-local buffers,
    # which is where yada's 6.8K-instruction write sets come from
    scratch = [
        space.alloc(f"geom_scratch_{t}", scratch_words)
        for t in range(n_threads)
    ]

    def tri_addr(t: int, f: int) -> int:
        return space.word(triangles, t * T_SIZE + f)

    # deterministic initial mesh: a ring of triangles, each linked to its
    # two ring neighbours (third link empty), with seeded qualities
    init_quality = [
        int(q) for q in
        np.where(rng.random(n_initial) < bad_fraction,
                 rng.integers(0, GOOD_QUALITY, n_initial),
                 rng.integers(GOOD_QUALITY, GOOD_QUALITY + 3, n_initial))
    ]
    initial_bad = [t for t in range(n_initial) if init_quality[t] < GOOD_QUALITY]

    def make_thread(tid: int):
        def thread():
            from repro.htm.ops import Barrier

            if tid == 0:
                # build the initial mesh and seed the work heap
                for t in range(n_initial):
                    yield Write(tri_addr(t, T_ALIVE), 1)
                    yield Write(tri_addr(t, T_QUALITY), init_quality[t])
                    yield Write(tri_addr(t, T_NBR0), ((t + 1) % n_initial) + 1)
                    yield Write(tri_addr(t, T_NBR1),
                                ((t - 1) % n_initial) + 1)
                    yield Write(tri_addr(t, T_NBR2), 0)
                yield Write(tri_cursor, n_initial)
                for i, t in enumerate(initial_bad):
                    yield Write(space.word(heap, i), t + 1)
                yield Write(heap_tail, len(initial_bad))
            yield Barrier(0)

            while True:
                def refine():
                    # ---- pop a bad triangle from the heap ----
                    head = yield Read(heap_head)
                    tail = yield Read(heap_tail)
                    if head >= tail:
                        return -1
                    yield Write(heap_head, head + 1)
                    t = (yield Read(space.word(heap, head))) - 1
                    alive = yield Read(tri_addr(t, T_ALIVE))
                    if not alive:
                        return 0  # already retired by another cavity
                    quality = yield Read(tri_addr(t, T_QUALITY))
                    if quality >= GOOD_QUALITY:
                        return 0

                    # ---- collect the cavity by following links ----
                    cavity = [t]
                    for slot in (T_NBR0, T_NBR1, T_NBR2):
                        nbr = yield Read(tri_addr(t, slot))
                        yield Work(work_per_cavity_step)
                        if not nbr:
                            continue
                        nbr -= 1
                        if nbr in cavity:
                            continue  # small rings alias their neighbours
                        if (yield Read(tri_addr(nbr, T_ALIVE))):
                            cavity.append(nbr)

                    # ---- geometry recomputation into the thread scratch ----
                    my_scratch = scratch[tid]
                    for step, c in enumerate(cavity):
                        for w in range(0, scratch_words // len(cavity), 2):
                            yield Write(
                                space.word(
                                    my_scratch,
                                    (step * (scratch_words // len(cavity)) + w)
                                    % scratch_words,
                                ),
                                c * 1000 + w,
                            )
                        yield Work(work_per_cavity_step)

                    # ---- retriangulate: retire cavity, insert k+1 ----
                    for c in cavity:
                        yield Write(tri_addr(c, T_ALIVE), 0)
                    retired = yield Read(retired_count)
                    yield Write(retired_count, retired + len(cavity))

                    cursor = yield Read(tri_cursor)
                    k = len(cavity) + 1
                    if cursor + k > max_triangles:
                        raise RuntimeError("triangle pool exhausted")
                    new_ids = list(range(cursor, cursor + k))
                    yield Write(tri_cursor, cursor + k)
                    new_bad = []
                    for j, nt in enumerate(new_ids):
                        # refinement improves quality; an occasional new
                        # triangle is still bad and re-enqueued
                        q = quality + 1 + (j % 2)
                        yield Write(tri_addr(nt, T_ALIVE), 1)
                        yield Write(tri_addr(nt, T_QUALITY), q)
                        yield Write(
                            tri_addr(nt, T_NBR0),
                            new_ids[(j + 1) % k] + 1,
                        )
                        yield Write(
                            tri_addr(nt, T_NBR1),
                            new_ids[(j - 1) % k] + 1,
                        )
                        yield Write(tri_addr(nt, T_NBR2), 0)
                        if q < GOOD_QUALITY:
                            new_bad.append(nt)
                    created = yield Read(created_count)
                    yield Write(created_count, created + k)

                    # ---- push still-bad replacements ----
                    if new_bad:
                        tail = yield Read(heap_tail)
                        for j, nt in enumerate(new_bad):
                            yield Write(space.word(heap, tail + j), nt + 1)
                        yield Write(heap_tail, tail + len(new_bad))
                    return 1

                outcome = yield Tx(refine, site=2)
                if outcome is None or outcome < 0:
                    break
                yield Work(30)
        return thread

    def verifier(memory: dict[int, int]) -> None:
        n_tris = mem_get(memory, tri_cursor)
        assert n_tris >= n_initial
        live_bad = []
        live = 0
        for t in range(n_tris):
            if mem_get(memory, tri_addr(t, T_ALIVE)):
                live += 1
                if mem_get(memory, tri_addr(t, T_QUALITY)) < GOOD_QUALITY:
                    live_bad.append(t)
        # termination: the heap was fully drained and no live bad triangle
        # remains enqueued (every heap entry points at a retired or good
        # triangle once processing finished)
        head = mem_get(memory, heap_head)
        tail = mem_get(memory, heap_tail)
        assert head >= tail, "work heap not drained"
        assert not live_bad, f"live bad triangles remain: {live_bad[:5]}"
        retired = mem_get(memory, retired_count)
        created = mem_get(memory, created_count)
        assert live == n_initial + created - retired
        assert n_tris == n_initial + created

    return Program(
        name="yada",
        threads=[make_thread(t) for t in range(n_threads)],
        params=dict(n_initial=n_initial, bad_fraction=bad_fraction),
        contention="high",
        verifier=verifier,
    )
