"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

from repro.stats.breakdown import COMPONENTS, Breakdown


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_phase_table(
    phases: dict[str, dict],
    title: str = "Isolation windows",
) -> str:
    """Render per-scheme isolation-window accounting side by side.

    ``phases`` maps a label (scheme name) to a
    :meth:`repro.trace.Tracer.phase_breakdown` dict.  One row per
    scheme: window counts, mean/max open span, the commit- and
    abort-processing shares of those spans (the paper's Figure 1
    pathologies), and commit/abort latency percentiles.
    """
    if not phases:
        return "(no results)"
    headers = [
        "scheme", "windows", "committed", "aborted",
        "open(mean)", "open(max)", "commit cyc", "abort cyc",
        "commit p50/p95/max", "abort p50/p95/max",
    ]
    rows = []
    for label, pb in phases.items():
        iso = pb.get("isolation", {})
        lat = pb.get("latency", {})
        rows.append([
            label,
            iso.get("windows", 0),
            iso.get("committed", 0),
            iso.get("aborted", 0),
            f"{iso.get('open_cycles_mean', 0.0):.1f}",
            iso.get("open_cycles_max", 0),
            iso.get("commit_processing_cycles", 0),
            iso.get("abort_processing_cycles", 0),
            _pctl(lat.get("commit", {})),
            _pctl(lat.get("abort", {})),
        ])
    return format_table(headers, rows, title=title)


def _pctl(hist: dict) -> str:
    if not hist.get("count"):
        return "-"
    return f"{hist.get('p50', 0)}/{hist.get('p95', 0)}/{hist.get('max', 0)}"


def format_breakdown_table(
    results: dict[str, Breakdown],
    baseline: str | None = None,
    title: str = "",
) -> str:
    """Render execution-time breakdowns, normalized to ``baseline``.

    ``results`` maps a label (scheme name) to its breakdown; the
    normalization baseline defaults to the first label, mirroring the
    paper's Figure 6 normalization to LogTM-SE.
    """
    if not results:
        return "(no results)"
    base_label = baseline if baseline is not None else next(iter(results))
    base_total = results[base_label].total or 1
    headers = ["scheme", *COMPONENTS, "total(norm)"]
    rows = []
    for label, bd in results.items():
        norm = bd.normalized_to(base_total)
        rows.append(
            [label, *(f"{norm[c]:.3f}" for c in COMPONENTS),
             f"{bd.total / base_total:.3f}"]
        )
    return format_table(headers, rows, title=title)
