"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Sequence

from repro.stats.breakdown import COMPONENTS, Breakdown


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_breakdown_table(
    results: dict[str, Breakdown],
    baseline: str | None = None,
    title: str = "",
) -> str:
    """Render execution-time breakdowns, normalized to ``baseline``.

    ``results`` maps a label (scheme name) to its breakdown; the
    normalization baseline defaults to the first label, mirroring the
    paper's Figure 6 normalization to LogTM-SE.
    """
    if not results:
        return "(no results)"
    base_label = baseline if baseline is not None else next(iter(results))
    base_total = results[base_label].total or 1
    headers = ["scheme", *COMPONENTS, "total(norm)"]
    rows = []
    for label, bd in results.items():
        norm = bd.normalized_to(base_total)
        rows.append(
            [label, *(f"{norm[c]:.3f}" for c in COMPONENTS),
             f"{bd.total / base_total:.3f}"]
        )
    return format_table(headers, rows, title=title)
