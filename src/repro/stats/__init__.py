"""Execution statistics: breakdown components, charts, reports, export."""

from repro.stats.breakdown import COMPONENTS, Breakdown
from repro.stats.charts import breakdown_chart, line_plot
from repro.stats.report import format_breakdown_table, format_table

# NOTE: repro.stats.export imports repro.simulator (which imports this
# package), so it is intentionally not re-exported here; import it as
# ``from repro.stats.export import results_to_json``.

__all__ = [
    "Breakdown",
    "COMPONENTS",
    "breakdown_chart",
    "format_breakdown_table",
    "format_table",
    "line_plot",
]
