"""ASCII chart rendering for the regenerated figures.

The paper's figures are stacked bar charts (execution-time breakdowns)
and line plots (sensitivity sweeps); these helpers render terminal
equivalents so `pytest benchmarks/` output resembles the figures, not
just their tables.
"""

from __future__ import annotations

from repro.stats.breakdown import COMPONENTS, Breakdown

#: one glyph per breakdown component, in stacking order
GLYPHS = {
    "NoTrans": ".",
    "Trans": "#",
    "Barrier": "=",
    "Backoff": "b",
    "Stalled": "s",
    "Wasted": "w",
    "Aborting": "A",
    "Committing": "C",
}


def stacked_bar(
    breakdown: Breakdown, baseline_total: int, width: int = 60
) -> str:
    """One stacked bar scaled so ``baseline_total`` spans ``width``."""
    if baseline_total <= 0:
        raise ValueError("baseline total must be positive")
    chars: list[str] = []
    carry = 0.0
    for comp in COMPONENTS:
        exact = breakdown.cycles[comp] / baseline_total * width + carry
        n = int(round(exact))
        carry = exact - n
        chars.append(GLYPHS[comp] * max(0, n))
    return "".join(chars)


def breakdown_chart(
    results: dict[str, Breakdown],
    baseline: str | None = None,
    width: int = 60,
    title: str = "",
) -> str:
    """A Figure 6/9-style stacked bar chart, normalized to ``baseline``."""
    if not results:
        return "(no results)"
    base_label = baseline if baseline is not None else next(iter(results))
    base_total = results[base_label].total or 1
    label_w = max(len(k) for k in results)
    lines = []
    if title:
        lines.append(title)
    for label, bd in results.items():
        bar = stacked_bar(bd, base_total, width)
        lines.append(f"{label.ljust(label_w)} |{bar}| {bd.total / base_total:.2f}")
    legend = "  ".join(f"{g}={c}" for c, g in GLYPHS.items())
    lines.append(f"{''.ljust(label_w)}  legend: {legend}")
    return "\n".join(lines)


def line_plot(
    points: list[tuple[float, float]],
    width: int = 56,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
    title: str = "",
) -> str:
    """A minimal scatter/line plot on a character grid."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    lines.append(f"{'':12}{x_lo:<.4g}{x_label:^{max(0, width - 16)}}{x_hi:>.4g}")
    if y_label:
        lines.append(f"            (y: {y_label})")
    return "\n".join(lines)
