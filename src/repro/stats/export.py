"""JSON export of simulation results (for external tooling/plots)."""

from __future__ import annotations

import json
from typing import Any

from repro.simulator import SimResult


def result_to_dict(result: SimResult, include_memory: bool = False) -> dict:
    """A JSON-serializable summary of one run."""
    out: dict[str, Any] = {
        "scheme": result.scheme,
        "total_cycles": result.total_cycles,
        "breakdown": result.breakdown.as_dict(),
        "commits": result.commits,
        "aborts": result.aborts,
        "tx_attempts": result.tx_attempts,
        "abort_ratio": result.abort_ratio,
        "n_threads": result.n_threads,
        "context_switches": result.context_switches,
        "events_executed": result.events_executed,
        "scheme_stats": {k: float(v) for k, v in result.scheme_stats.items()},
        "phase_breakdown": result.phase_breakdown,
    }
    if include_memory:
        out["memory"] = {str(k): v for k, v in result.memory.items()}
    return out


def results_to_json(
    results: dict[str, SimResult], indent: int = 2, **kw: Any
) -> str:
    """Serialize a {label: result} mapping (e.g. one row of Figure 6)."""
    return json.dumps(
        {label: result_to_dict(res, **kw) for label, res in results.items()},
        indent=indent,
        sort_keys=True,
    )
