"""Execution-time breakdown (paper Figures 6 and 9).

The paper decomposes execution time into: *NoTrans* (non-transactional
work), *Trans* (un-stalled transactional work that committed), *Barrier*,
*Backoff* (post-abort stalling), *Stalled* (conflict-resolution stalls),
*Wasted* (work of aborted transactions), and *Aborting* (rollback
processing).  Figure 9 adds *Committing* (commit processing of DynTM's
lazy mode); we track it for every scheme — for the eager schemes it is
the near-zero cost of discarding a log or flipping redirect-entry bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: component names, in the paper's stacking order
COMPONENTS = (
    "NoTrans",
    "Trans",
    "Barrier",
    "Backoff",
    "Stalled",
    "Wasted",
    "Aborting",
    "Committing",
)

#: the necessary-cost components; the rest is serialization overhead
USEFUL = ("NoTrans", "Trans", "Barrier")


@dataclass
class Breakdown:
    """Per-component cycle totals (summed over cores unless noted)."""

    cycles: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in COMPONENTS}
    )

    def add(self, component: str, amount: int) -> None:
        if component not in self.cycles:
            raise KeyError(f"unknown component {component!r}")
        if amount < 0:
            raise ValueError(f"negative time {amount} for {component}")
        self.cycles[component] += amount

    def merge(self, other: "Breakdown") -> "Breakdown":
        for comp, amt in other.cycles.items():
            self.cycles[comp] += amt
        return self

    @property
    def total(self) -> int:
        return sum(self.cycles.values())

    @property
    def overhead(self) -> int:
        """Cycles spent serializing transactions (non-useful components)."""
        return sum(v for k, v in self.cycles.items() if k not in USEFUL)

    def fraction(self, component: str) -> float:
        return self.cycles[component] / self.total if self.total else 0.0

    def normalized_to(self, baseline_total: int) -> dict[str, float]:
        """Each component as a fraction of a baseline total (Figure 6)."""
        if baseline_total <= 0:
            raise ValueError("baseline total must be positive")
        return {c: self.cycles[c] / baseline_total for c in COMPONENTS}

    def as_dict(self) -> dict[str, int]:
        return dict(self.cycles)

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "Breakdown":
        """Inverse of :meth:`as_dict` (rejects unknown components)."""
        bd = cls()
        for component, amount in data.items():
            bd.add(component, int(amount))
        return bd

    def __repr__(self) -> str:
        parts = ", ".join(f"{c}={v}" for c, v in self.cycles.items() if v)
        return f"Breakdown({parts or 'empty'})"
