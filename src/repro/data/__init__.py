"""Literature data quoted by the paper (Tables I and VI)."""

from repro.data.literature import ABORT_RATIO_STUDIES, AbortStudy
from repro.data.processors import PROCESSORS, ROCK, ProcessorSpec

__all__ = [
    "ABORT_RATIO_STUDIES",
    "AbortStudy",
    "PROCESSORS",
    "ProcessorSpec",
    "ROCK",
]
