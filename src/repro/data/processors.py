"""Table VI: parameters of contemporary processors (2012 vintage).

Used to put SUV's energy/area overheads in context (Section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessorSpec:
    """One row of Table VI."""

    name: str
    tech_nm: int
    clock_ghz: float
    cores: int
    threads: int
    tdp_w: float
    area_mm2: float


ULTRASPARC_T1 = ProcessorSpec("UltraSPARC T1", 90, 1.4, 8, 32, 72, 378)
ULTRASPARC_T2 = ProcessorSpec("UltraSPARC T2", 65, 1.4, 8, 64, 84, 342)
ROCK = ProcessorSpec("Rock Processor", 65, 2.3, 16, 32, 250, 396)

PROCESSORS: tuple[ProcessorSpec, ...] = (
    ULTRASPARC_T1,
    ULTRASPARC_T2,
    ROCK,
)
