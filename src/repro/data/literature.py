"""Table I: abort behaviours reported in published TM studies.

These motivate the paper's claim that abort processing must be
optimized alongside commit: abort ratios up to ~80% have been observed
on modern transactional benchmark suites.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AbortStudy:
    """One row of Table I."""

    study: str
    abort_ratio_max: float          # fraction, not percent
    environment: str


ABORT_RATIO_STUDIES: tuple[AbortStudy, ...] = (
    AbortStudy("LogTM", 0.15, "Splash2 applications run under LogTM"),
    AbortStudy("PTM", 0.24, "Splash2 applications run under PTM"),
    AbortStudy(
        "LogTM-SE", 0.40,
        "Raytrace and BerkeleyDB aborted about 30% and 40% of transactions",
    ),
    AbortStudy(
        "FasTM", 0.40, "Micro-benchmarks, Splash2 and STAMP under FasTM"
    ),
    AbortStudy(
        "SBCR-HTM", 0.759,
        "STAMP under HTM with speculation-based conflict resolution",
    ),
    AbortStudy("LiteTM", 0.794, "STAMP under TokenTM"),
    AbortStudy(
        "Lee-TM", 0.72,
        "Five implementations of Lee's routing algorithm under DSTM2",
    ),
    AbortStudy(
        "TransPlant", 0.79,
        "Automatically generated programs with desired characteristics",
    ),
    AbortStudy(
        "RMS-TM", 0.69,
        "Selected RMS applications under Intel's prototype STM compiler",
    ),
)
