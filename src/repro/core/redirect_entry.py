"""Redirect entries and their four states (paper Table II, Figure 3).

An entry maps an *original* cache line to a *redirected* line in the
preserved pool.  Two bits — ``global`` and ``valid`` — encode four
states.  The stable states have ``global == valid``:

====================  ======  =====  =========================================
state                 global  valid  meaning
====================  ======  =====  =========================================
``VALID``             1       1      redirection active for every access
``INVALID``           0       0      no redirection (free / reclaimed entry)
``LOCAL_VALID``       0       1      redirection added by the running
                                     transaction; only that transaction's
                                     accesses follow it until commit
``LOCAL_INVALID``     1       0      redirection suspended by the running
                                     transaction (redirect-back); other
                                     threads still follow the old mapping
====================  ======  =====  =========================================

The paper's commit and abort rules become two one-bit flips:

* **commit** converts transient entries by flipping the *global* bit
  ("0→1 if valid=1, 1→0 if valid=0"), yielding ``VALID`` or ``INVALID``;
* **abort** converts them by flipping the *valid* bit ("0→1 if global=1,
  1→0 if global=0"), restoring the pre-transaction state.

This is why SUV's commit and abort are (near) zero-latency: no data
moves, only these bits change.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EntryState(enum.Enum):
    """The four (global, valid) states of Table II.

    ``global_bit``/``valid_bit``/``is_transient`` are plain attributes
    computed once at class-creation time (entry-state checks sit on the
    SUV translation hot path; see DESIGN §11).
    """

    VALID = (1, 1)
    INVALID = (0, 0)
    LOCAL_VALID = (0, 1)
    LOCAL_INVALID = (1, 0)

    def __init__(self, global_bit: int, valid_bit: int) -> None:
        self.global_bit = global_bit
        self.valid_bit = valid_bit
        #: transient states are exactly those with global != valid
        self.is_transient = global_bit != valid_bit

    def committed(self) -> "EntryState":
        """The commit rule: flip the global bit of a transient entry."""
        if not self.is_transient:
            return self
        return EntryState((self.global_bit ^ 1, self.valid_bit))

    def aborted(self) -> "EntryState":
        """The abort rule: flip the valid bit of a transient entry."""
        if not self.is_transient:
            return self
        return EntryState((self.global_bit, self.valid_bit ^ 1))


@dataclass(slots=True)
class RedirectEntry:
    """One (original line → redirected line) mapping."""

    orig_line: int
    redirected_line: int
    state: EntryState = EntryState.LOCAL_VALID
    #: core whose open transaction owns the transient state, if any
    owner: int | None = None

    def active_for(self, core: int | None) -> bool:
        """Does the redirection apply to an access by ``core``?

        ``core`` is the accessing core, or ``None`` for a non-owner
        perspective.  Transient states only affect the owning
        transaction's accesses (paper Section III).
        """
        if self.state is EntryState.VALID:
            return True
        if self.state is EntryState.INVALID:
            return False
        if self.state is EntryState.LOCAL_VALID:
            return core is not None and core == self.owner
        # LOCAL_INVALID: suspended for the owner, still live for the rest
        return core is None or core != self.owner

    def on_commit(self) -> None:
        self.state = self.state.committed()
        if not self.state.is_transient:
            self.owner = None

    def on_abort(self) -> None:
        self.state = self.state.aborted()
        if not self.state.is_transient:
            self.owner = None

    @property
    def is_free(self) -> bool:
        """INVALID stable entries can be reclaimed from the table."""
        return self.state is EntryState.INVALID

    # -- Figure 3 bit-level encoding -------------------------------------
    def encode_first_level(
        self,
        l1_index_bits: int = 7,
        tlb_index: int = 0,
        tlb_index_bits: int = 6,
        page_offset_bits: int = 7,
    ) -> int:
        """The 22-bit first-level table encoding of Figure 3.

        Layout (msb→lsb): L1-cache set index of the original line,
        2-bit present state, TLB-entry index of the redirect pool page,
        in-page line offset.  With the default widths this is
        7 + 2 + 6 + 7 = 22 bits, matching the paper's arithmetic.
        """
        l1_index = self.orig_line & ((1 << l1_index_bits) - 1)
        state_bits = (self.state.global_bit << 1) | self.state.valid_bit
        offset = self.redirected_line & ((1 << page_offset_bits) - 1)
        tlb = tlb_index & ((1 << tlb_index_bits) - 1)
        word = l1_index
        word = (word << 2) | state_bits
        word = (word << tlb_index_bits) | tlb
        word = (word << page_offset_bits) | offset
        return word

    @staticmethod
    def first_level_entry_bits(
        l1_index_bits: int = 7,
        tlb_index_bits: int = 6,
        page_offset_bits: int = 7,
    ) -> int:
        """Size in bits of a first-level entry (paper: 22)."""
        return l1_index_bits + 2 + tlb_index_bits + page_offset_bits
