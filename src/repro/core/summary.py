"""The redirect summary filter (paper Section IV-A, Figure 5).

Every memory access — transactional or not — must learn whether its
address has been redirected.  Rather than probing the redirect table on
each access, SUV keeps a *redirect summary signature*: a Bloom filter of
all currently-redirected original lines.  A negative test proves the
address is unredirected and skips the table lookup entirely; a positive
(possibly false) sends the access to the table.

Removal uses the Figure 5 Bloom-counter trick (a second bit-vector
remembering uniquely-set bits); incomplete removal only costs wasted
lookups, never correctness.
"""

from __future__ import annotations

from typing import Any

from repro.config import RedirectConfig


class RedirectSummaryFilter:
    """CMP-wide summary of redirected lines, with lookup-filter stats.

    The hardware replicates the signature per core and keeps the copies
    coherent by broadcasting commit-time updates; behaviourally a single
    shared instance is equivalent, and the per-core storage is charged
    in :mod:`repro.hwcost.storage`.
    """

    def __init__(self, config: RedirectConfig, accel: Any = None) -> None:
        self.config = config
        self.enabled = config.use_summary_signature
        if accel is None:
            from repro.accel import resolve_backend

            accel = resolve_backend()
        self._sig = accel.make_counting_summary(
            config.summary_bits, config.summary_hashes
        )
        self.filtered = 0        # accesses proven unredirected (no lookup)
        self.passed = 0          # accesses sent to the table
        self.false_positives = 0  # passed accesses that found no entry
        #: fault injection: while True, every inquiry answers "maybe
        #: redirected", modelling a saturated filter (a false-positive
        #: storm) — correctness is unaffected, only lookups are wasted.
        self.force_positive = False
        self.forced_positives = 0
        self.rebuilds = 0
        self._removes_since_rebuild = 0
        #: rebuild once this many conservative removals have accumulated
        #: (each may leave stale bits set); keeps the false-positive rate
        #: of the filter bounded over long runs.
        self.rebuild_threshold = max(16, config.summary_bits // 64)

    def might_be_redirected(self, line: int) -> bool:
        """Must this access consult the redirect table?

        With the filter disabled (ablation) every access must look up.
        """
        if not self.enabled:
            self.passed += 1
            return True
        if self.force_positive:
            self.passed += 1
            self.forced_positives += 1
            return True
        if self._sig.test(line):
            self.passed += 1
            return True
        self.filtered += 1
        return False

    def note_false_positive(self) -> None:
        self.false_positives += 1

    def add(self, line: int) -> None:
        self._sig.add(line)

    def remove(self, line: int) -> None:
        self._sig.remove(line)
        self._removes_since_rebuild += 1

    def maybe_rebuild(self, live_lines) -> bool:
        """Periodic software rebuild of the filter from the live entries.

        Conservative deletion (Figure 5) leaves stale bits whenever a
        removed address shared bits with other insertions; over a long
        run the filter would saturate and every access would pay a
        wasted table lookup.  The software handler occasionally rebuilds
        the signature from the redirect table's valid entries — pure
        performance hygiene, correctness never depends on it.
        """
        if self._removes_since_rebuild < self.rebuild_threshold:
            return False
        # rebuild() is order-independent (see CountingSummarySignature),
        # so the vector backend replaces the per-line loop wholesale
        self._sig.rebuild(live_lines)
        self._removes_since_rebuild = 0
        self.rebuilds += 1
        return True

    @property
    def filter_rate(self) -> float:
        total = self.filtered + self.passed
        return self.filtered / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "filtered": self.filtered,
            "passed": self.passed,
            "false_positives": self.false_positives,
            "forced_positives": self.forced_positives,
            "filter_rate": self.filter_rate,
            "popcount": self._sig.popcount,
            "rebuilds": self.rebuilds,
        }
