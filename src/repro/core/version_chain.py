"""Bounded per-line chains of committed pre-image versions (mvsuv).

The multiversioned SUV extension (:mod:`repro.htm.vm.mvsuv`) keeps, for
every cache line, the last K *pre-image* records: when publication
number ``s`` overwrites words of a line, the record stamped ``s`` stores
the values those words held **before** the publication.  A snapshot
reader that began after publication ``S`` then recovers the value a word
had at its snapshot point with one rule:

    the first retained record with ``seq > S`` that mentions the word
    holds its pre-image — i.e. the newest committed value at or before
    ``S``; if no record newer than ``S`` mentions the word, current
    memory is still that value.

Trimming always removes the *oldest* records (smallest ``seq``) and
raises the line's ``trimmed_floor`` to the dropped sequence number, so
the retained records of a line all satisfy ``seq > floor``.  A snapshot
with ``S < floor`` is refused (``"exhausted"``): a dropped record in
``(S, floor]`` might have carried the pre-image the reader needs, so
serving from the remainder would be unsound.  The refusal is
deliberately conservative — correctness never depends on what was
thrown away.

Each retained record may pin one preserved-pool line (the hardware cost
model: a version occupies pool storage until garbage-collected).  The
chain itself never talks to the pool; it reports which pins were
released so the owner can free them.
"""

from __future__ import annotations

from typing import Iterator


class VersionRecord:
    """One committed pre-image record of one line."""

    __slots__ = ("seq", "cycle", "values", "pool_line")

    def __init__(
        self,
        seq: int,
        cycle: int,
        values: dict[int, int],
        pool_line: int | None,
    ) -> None:
        self.seq = seq
        self.cycle = cycle
        #: word address -> value the word held *before* publication ``seq``
        self.values = values
        #: preserved-pool line pinned by this record (None = unpinned)
        self.pool_line = pool_line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VersionRecord(seq={self.seq}, cycle={self.cycle}, "
            f"words={len(self.values)}, pool_line={self.pool_line})"
        )


class VersionChain:
    """K-bounded pre-image version chains, one per cache line.

    ``versions_k`` bounds the records retained per line; recording a
    (K+1)-th version evicts the line's oldest record.  All evictions —
    per-line overflow, global :meth:`evict_oldest` GC, and
    :meth:`note_lost` — raise the line's ``trimmed_floor`` so
    :meth:`read` can refuse snapshots that would need dropped history.
    """

    def __init__(self, versions_k: int) -> None:
        if versions_k < 1:
            raise ValueError(f"versions_k must be >= 1, got {versions_k}")
        self.versions_k = versions_k
        #: line -> records sorted ascending by seq (all ``seq > floor``)
        self._chains: dict[int, list[VersionRecord]] = {}
        #: line -> highest seq ever dropped from that line's chain
        self._floor: dict[int, int] = {}
        self.records_live = 0
        self.high_water = 0
        self.evictions = 0
        self.lost = 0
        self.served = 0

    # ------------------------------------------------------------------
    # recording / trimming
    # ------------------------------------------------------------------
    def record(
        self,
        line: int,
        seq: int,
        cycle: int,
        values: dict[int, int],
        pool_line: int | None,
    ) -> list[int]:
        """Append the pre-image record of publication ``seq`` on ``line``.

        Returns the pool lines released by any per-line overflow
        eviction (the caller owns freeing them).
        """
        chain = self._chains.get(line)
        if chain is None:
            chain = self._chains[line] = []
        if chain and chain[-1].seq >= seq:
            raise ValueError(
                f"version seq must increase per line: line {line} has "
                f"seq {chain[-1].seq}, got {seq}"
            )
        chain.append(VersionRecord(seq, cycle, values, pool_line))
        self.records_live += 1
        if self.records_live > self.high_water:
            self.high_water = self.records_live
        freed: list[int] = []
        while len(chain) > self.versions_k:
            freed.extend(self._drop_oldest(line, chain))
        return freed

    def _drop_oldest(self, line: int, chain: list[VersionRecord]) -> list[int]:
        """Drop ``line``'s oldest record; returns its released pool pins."""
        dropped = chain.pop(0)
        if not chain:
            del self._chains[line]
        if dropped.seq > self._floor.get(line, 0):
            self._floor[line] = dropped.seq
        self.records_live -= 1
        self.evictions += 1
        return [dropped.pool_line] if dropped.pool_line is not None else []

    def evict_oldest(self, n: int) -> list[int]:
        """GC the ``n`` globally oldest records (by ``(seq, line)``).

        Returns the released pool lines.  Used under preserved-pool
        pressure: stale versions are sacrificed before any writer is
        doomed, which is the graceful-degradation path back to plain
        SUV behaviour.
        """
        freed: list[int] = []
        for _ in range(n):
            oldest_line = -1
            oldest_seq = -1
            for ln, chain in self._chains.items():
                head = chain[0].seq
                if oldest_line < 0 or (head, ln) < (oldest_seq, oldest_line):
                    oldest_line, oldest_seq = ln, head
            if oldest_line < 0:
                break
            freed.extend(
                self._drop_oldest(oldest_line, self._chains[oldest_line])
            )
        return freed

    def note_lost(self, line: int, seq: int) -> list[int]:
        """Record that publication ``seq``'s pre-image could not be kept.

        Raising the floor past ``seq`` makes every snapshot older than
        the lost version refuse (``"exhausted"``) instead of silently
        reading around the hole.  Returns the pool pins released by
        dropping the line's now-useless older records.
        """
        if seq > self._floor.get(line, 0):
            self._floor[line] = seq
        self.lost += 1
        # retained records at or below the new floor are useless now
        freed: list[int] = []
        chain = self._chains.get(line)
        while chain and chain[0].seq <= seq:
            freed.extend(self._drop_oldest(line, chain))
            chain = self._chains.get(line)
        return freed

    # ------------------------------------------------------------------
    # snapshot reads
    # ------------------------------------------------------------------
    def read(
        self, line: int, addr: int, snapshot_seq: int
    ) -> tuple[str, int | None]:
        """Value of ``addr`` as of publication ``snapshot_seq``.

        Returns one of::

            ("chain", value)     # recovered from a retained pre-image
            ("memory", None)     # current memory still holds it
            ("exhausted", None)  # needed history was trimmed away

        ``("memory", None)`` is a *proof*, not a guess: no retained or
        trimmed record newer than the snapshot mentions ``addr``, so no
        publication after the snapshot overwrote it.
        """
        if self._floor.get(line, 0) > snapshot_seq:
            return "exhausted", None
        for rec in self._chains.get(line, ()):
            if rec.seq > snapshot_seq and addr in rec.values:
                self.served += 1
                return "chain", rec.values[addr]
        return "memory", None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pool_lines(self) -> set[int]:
        """Pool lines currently pinned by retained records."""
        return {
            rec.pool_line
            for chain in self._chains.values()
            for rec in chain
            if rec.pool_line is not None
        }

    def chain_of(self, line: int) -> list[VersionRecord]:
        """The retained records of ``line``, oldest first (test helper)."""
        return list(self._chains.get(line, ()))

    def floor_of(self, line: int) -> int:
        return self._floor.get(line, 0)

    def iter_lines(self) -> Iterator[int]:
        return iter(self._chains)

    def stats(self) -> dict[str, int]:
        return {
            "versions_live": self.records_live,
            "versions_high_water": self.high_water,
            "version_evictions": self.evictions,
            "versions_lost": self.lost,
            "version_reads_served": self.served,
        }
