"""The two-level redirect table (paper Sections III, IV-A; Table III).

The *logical* table is a single coherent map from original line to
:class:`~repro.core.redirect_entry.RedirectEntry`.  Physically, entries
are placed in three levels:

1. a per-core, fully-associative, zero-latency **first-level table**
   (512 entries in Table III) integrated into the core pipeline;
2. a shared, set-associative **second-level table** (16 K entries,
   8 ways, 10-cycle latency);
3. a **software-managed overflow area** in main memory for entries that
   overflow both hardware levels.

Lookups probe L1 → L2 → memory and report where the entry was found so
the version manager can charge the right latency and, on a hardware
miss, decide to *speculate* with the original address (Section IV-A).
A simple MSI-style coherence is obtained for free because every level
holds references to the same entry object; invalidation traffic is not
separately charged, as in the paper ("a simple write invalidate protocol
like MSI is sufficient").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RedirectConfig
from repro.core.redirect_entry import RedirectEntry


@dataclass
class LookupResult:
    """Where a lookup found (or didn't find) an entry, and its cost."""

    entry: RedirectEntry | None
    latency: int
    level: str  # "l1", "l2", "mem", "none"


class _LruTable:
    """A fully-associative LRU table of entries keyed by original line."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: dict[int, RedirectEntry] = {}

    def get(self, orig_line: int) -> RedirectEntry | None:
        entry = self._entries.get(orig_line)
        if entry is not None:
            # dict move-to-end == LRU touch
            del self._entries[orig_line]
            self._entries[orig_line] = entry
        return entry

    def put(self, entry: RedirectEntry) -> RedirectEntry | None:
        """Insert; returns the LRU victim if the table was full."""
        self._entries.pop(entry.orig_line, None)
        victim = None
        if len(self._entries) >= self.capacity:
            victim_key = next(iter(self._entries))
            victim = self._entries.pop(victim_key)
        self._entries[entry.orig_line] = entry
        return victim

    def remove(self, orig_line: int) -> RedirectEntry | None:
        return self._entries.pop(orig_line, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, orig_line: int) -> bool:
        return orig_line in self._entries

    def values(self):
        return self._entries.values()


class _SetAssocTable:
    """The shared second-level table: set-associative over original lines."""

    def __init__(self, entries: int, ways: int) -> None:
        if entries % ways != 0:
            raise ValueError("table entries must divide by ways")
        self.n_sets = entries // ways
        self.ways = ways
        self._sets: list[dict[int, RedirectEntry]] = [
            dict() for _ in range(self.n_sets)
        ]

    def _set_of(self, orig_line: int) -> dict[int, RedirectEntry]:
        return self._sets[orig_line % self.n_sets]

    def get(self, orig_line: int) -> RedirectEntry | None:
        cset = self._set_of(orig_line)
        entry = cset.get(orig_line)
        if entry is not None:
            del cset[orig_line]
            cset[orig_line] = entry
        return entry

    def put(self, entry: RedirectEntry) -> RedirectEntry | None:
        cset = self._set_of(entry.orig_line)
        cset.pop(entry.orig_line, None)
        victim = None
        if len(cset) >= self.ways:
            victim_key = next(iter(cset))
            victim = cset.pop(victim_key)
        cset[entry.orig_line] = entry
        return victim

    def remove(self, orig_line: int) -> RedirectEntry | None:
        return self._set_of(orig_line).pop(orig_line, None)

    def __contains__(self, orig_line: int) -> bool:
        return orig_line in self._set_of(orig_line)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)


class RedirectTable:
    """The CMP-wide two-level redirect table with per-core L1 tables."""

    def __init__(self, n_cores: int, config: RedirectConfig) -> None:
        self.config = config
        self.n_cores = n_cores
        self.l1_tables = [_LruTable(config.l1_entries) for _ in range(n_cores)]
        self.l2_table = _SetAssocTable(config.l2_entries, config.l2_ways)
        self._mem: dict[int, RedirectEntry] = {}
        # statistics
        self.l1_hits = 0
        self.l1_misses = 0
        self.l2_hits = 0
        self.mem_hits = 0
        self.full_misses = 0
        self.l1_overflows = 0   # entries demoted L1 → L2
        self.l2_overflows = 0   # entries spilled L2 → memory (software)

    # ------------------------------------------------------------------
    def lookup(self, core: int, orig_line: int) -> LookupResult:
        """Probe L1 → L2 → memory for ``orig_line``'s entry."""
        cfg = self.config
        entry = self.l1_tables[core].get(orig_line)
        if entry is not None:
            self.l1_hits += 1
            return LookupResult(entry, cfg.l1_latency, "l1")
        self.l1_misses += 1
        latency = cfg.l1_latency + cfg.l2_latency
        entry = self.l2_table.get(orig_line)
        if entry is not None:
            self.l2_hits += 1
            self._promote_to_l1(core, entry)
            return LookupResult(entry, latency, "l2")
        entry = self._mem.get(orig_line)
        if entry is not None:
            self.mem_hits += 1
            latency += cfg.memory_latency + cfg.software_overhead
            del self._mem[orig_line]
            self._home_in_l2(entry)   # swap back into the hardware table
            self._promote_to_l1(core, entry)
            return LookupResult(entry, latency, "mem")
        self.full_misses += 1
        return LookupResult(None, latency, "none")

    def peek(self, orig_line: int) -> RedirectEntry | None:
        """Find an entry at any level without latency/stat side effects."""
        for tbl in self.l1_tables:
            entry = tbl._entries.get(orig_line)
            if entry is not None:
                return entry
        if orig_line in self.l2_table:
            return self.l2_table._set_of(orig_line)[orig_line]
        return self._mem.get(orig_line)

    def insert(self, core: int, entry: RedirectEntry) -> None:
        """Install an entry: the shared L2 table is the home (so every
        core's lookups can find it), the creating core's L1 table caches
        it for zero-latency access."""
        if not entry.is_free:
            self._home_in_l2(entry)
        self._promote_to_l1(core, entry)

    def remove(self, orig_line: int) -> None:
        """Drop an entry from every level (reclaimed INVALID entries)."""
        for tbl in self.l1_tables:
            tbl.remove(orig_line)
        self.l2_table.remove(orig_line)
        self._mem.pop(orig_line, None)

    # ------------------------------------------------------------------
    def _promote_to_l1(self, core: int, entry: RedirectEntry) -> None:
        victim = self.l1_tables[core].put(entry)
        if victim is not None and victim is not entry and not victim.is_free:
            # the L1 tables are caches of the L2 home: an eviction only
            # costs the zero-latency access next time
            self.l1_overflows += 1
            if victim.orig_line not in self.l2_table and (
                victim.orig_line not in self._mem
            ):
                # re-home entries whose L2 copy was displaced meanwhile
                self._home_in_l2(victim)

    def _home_in_l2(self, entry: RedirectEntry) -> None:
        victim = self.l2_table.put(entry)
        if victim is not None and victim is not entry:
            if victim.is_free:
                return
            # the second level overflowed: software swaps the victim out
            # to the in-memory structure (Section IV-A)
            self.l2_overflows += 1
            self._mem[victim.orig_line] = victim

    # ------------------------------------------------------------------
    def squeeze(
        self, l1_entries: int | None = None, l2_ways: int | None = None
    ) -> tuple[int, int]:
        """Shrink table capacity mid-run (fault injection).

        Returns ``(demoted, spilled)``: entries pushed out of the L1
        tables toward the L2 home, and entries spilled from the L2 to
        the software overflow area.  Victims follow the same demotion
        path an organic overflow takes, so the usual overflow statistics
        keep counting.
        """
        demoted = spilled = 0
        if l1_entries is not None:
            for tbl in self.l1_tables:
                tbl.capacity = max(1, l1_entries)
                while len(tbl) > tbl.capacity:
                    victim_key = next(iter(tbl._entries))
                    victim = tbl._entries.pop(victim_key)
                    demoted += 1
                    if victim.is_free:
                        continue
                    self.l1_overflows += 1
                    if (victim.orig_line not in self.l2_table
                            and victim.orig_line not in self._mem):
                        self._home_in_l2(victim)
        if l2_ways is not None:
            before = self.l2_overflows
            self.l2_table.ways = max(1, l2_ways)
            for cset in self.l2_table._sets:
                while len(cset) > self.l2_table.ways:
                    victim_key = next(iter(cset))
                    victim = cset.pop(victim_key)
                    if victim.is_free:
                        continue
                    self.l2_overflows += 1
                    self._mem[victim.orig_line] = victim
            spilled = self.l2_overflows - before
        return demoted, spilled

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def hardware_occupancy(self) -> int:
        return len(self.l2_table) + sum(len(t) for t in self.l1_tables)

    @property
    def memory_entries(self) -> int:
        return len(self._mem)

    def iter_entries(self):
        """Every entry across all placement levels, deduplicated, in a
        deterministic order (per-core L1 tables, then L2 sets, then the
        software overflow area)."""
        seen: set[int] = set()
        for tbl in self.l1_tables:
            for entry in tbl.values():
                if id(entry) not in seen:
                    seen.add(id(entry))
                    yield entry
        for cset in self.l2_table._sets:
            for entry in cset.values():
                if id(entry) not in seen:
                    seen.add(id(entry))
                    yield entry
        for entry in self._mem.values():
            if id(entry) not in seen:
                seen.add(id(entry))
                yield entry

    def iter_live_lines(self):
        """Original lines of every non-free entry, at any level.

        This is the set a summary-signature rebuild must cover: a
        transient entry steers accesses for its owner *and* may revert
        to globally ``VALID`` when its transaction aborts (the
        redirect-back path), so dropping its bits would turn the
        filter's one guarantee — no false negatives — into a lie.
        """
        seen: set[int] = set()
        for entry in self.iter_entries():
            if not entry.is_free and entry.orig_line not in seen:
                seen.add(entry.orig_line)
                yield entry.orig_line

    def iter_valid_lines(self):
        """Original lines of every globally-valid entry; deduplicated
        across placement levels (introspection/debugging helper)."""
        seen: set[int] = set()
        for tbl in self.l1_tables:
            for entry in tbl.values():
                if entry.state.value == (1, 1) and entry.orig_line not in seen:
                    seen.add(entry.orig_line)
                    yield entry.orig_line
        for cset in self.l2_table._sets:
            for entry in cset.values():
                if entry.state.value == (1, 1) and entry.orig_line not in seen:
                    seen.add(entry.orig_line)
                    yield entry.orig_line
        # VALID entries swapped out to the software overflow area are
        # still globally live: omitting them from a summary rebuild
        # would produce false *negatives* — accesses silently bypassing
        # a committed redirection (stale reads, duplicated entries,
        # leaked pool lines)
        for entry in self._mem.values():
            if entry.state.value == (1, 1) and entry.orig_line not in seen:
                seen.add(entry.orig_line)
                yield entry.orig_line
        for entry in self._mem.values():
            if entry.state.value == (1, 1) and entry.orig_line not in seen:
                seen.add(entry.orig_line)
                yield entry.orig_line

    def stats(self) -> dict[str, float]:
        return {
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l1_miss_rate": self.l1_miss_rate,
            "l2_hits": self.l2_hits,
            "mem_hits": self.mem_hits,
            "full_misses": self.full_misses,
            "l1_overflows": self.l1_overflows,
            "l2_overflows": self.l2_overflows,
        }
