"""The preserved redirect pool (paper Section III/IV-A).

SUV-TM redirects transactional stores into a reserved region of physical
memory.  Pages are allocated on demand; a redirect-entry pointer tracks
the next free slot, and lines freed by the redirect-back optimization are
recycled.  The pool lives at a fixed physical base so pool lines never
collide with application data.

The pool can be **bounded** (``max_pages``): once the cap is reached and
the free list is empty, :meth:`allocate_line` raises
:class:`~repro.errors.PoolExhausted`.  SUV converts that into a
transaction abort with backoff — resource exhaustion degrades throughput
instead of growing the pool without limit.  ``high_water`` records the
maximum number of simultaneously-live lines, making pool pressure
observable in scheme statistics.
"""

from __future__ import annotations

from repro.config import LINE_BYTES
from repro.errors import PoolExhausted


class PreservedPool:
    """On-demand paged allocator of redirected cache lines."""

    def __init__(
        self, base_addr: int, page_bytes: int, max_pages: int = 0
    ) -> None:
        if base_addr % page_bytes != 0:
            raise ValueError("pool base must be page-aligned")
        if page_bytes % LINE_BYTES != 0:
            raise ValueError("page size must be a whole number of lines")
        self.base_line = base_addr // LINE_BYTES
        self.lines_per_page = page_bytes // LINE_BYTES
        #: page cap; 0 = unbounded (the paper's assumption)
        self.max_pages = max_pages
        self._next_offset = 0          # bump pointer, in lines
        self._free: list[int] = []     # recycled pool lines (LIFO)
        self._live: set[int] = set()   # currently-allocated lines
        self.pages_allocated = 0
        self.allocations = 0
        self.frees = 0
        self.exhaustions = 0
        self.high_water = 0

    def allocate_line(self) -> int:
        """A free pool line (recycles freed lines before growing).

        Raises :class:`PoolExhausted` when growing would exceed
        ``max_pages`` and nothing is left to recycle.
        """
        if self._free:
            line = self._free.pop()
        else:
            if self._next_offset % self.lines_per_page == 0:
                # crossing into a fresh page: the hardware allocates it
                # and installs the mapping in the TLB (paper:
                # "automatically allocates a page in the preserved
                # redirect pool")
                if self.max_pages and self.pages_allocated >= self.max_pages:
                    self.exhaustions += 1
                    raise PoolExhausted(
                        f"preserved pool exhausted: {self.pages_allocated} "
                        f"pages allocated (cap {self.max_pages}), "
                        "free list empty",
                        max_pages=self.max_pages,
                        live_lines=self.live_lines,
                    )
                self.pages_allocated += 1
            line = self.base_line + self._next_offset
            self._next_offset += 1
        self.allocations += 1
        self._live.add(line)
        self.high_water = max(self.high_water, len(self._live))
        return line

    def free_line(self, line: int) -> None:
        """Return a pool line for reuse (redirect-back reclamation).

        Rejects lines outside the pool and lines that are not currently
        live — a double free would put the line on the free list twice
        and hand the same line to two redirect entries.
        """
        if not self._in_range(line):
            raise ValueError(f"line {line:#x} is not a pool line")
        if line not in self._live:
            raise ValueError(
                f"double free of pool line {line:#x} (already on the "
                "free list)"
            )
        self.frees += 1
        self._live.remove(line)
        self._free.append(line)

    def _in_range(self, line: int) -> bool:
        return self.base_line <= line < self.base_line + self._next_offset

    def contains_line(self, line: int) -> bool:
        """Is ``line`` a currently-allocated (live) pool line?

        Lines sitting on the free list are *not* contained: answering
        True for them let a double ``free_line`` silently corrupt
        recycling.  Use :meth:`_in_range` semantics via ``base_line``
        arithmetic if mere address-range membership is wanted.
        """
        return self._in_range(line) and line in self._live

    def tlb_index_of(self, line: int) -> int:
        """Index of the pool page holding ``line`` (the Figure 3 TLB clue)."""
        return (line - self.base_line) // self.lines_per_page

    def page_offset_of(self, line: int) -> int:
        """In-page line offset (the Figure 3 7-bit offset)."""
        return (line - self.base_line) % self.lines_per_page

    @property
    def live_lines(self) -> int:
        return len(self._live)
