"""The preserved redirect pool (paper Section III/IV-A).

SUV-TM redirects transactional stores into a reserved region of physical
memory.  Pages are allocated on demand; a redirect-entry pointer tracks
the next free slot, and lines freed by the redirect-back optimization are
recycled.  The pool lives at a fixed physical base so pool lines never
collide with application data.
"""

from __future__ import annotations

from repro.config import LINE_BYTES


class PreservedPool:
    """On-demand paged allocator of redirected cache lines."""

    def __init__(self, base_addr: int, page_bytes: int) -> None:
        if base_addr % page_bytes != 0:
            raise ValueError("pool base must be page-aligned")
        if page_bytes % LINE_BYTES != 0:
            raise ValueError("page size must be a whole number of lines")
        self.base_line = base_addr // LINE_BYTES
        self.lines_per_page = page_bytes // LINE_BYTES
        self._next_offset = 0          # bump pointer, in lines
        self._free: list[int] = []     # recycled pool lines (LIFO)
        self.pages_allocated = 0
        self.allocations = 0
        self.frees = 0

    def allocate_line(self) -> int:
        """A free pool line (recycles freed lines before growing)."""
        self.allocations += 1
        if self._free:
            return self._free.pop()
        if self._next_offset % self.lines_per_page == 0:
            # crossing into a fresh page: the hardware allocates it and
            # installs the mapping in the TLB (paper: "automatically
            # allocates a page in the preserved redirect pool")
            self.pages_allocated += 1
        line = self.base_line + self._next_offset
        self._next_offset += 1
        return line

    def free_line(self, line: int) -> None:
        """Return a pool line for reuse (redirect-back reclamation)."""
        if not self.contains_line(line):
            raise ValueError(f"line {line:#x} is not a pool line")
        self.frees += 1
        self._free.append(line)

    def contains_line(self, line: int) -> bool:
        return self.base_line <= line < self.base_line + self._next_offset

    def tlb_index_of(self, line: int) -> int:
        """Index of the pool page holding ``line`` (the Figure 3 TLB clue)."""
        return (line - self.base_line) // self.lines_per_page

    def page_offset_of(self, line: int) -> int:
        """In-page line offset (the Figure 3 7-bit offset)."""
        return (line - self.base_line) % self.lines_per_page

    @property
    def live_lines(self) -> int:
        return self._next_offset - len(self._free)
