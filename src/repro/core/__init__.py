"""The paper's contribution: SUV single-update version management.

This package implements the hardware structures of Sections III and IV:

* :mod:`repro.core.redirect_entry` — the redirect entry and its four
  states (Table II), including the bit-level first-level encoding of
  Figure 3.
* :mod:`repro.core.preserved_pool` — the reserved memory pool that new
  values are redirected into, with on-demand page allocation.
* :mod:`repro.core.redirect_table` — the two-level redirect table
  (per-core zero-latency fully-associative L1 table, shared 8-way L2
  table, software-managed memory overflow area).
* :mod:`repro.core.summary` — the redirect summary signature that
  filters table lookups off the critical path (Figure 5).

The :class:`repro.htm.vm.suv.SUV` version manager wires these into the
HTM engine.
"""

from repro.core.preserved_pool import PreservedPool
from repro.core.redirect_entry import EntryState, RedirectEntry
from repro.core.redirect_table import LookupResult, RedirectTable
from repro.core.summary import RedirectSummaryFilter

__all__ = [
    "EntryState",
    "LookupResult",
    "PreservedPool",
    "RedirectEntry",
    "RedirectSummaryFilter",
    "RedirectTable",
]
