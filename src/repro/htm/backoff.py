"""Randomized exponential backoff after transaction aborts."""

from __future__ import annotations

import numpy as np

from repro.config import HTMConfig


class BackoffPolicy:
    """Exponential backoff with jitter, capped, per-core deterministic."""

    def __init__(self, config: HTMConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng

    def delay(self, consecutive_aborts: int) -> int:
        """Backoff cycles after the n-th consecutive abort (n >= 1)."""
        if consecutive_aborts <= 0:
            return 0
        window = self.config.backoff_base << min(consecutive_aborts - 1, 16)
        window = min(window, self.config.backoff_cap)
        # uniform jitter over [window/2, window]
        lo = max(1, window // 2)
        return int(self._rng.integers(lo, window + 1))
