"""The operation protocol between programs and the simulator.

A *thread* is a generator yielding these operations; the simulator
advances it, charging simulated time, and sends back the value of each
:class:`Read`.  A :class:`Tx` wraps a *body factory*: a zero-argument
callable returning a fresh generator over the same protocol.  Retrying
an aborted transaction re-invokes the factory — the architectural
equivalent of restoring the register checkpoint taken at ``begin``.

Example::

    def thread(tid, mem):
        def body():
            v = yield Read(mem.counter)
            yield Work(20)
            yield Write(mem.counter, v + 1)
        yield Work(100)           # non-transactional
        yield Tx(body, site=1)    # transactional; retried on abort
        yield Barrier(0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator


@dataclass(frozen=True, slots=True)
class Work:
    """Compute for ``cycles`` without touching memory."""

    cycles: int


@dataclass(frozen=True, slots=True)
class Read:
    """Load the 8-byte word at ``addr``; its value is sent back."""

    addr: int


@dataclass(frozen=True, slots=True)
class Write:
    """Store ``value`` to the 8-byte word at ``addr``."""

    addr: int
    value: int


@dataclass(frozen=True, slots=True)
class Tx:
    """Run ``body()`` as a transaction (nested if yielded inside one).

    ``site`` identifies the static transaction site, used by DynTM's
    history-based mode selector.  ``read_only`` declares the body free
    of transactional stores; under a multiversioned scheme
    (``vm=mvsuv``) a declared read-only transaction runs as a snapshot
    reader that never joins the conflict graph.  Other schemes ignore
    the flag.  A declared-read-only body that stores anyway is aborted
    and demoted to an ordinary (conflict-detected) transaction.
    """

    body: Callable[[], Generator]
    site: int = 0
    read_only: bool = False


@dataclass(frozen=True, slots=True)
class OpenTx:
    """Run ``body()`` as an *open-nested* transaction (paper §IV-C).

    When an open-nested transaction commits, its writes publish
    immediately and its isolation is released — freeing conflicting
    threads before the enclosing transaction ends.  If the enclosing
    transaction later aborts, the registered ``compensate`` body runs
    (atomically, as a prologue of the parent's retry) to logically undo
    the published effects.
    """

    body: Callable[[], Generator]
    compensate: Callable[[], Generator] | None = None
    site: int = 0


@dataclass(frozen=True, slots=True)
class Barrier:
    """Block until every live thread reaches barrier ``bid``."""

    bid: int


Op = Work | Read | Write | Tx | OpenTx | Barrier
