"""The four composable policy axes of an HTM scheme.

The paper frames SUV as one point in a *design space* of version-
management choices (Section II's taxonomy).  This module makes that
space first-class: a scheme is no longer one monolithic
:class:`~repro.htm.vm.base.VersionManager` class but a composition of
four independent axes, mirroring the parameterization of the gem5/
Murcia HTM model (``lazy_vm`` / lazy conflict detection / resolution
policy as independent config knobs):

``vm`` — *where speculative bytes live*
    ``undo`` (LogTM-SE: in place + undo log), ``flash`` (FasTM: new
    values pinned in L1), ``redirect`` (SUV: redirect table + preserved
    pool), ``buffer`` (TCC-style redo-in-L1), ``mvsuv`` (multiversioned
    SUV: redirect table + bounded per-line version chains serving
    snapshot reads to read-only transactions).

``cd`` — *when conflicts are detected*
    ``eager`` (per access, via coherence + signatures), ``lazy``
    (invisible until a validating commit), ``adaptive`` (DynTM's
    history-based per-site selector between the two).

``resolution`` — *who yields on an eager conflict*
    ``stall`` (requester waits; wait-for cycles abort the youngest),
    ``abort_requester`` (requester partially aborts), ``abort_responder``
    (the paper's alternative: the holder aborts), ``timestamp``
    (older transaction wins, younger aborts — livelock-free by age),
    ``polite`` (exponential-backoff stalling, then the holder yields),
    ``greedy`` (the Greedy contention manager: timestamp seniority with
    waiting holders abortable — starvation-free), ``karma`` (accumulated
    work as priority, retained and incremented across aborts).

``arbitration`` — *how lazy commits serialize*
    ``serial`` (one global commit token, TCC-style) or ``widthN``
    (``width2``, ``width4``, ...: up to N non-conflicting lazy
    transactions may be between validation and publication at once).

Every class here is a small, fully-typed policy object; the
:class:`~repro.htm.vm.composed.ComposedVM` wrapper and the simulator
consume them without ``Any`` at the seams.  Legality of a combination
is a physical property, not a registry accident —
:meth:`SchemeComposition.check` rejects impossible crossings with a
typed :class:`~repro.errors.IncompatiblePolicyError` carrying the
reason.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING, ClassVar, Iterator, Mapping

from repro.errors import IncompatiblePolicyError, UnknownSchemeError

if TYPE_CHECKING:  # only for annotations; simulator imports us at runtime
    from repro.htm.transaction import TxFrame
    from repro.simulator import Simulator, _Core

# ---------------------------------------------------------------------------
# axis value spaces
# ---------------------------------------------------------------------------

#: version-management axis: where speculative bytes live
VM_AXIS: tuple[str, ...] = ("undo", "flash", "redirect", "buffer", "mvsuv")
#: conflict-detection axis: when conflicts are detected
CD_AXIS: tuple[str, ...] = ("eager", "lazy", "adaptive")
#: resolution axis: who yields on an eager conflict
RESOLUTION_AXIS: tuple[str, ...] = (
    "stall", "abort_requester", "abort_responder", "timestamp",
    "polite", "greedy", "karma",
)
#: arbitration axis values enumerated by the registry; ``parse_width``
#: accepts any ``widthN`` with N >= 2 beyond these
ARBITRATION_AXIS: tuple[str, ...] = ("serial", "width2", "width4")

#: the six canonical scheme names mapped onto their (vm, cd) axes; the
#: resolution and arbitration axes of a canonical scheme come from
#: ``HTMConfig`` (default stall + serial)
CANONICAL_AXES: Mapping[str, tuple[str, str]] = {
    "logtm-se": ("undo", "eager"),
    "fastm": ("flash", "eager"),
    "suv": ("redirect", "eager"),
    "lazy": ("buffer", "eager"),
    "dyntm": ("flash", "adaptive"),
    "dyntm+suv": ("redirect", "adaptive"),
    "mvsuv": ("mvsuv", "eager"),
}


def parse_width(arbitration: str) -> int:
    """Commit width of an arbitration axis value (``serial`` = 1)."""
    if arbitration == "serial":
        return 1
    if arbitration.startswith("width"):
        digits = arbitration[len("width"):]
        if digits.isdigit() and int(digits) >= 2:
            return int(digits)
    raise IncompatiblePolicyError(
        "bad arbitration axis value",
        axes={"arbitration": arbitration},
        reason="expected 'serial' or 'widthN' with N >= 2",
    )


def _normalize_axis(value: str) -> str:
    return value.strip().lower().replace("-", "_")


# ---------------------------------------------------------------------------
# the composition value
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SchemeComposition:
    """One point of the four-axis design space, as a hashable value."""

    vm: str = "redirect"
    cd: str = "eager"
    resolution: str = "stall"
    arbitration: str = "serial"

    @property
    def name(self) -> str:
        """The canonical composed scheme name, ``vm+cd+resolution+arb``."""
        return f"{self.vm}+{self.cd}+{self.resolution}+{self.arbitration}"

    def as_dict(self) -> dict[str, str]:
        return {
            "vm": self.vm,
            "cd": self.cd,
            "resolution": self.resolution,
            "arbitration": self.arbitration,
        }

    # -- legality -------------------------------------------------------
    def illegal_reason(self) -> str | None:
        """Why this combination is physically impossible, or ``None``."""
        if self.vm not in VM_AXIS:
            return f"unknown vm axis value (choose from {', '.join(VM_AXIS)})"
        if self.cd not in CD_AXIS:
            return f"unknown cd axis value (choose from {', '.join(CD_AXIS)})"
        if self.resolution not in RESOLUTION_AXIS:
            return (
                "unknown resolution axis value "
                f"(choose from {', '.join(RESOLUTION_AXIS)})"
            )
        try:
            width = parse_width(self.arbitration)
        except IncompatiblePolicyError as exc:
            return exc.reason
        if self.cd == "lazy" and self.vm in ("undo", "flash"):
            return (
                f"{self.vm} version management updates lines the coherence "
                "protocol can see (in-place undo log / L1 write ownership), "
                "so the transaction cannot stay invisible until commit as "
                "lazy conflict detection requires"
            )
        if self.cd == "adaptive" and self.vm == "buffer":
            return (
                "adaptive detection exists to escape lazy buffering when the "
                "L1 overflows, but a buffer VM still buffers in eager mode — "
                "the adaptation would have no overflow-tolerant fallback"
            )
        if self.vm == "mvsuv" and self.cd != "eager":
            return (
                "mvsuv snapshots are stamped by the order in which writers "
                "publish through the redirect table, which only eager "
                "detection pins at access time; under lazy or adaptive "
                "detection a writer's publication point is not known until "
                "commit arbitration, so a concurrent snapshot reader could "
                "not be given a consistent version timestamp"
            )
        if self.cd == "eager" and width != 1:
            return (
                "commit width only arbitrates lazy commits; under eager "
                "detection no transaction takes the arbitrated commit path, "
                "so a non-serial width would silently mean nothing"
            )
        return None

    def check(self) -> "SchemeComposition":
        """Validate; returns self or raises :class:`IncompatiblePolicyError`."""
        reason = self.illegal_reason()
        if reason is not None:
            raise IncompatiblePolicyError(
                "illegal policy composition", axes=self.as_dict(), reason=reason
            )
        return self

    @property
    def is_legal(self) -> bool:
        return self.illegal_reason() is None

    # -- parsing --------------------------------------------------------
    @classmethod
    def parse(cls, name: str) -> "SchemeComposition | None":
        """Parse a composed scheme name; ``None`` if not composition-shaped.

        A composed name has exactly four ``+``-separated axis tokens
        (which keeps two-token canonical names like ``dyntm+suv`` out of
        this path).  Returns the composition *unchecked* — callers
        decide between :meth:`check` and :attr:`is_legal`.
        """
        parts = [_normalize_axis(p) for p in name.split("+")]
        if len(parts) != 4 or not all(parts):
            return None
        return cls(vm=parts[0], cd=parts[1],
                   resolution=parts[2], arbitration=parts[3])

    @classmethod
    def from_value(
        cls, value: "str | Mapping[str, str] | SchemeComposition"
    ) -> "SchemeComposition":
        """Coerce a name, axes mapping, or composition to a checked value."""
        if isinstance(value, SchemeComposition):
            return value.check()
        if isinstance(value, Mapping):
            known = {"vm", "cd", "resolution", "arbitration"}
            unknown = set(value) - known
            if unknown:
                raise IncompatiblePolicyError(
                    "unknown policy axis",
                    axes={k: str(value[k]) for k in sorted(unknown)},
                    reason=f"axes are {', '.join(sorted(known))}",
                )
            return cls(
                **{k: _normalize_axis(str(v)) for k, v in value.items()}
            ).check()
        comp = cls.parse(value)
        if comp is None:
            raise UnknownSchemeError(
                f"{value!r} is not a composed scheme name "
                "(expected vm+cd+resolution+arbitration)",
                name=value,
            )
        return comp.check()


def compose_scheme(
    vm: str = "redirect",
    cd: str = "eager",
    resolution: str = "stall",
    arbitration: str = "serial",
) -> str:
    """The canonical composed scheme name for the given axes.

    Validates legality (raising :class:`IncompatiblePolicyError` with
    the physical reason) and normalizes spelling, so the returned name
    is stable enough to use as a cache key or spec field::

        >>> compose_scheme(vm="redirect", cd="lazy")
        'redirect+lazy+stall+serial'
    """
    return SchemeComposition(
        vm=_normalize_axis(vm),
        cd=_normalize_axis(cd),
        resolution=_normalize_axis(resolution),
        arbitration=_normalize_axis(arbitration),
    ).check().name


def iter_scheme_space() -> Iterator[SchemeComposition]:
    """Every enumerable axis combination, legal or not, in axis order."""
    for vm, cd, resolution, arbitration in product(
        VM_AXIS, CD_AXIS, RESOLUTION_AXIS, ARBITRATION_AXIS
    ):
        yield SchemeComposition(vm, cd, resolution, arbitration)


def legal_combinations() -> tuple[SchemeComposition, ...]:
    """The legal subset of :func:`iter_scheme_space`, in axis order."""
    return tuple(c for c in iter_scheme_space() if c.is_legal)


# ---------------------------------------------------------------------------
# conflict-detection policies (the ``cd`` axis)
# ---------------------------------------------------------------------------

class ConflictDetection(ABC):
    """When conflicts are detected: chooses each attempt's execution mode."""

    name: ClassVar[str] = "abstract"

    @abstractmethod
    def mode_for(self, site: int) -> str:
        """``"eager"`` or ``"lazy"`` for a new outermost attempt at ``site``."""

    def note_outcome(self, frame: "TxFrame", committed: bool) -> None:
        """Outcome feedback (only the adaptive policy learns from it)."""


class EagerCD(ConflictDetection):
    """Detect on every access via coherence + signatures (LogTM-style)."""

    name = "eager"

    def mode_for(self, site: int) -> str:
        return "eager"


class LazyCD(ConflictDetection):
    """Stay invisible until a validating, arbitrated commit (TCC-style)."""

    name = "lazy"

    def mode_for(self, site: int) -> str:
        return "lazy"


class AdaptiveCD(ConflictDetection):
    """DynTM's history-based per-site eager/lazy selector.

    One saturating counter per static transaction site drifts toward
    lazy when eager attempts keep aborting and back toward eager when
    lazy runs overflow the L1 or pay heavy commit merges — the exact
    update rules of :class:`~repro.htm.vm.dyntm.DynTM`.
    """

    name = "adaptive"

    def __init__(self, counter_bits: int, lazy_threshold: int) -> None:
        self._counters: dict[int, int] = {}
        self._max = (1 << counter_bits) - 1
        self._threshold = lazy_threshold

    def mode_for(self, site: int) -> str:
        if self._counters.get(site, 0) >= self._threshold:
            return "lazy"
        return "eager"

    def note_outcome(self, frame: "TxFrame", committed: bool) -> None:
        site = frame.site
        c = self._counters.get(site, 0)
        if frame.mode == "eager":
            if not committed:
                # eager aborts are expensive; drift toward lazy
                self._counters[site] = min(self._max, c + 1)
        else:
            if frame.vm.get("must_abort") == "overflow":
                # lazy cannot hold the write set: force eager
                self._counters[site] = 0
            elif committed and len(frame.vm.get("spec_lines", ())) > 32:
                # heavy merge: eager would commit for free
                self._counters[site] = max(0, c - 1)


def make_conflict_detection(
    name: str, counter_bits: int = 2, lazy_threshold: int = 2
) -> ConflictDetection:
    """Build a conflict-detection policy by axis value."""
    if name == "eager":
        return EagerCD()
    if name == "lazy":
        return LazyCD()
    if name == "adaptive":
        return AdaptiveCD(counter_bits, lazy_threshold)
    raise UnknownSchemeError(
        f"unknown conflict-detection policy {name!r}",
        name=name, suggestions=CD_AXIS,
    )


# ---------------------------------------------------------------------------
# resolution policies (the ``resolution`` axis)
# ---------------------------------------------------------------------------

class ConflictResolution(ABC):
    """Who yields when an eager conflict is found.

    ``resolve`` runs with the requester ``core`` about to retry ``op``
    against the transaction mounted on ``holder_idx``; it must leave the
    requester either stalled, aborting, or scheduled to retry.  The
    policies drive the simulator through its stall/doom/abort machinery
    — they own the *decision*, the simulator owns the *mechanics*.
    """

    name: ClassVar[str] = "abstract"

    @abstractmethod
    def resolve(
        self, sim: "Simulator", core: "_Core", holder_idx: int, op: object
    ) -> None:
        """Resolve one requester-vs-holder conflict."""


class StallResolution(ConflictResolution):
    """Requester stalls; wait-for cycles abort the youngest transaction.

    The paper's default Stall policy: the conflicting requester waits
    for the holder, and a closed wait-for cycle is broken by aborting
    the youngest transaction on it (which then backs off and retries).
    """

    name = "stall"

    def resolve(
        self, sim: "Simulator", core: "_Core", holder_idx: int, op: object
    ) -> None:
        cycle = sim._wait_cycle(core.idx, holder_idx)
        if cycle:
            victim_idx = sim._youngest(cycle)
            if victim_idx == core.idx:
                core.doomed_depth = 0
                sim._begin_abort(core)
                return
            sim._doom(victim_idx, 0)
        sim._stall_on(core, holder_idx, op)


class AbortRequesterResolution(ConflictResolution):
    """Requester immediately (partially) aborts and retries.

    The conflicting access belongs to the innermost frame, so a partial
    abort of that level suffices (LogTM-Nested): outer levels keep
    their work and the inner body re-executes.
    """

    name = "abort_requester"

    def resolve(
        self, sim: "Simulator", core: "_Core", holder_idx: int, op: object
    ) -> None:
        core.doomed_depth = len(core.frames) - 1
        sim._begin_abort(core)


class AbortResponderResolution(ConflictResolution):
    """The holder aborts so the requester is guaranteed to run.

    The paper's alternative: "make the receiving core ... abort its
    transaction to guarantee the execution of the requester's
    transaction"; the requester waits out the holder's (brief) abort
    processing.
    """

    name = "abort_responder"

    def resolve(
        self, sim: "Simulator", core: "_Core", holder_idx: int, op: object
    ) -> None:
        sim._doom(holder_idx, 0)
        sim._stall_on(core, holder_idx, op)


class TimestampResolution(ConflictResolution):
    """Age-based: the older transaction wins, the younger yields.

    A greedy timestamp contention manager: an older requester dooms the
    younger holder and waits out its abort; a younger requester aborts
    itself (full abort with backoff).  Wait-for edges only ever point
    from older to younger transactions, so no cycle — and therefore no
    deadlock or livelock — can form.
    """

    name = "timestamp"

    def resolve(
        self, sim: "Simulator", core: "_Core", holder_idx: int, op: object
    ) -> None:
        holder = sim.cores[holder_idx]
        if holder.ctx is None or not holder.frames:
            # the holder finished in the meantime: retry immediately
            core.pending_op = op
            sim._resume_retry(core, 0)
            return
        mine = (core.frames[0].timestamp, core.ctx.tid)
        theirs = (holder.frames[0].timestamp, holder.ctx.tid)
        if mine < theirs:
            sim._doom(holder_idx, 0)
            sim._stall_on(core, holder_idx, op)
        else:
            core.doomed_depth = 0
            sim._begin_abort(core)


class _EpisodeTracking:
    """Per-requester conflict-episode counters for contention managers.

    An *episode* is one requester repeatedly re-resolving the same
    conflict (same holder, same address, same attempt of its outermost
    frame); the stall-retry machinery re-invokes ``resolve`` each time
    the conflict persists.  Counters live on the policy object, which is
    per-:class:`~repro.simulator.Simulator`, so runs stay deterministic
    and independent.
    """

    def __init__(self) -> None:
        self._episodes: dict[int, tuple[tuple[int, int, int], int]] = {}

    def _tries(self, core: "_Core", holder_idx: int, op: object) -> int:
        """Consecutive resolves of this episode, starting at 1."""
        key = (
            holder_idx,
            getattr(op, "addr", -1),
            core.frames[0].attempt if core.frames else -1,
        )
        prev_key, count = self._episodes.get(core.idx, (None, 0))
        count = count + 1 if prev_key == key else 1
        self._episodes[core.idx] = (key, count)
        return count

    def _forget(self, core: "_Core") -> None:
        self._episodes.pop(core.idx, None)


class PoliteResolution(_EpisodeTracking, ConflictResolution):
    """Exponential-backoff stalling, then the obstructing holder yields.

    The Polite contention manager of Scherer & Scott: the requester
    backs off politely — each re-encounter of the same conflict doubles
    its stall-retry period (capped by ``htm.backoff_cap``) — and only
    after ``patience`` rounds does it lose its temper and abort the
    holder.  Wait-for cycles are broken like the Stall policy's, by
    aborting the youngest transaction on the cycle.
    """

    name = "polite"

    #: backed-off rounds before the requester aborts the holder
    patience: ClassVar[int] = 8

    def resolve(
        self, sim: "Simulator", core: "_Core", holder_idx: int, op: object
    ) -> None:
        holder = sim.cores[holder_idx]
        if holder.ctx is None or not holder.frames:
            self._forget(core)
            core.pending_op = op
            sim._resume_retry(core, 0)
            return
        cycle = sim._wait_cycle(core.idx, holder_idx)
        if cycle:
            victim_idx = sim._youngest(cycle)
            if victim_idx == core.idx:
                self._forget(core)
                core.doomed_depth = 0
                sim._begin_abort(core)
                return
            sim._doom(victim_idx, 0)
        tries = self._tries(core, holder_idx, op)
        if tries > self.patience:
            # patience exhausted: the holder yields (and its abort
            # processing is waited out, as under abort_responder)
            self._forget(core)
            sim._doom(holder_idx, 0)
            sim._stall_on(core, holder_idx, op)
            return
        base = sim.config.htm.stall_retry_period
        period = min(base << (tries - 1), sim.config.htm.backoff_cap)
        sim._stall_on(core, holder_idx, op, period=period)


class GreedyResolution(ConflictResolution):
    """The Greedy contention manager: seniority wins, waiters yield.

    Guerraoui/Herlihy/Pochon's Greedy manager, the classic
    starvation-freedom result (cf. arXiv 1904.03700's use of it for
    multi-version STM): every transaction carries the begin timestamp
    of its *first* attempt (kept across retries).  On a conflict the
    requester aborts the holder if the holder is younger **or** is
    itself waiting; otherwise the requester waits.  A transaction never
    self-aborts on conflict, and the oldest live transaction can lose
    to no one, so every transaction eventually becomes oldest and
    commits — no doom loop, no livelock.
    """

    name = "greedy"

    def resolve(
        self, sim: "Simulator", core: "_Core", holder_idx: int, op: object
    ) -> None:
        holder = sim.cores[holder_idx]
        if holder.ctx is None or not holder.frames:
            core.pending_op = op
            sim._resume_retry(core, 0)
            return
        mine = (core.frames[0].timestamp, core.ctx.tid)
        theirs = (holder.frames[0].timestamp, holder.ctx.tid)
        # "stalled" = the holder is itself waiting on a third party
        # (simulator status constant; literal to avoid an import cycle).
        # A winner waiting out its victim's abort processing is *not*
        # waiting in Greedy's sense — it already won that conflict and
        # is about to run; treating it as abortable would let younger
        # transactions doom the oldest one and break the
        # starvation-freedom argument.
        waiting = holder.status == "stalled"
        if waiting and holder.waiting_on is not None:
            victim = sim.cores[holder.waiting_on]
            if victim.status == "aborting" or victim.doomed_depth is not None:
                waiting = False
        if theirs > mine or waiting:
            sim._doom(holder_idx, 0)
        sim._stall_on(core, holder_idx, op)


class KarmaResolution(_EpisodeTracking, ConflictResolution):
    """Accumulated-work priority with increment-on-abort.

    The Karma contention manager: a transaction's priority is the work
    it has invested — the lines in its read/write sets — plus a
    seniority credit for every abort it has already suffered (the
    outermost frame's attempt counter, which survives
    ``reset_for_retry``).  Crucially, invested work is *retained across
    aborts*: the read/write sets clear on retry, but the karma they
    earned is banked per transaction (keyed by the outermost begin
    timestamp, which retries keep), so a repeatedly-victimized big
    transaction keeps outranking the small ones that doomed it.  A
    higher-karma requester aborts the holder; a lower-karma requester
    backs off and retries, but each retry of the same episode earns one
    karma, so it attacks once its retries have made up the difference —
    bounded waiting, no starvation.
    """

    name = "karma"

    #: karma credited per suffered abort of the outermost frame
    abort_credit: ClassVar[int] = 4

    def __init__(self) -> None:
        super().__init__()
        #: core.idx -> ((tid, tx timestamp), banked work high-water);
        #: the key changes when the core starts a *new* transaction,
        #: which resets the bank — commits need no explicit hook
        self._bank: dict[int, tuple[tuple[int, int], int]] = {}

    def _karma(self, core_idx: int, tid: int,
               frames: "list[TxFrame]") -> int:
        work = sum(len(f.read_lines) + len(f.write_lines) for f in frames)
        key = (tid, frames[0].timestamp)
        prev_key, banked = self._bank.get(core_idx, (None, 0))
        if prev_key != key:
            banked = 0
        banked = max(banked, work)
        self._bank[core_idx] = (key, banked)
        return banked + self.abort_credit * frames[0].attempt

    def resolve(
        self, sim: "Simulator", core: "_Core", holder_idx: int, op: object
    ) -> None:
        holder = sim.cores[holder_idx]
        if holder.ctx is None or not holder.frames:
            self._forget(core)
            core.pending_op = op
            sim._resume_retry(core, 0)
            return
        cycle = sim._wait_cycle(core.idx, holder_idx)
        if cycle:
            victim_idx = sim._youngest(cycle)
            if victim_idx == core.idx:
                self._forget(core)
                core.doomed_depth = 0
                sim._begin_abort(core)
                return
            sim._doom(victim_idx, 0)
        mine = self._karma(core.idx, core.ctx.tid, core.frames)
        theirs = self._karma(holder.idx, holder.ctx.tid, holder.frames)
        tries = self._tries(core, holder_idx, op)
        older = (
            (core.frames[0].timestamp, core.ctx.tid)
            < (holder.frames[0].timestamp, holder.ctx.tid)
        )
        wins = mine > theirs or (mine == theirs and older)
        if wins or tries > max(0, theirs - mine):
            # enough karma (or enough patient retries to cover the
            # difference): the holder yields
            self._forget(core)
            sim._doom(holder_idx, 0)
        sim._stall_on(core, holder_idx, op)


_RESOLUTIONS: Mapping[str, type[ConflictResolution]] = {
    cls.name: cls
    for cls in (
        StallResolution,
        AbortRequesterResolution,
        AbortResponderResolution,
        TimestampResolution,
        PoliteResolution,
        GreedyResolution,
        KarmaResolution,
    )
}


def make_resolution(name: str) -> ConflictResolution:
    """Build a resolution policy by axis value.

    Unknown values raise :class:`~repro.errors.UnknownSchemeError` with
    difflib near-miss suggestions, so ``greedy``/``karma``/``polite``
    typos (``greedey``, ``carma``, ``polit`` ...) point at the intended
    policy instead of dumping the whole axis.
    """
    cls = _RESOLUTIONS.get(_normalize_axis(name))
    if cls is None:
        import difflib

        suggestions = difflib.get_close_matches(
            _normalize_axis(name), RESOLUTION_AXIS, n=3, cutoff=0.6
        ) or RESOLUTION_AXIS
        raise UnknownSchemeError(
            f"unknown conflict-resolution policy {name!r} "
            f"(axis values: {', '.join(RESOLUTION_AXIS)})",
            name=name, suggestions=suggestions,
        )
    return cls()


# ---------------------------------------------------------------------------
# commit-arbitration policies (the ``arbitration`` axis)
# ---------------------------------------------------------------------------

class CommitArbitration(ABC):
    """How lazy commits serialize between validation and publication."""

    #: instance attribute (not ClassVar): width arbitration names itself
    name: str = "abstract"

    @abstractmethod
    def blocking(self, requester: int) -> int | None:
        """Core index the requester must wait behind, or ``None`` to go."""

    @abstractmethod
    def acquire(self, requester: int) -> None:
        """Grant the requester a commit slot (``blocking`` returned None)."""

    @abstractmethod
    def release(self, requester: int) -> None:
        """Release the requester's slot, if it holds one (idempotent)."""


class SerialTokenArbitration(CommitArbitration):
    """One global commit token (TCC-style): at most one lazy transaction
    is between validation and publication, so the version clock is
    always current when a committer validates."""

    name = "serial"

    def __init__(self) -> None:
        self._holder: int | None = None

    def blocking(self, requester: int) -> int | None:
        holder = self._holder
        if holder is not None and holder != requester:
            return holder
        return None

    def acquire(self, requester: int) -> None:
        self._holder = requester

    def release(self, requester: int) -> None:
        if self._holder == requester:
            self._holder = None


class BoundedWidthArbitration(CommitArbitration):
    """Up to ``width`` lazy transactions may commit concurrently.

    Safe because a committer dooms every lazy transaction whose read
    set overlaps its write set *before* entering publication
    (``_doom_lazy_losers``): any two concurrently-admitted committers
    are therefore read-write disjoint, and functional publication
    stays atomic per transaction (``memory.bulk_store``).  A requester
    past the width waits behind the lowest-numbered slot holder.
    """

    def __init__(self, width: int) -> None:
        if width < 2:
            raise IncompatiblePolicyError(
                "bounded commit width must be >= 2",
                axes={"arbitration": f"width{width}"},
                reason="width 1 is the serial token",
            )
        self.width = width
        self.name = f"width{width}"
        self._holders: set[int] = set()

    def blocking(self, requester: int) -> int | None:
        holders = self._holders
        if requester in holders or len(holders) < self.width:
            return None
        return min(holders)

    def acquire(self, requester: int) -> None:
        self._holders.add(requester)

    def release(self, requester: int) -> None:
        self._holders.discard(requester)


def make_arbitration(name: str) -> CommitArbitration:
    """Build an arbitration policy by axis value (``serial``/``widthN``)."""
    normalized = _normalize_axis(name)
    width = parse_width(normalized)  # raises on malformed values
    if width == 1:
        return SerialTokenArbitration()
    return BoundedWidthArbitration(width)
