"""The hardware-transactional-memory engine.

Programs express work through the operation protocol of
:mod:`repro.htm.ops`; the engine in :mod:`repro.simulator` executes them
over the memory substrate with one of the version managers in
:mod:`repro.htm.vm`.
"""

from repro.htm.ops import Barrier, Read, Tx, Work, Write
from repro.htm.transaction import TxFrame

__all__ = ["Barrier", "Read", "Tx", "TxFrame", "Work", "Write"]
