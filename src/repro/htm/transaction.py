"""Transaction frames: the per-transaction state of a core.

Nesting follows LogTM-Nested: each nested level keeps its own frame
(checkpoint, read/write signatures, write buffer); committing an inner
transaction merges its frame into the parent, aborting discards frames
from the target depth inward and re-executes from that level's
checkpoint (= body factory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.config import SignatureConfig
from repro.signatures.bloom import BloomSignature


@dataclass
class TxFrame:
    """State of one (possibly nested) transaction level."""

    site: int
    body_factory: Callable[[], Generator]
    depth: int
    timestamp: int          # begin time of the *outermost* enclosing tx
    start_time: int         # begin time of this frame's current attempt
    read_sig: BloomSignature
    write_sig: BloomSignature
    read_lines: set[int] = field(default_factory=set)
    write_lines: set[int] = field(default_factory=set)
    write_buffer: dict[int, int] = field(default_factory=dict)
    #: cycles of useful in-transaction work; resolved to Trans on commit
    #: or Wasted on abort.
    tentative_cycles: int = 0
    #: execution mode for this frame: "eager", "lazy" (DynTM / lazy-CD
    #: schemes), or "snapshot" (mvsuv wait-free reader).
    mode: str = "eager"
    #: the Tx op declared this transaction read-only (survives retries).
    read_only: bool = False
    #: enclosing frame (closed nesting), None for the outermost.
    parent: "TxFrame | None" = None
    #: open-nested transaction: publishes at its own commit (§IV-C).
    open_nested: bool = False
    #: compensating body registered by a committed open-nested child;
    #: runs if this frame aborts.
    compensate: "Callable[[], Generator] | None" = None
    #: compensations owed from previously-committed open children of
    #: aborted attempts; survive reset_for_retry and run as a prologue
    #: of the retry.
    pending_compensations: "list[Callable[[], Generator]]" = field(
        default_factory=list
    )
    #: scheme-private scratch state (undo-log entries, redirect entries,
    #: overflowed lines, read-version records, ...).
    vm: dict[str, Any] = field(default_factory=dict)
    #: atomicity-oracle operation log: ("r"|"w", addr, value) in program
    #: order; populated only when an OracleRecorder is attached.
    oracle_ops: list = field(default_factory=list)
    #: zero-based attempt number of this frame (bumped on every retry);
    #: lets trace events name an attempt as (tid, site, attempt).
    attempt: int = 0

    @classmethod
    def create(
        cls,
        site: int,
        body_factory: Callable[[], Generator],
        depth: int,
        timestamp: int,
        now: int,
        sig_config: SignatureConfig,
        mode: str = "eager",
        sig_factory: "Callable[[], Any] | None" = None,
    ) -> "TxFrame":
        # the simulator passes its accel backend's signature factory so
        # vector-backend frames draw rows from the shared pool; bare
        # construction (tests, tools) keeps the pure big-int default
        if sig_factory is None:
            def sig_factory() -> BloomSignature:
                return BloomSignature(sig_config.bits, sig_config.hashes,
                                      sig_config.seed)
        return cls(
            site=site,
            body_factory=body_factory,
            depth=depth,
            timestamp=timestamp,
            start_time=now,
            read_sig=sig_factory(),
            write_sig=sig_factory(),
            mode=mode,
        )

    # ------------------------------------------------------------------
    def record_read(self, line: int) -> None:
        if line not in self.read_lines:
            self.read_lines.add(line)
            self.read_sig.add(line)

    def record_write(self, line: int) -> None:
        if line not in self.write_lines:
            self.write_lines.add(line)
            self.write_sig.add(line)

    def merge_child(self, child: "TxFrame") -> None:
        """Closed-nested commit: fold a child frame into this one."""
        self.read_lines |= child.read_lines
        self.write_lines |= child.write_lines
        self.read_sig.union_inplace(child.read_sig)
        self.write_sig.union_inplace(child.write_sig)
        self.write_buffer.update(child.write_buffer)
        self.tentative_cycles += child.tentative_cycles
        self.oracle_ops.extend(child.oracle_ops)

    def reset_for_retry(self, now: int) -> None:
        """Fresh signatures/buffers for a re-execution of this level."""
        self.read_sig.clear()
        self.write_sig.clear()
        self.read_lines.clear()
        self.write_lines.clear()
        self.write_buffer.clear()
        self.tentative_cycles = 0
        self.start_time = now
        self.vm.clear()
        self.oracle_ops.clear()
        self.attempt += 1

    # conflict membership tests ----------------------------------------
    # the value-based variants fetch the H3 mask once per *line* and
    # reuse it across both signatures (they share one hash family);
    # calling BloomSignature.test(value) per signature would pay the
    # memo lookup per probed signature instead
    def may_read_conflict(self, line: int) -> bool:
        """Would a remote *write* to ``line`` conflict with this frame?"""
        mask = self.read_sig.line_mask(line)
        return (self.read_sig.test_mask(mask)
                or self.write_sig.test_mask(mask))

    def may_write_conflict(self, line: int) -> bool:
        """Would a remote *read* of ``line`` conflict with this frame?"""
        return self.write_sig.test_mask(self.write_sig.line_mask(line))

    # mask variants: the conflict scan probes one line against many
    # frames; the caller computes ``sig.line_mask(line)`` once and
    # reuses it.  Both signatures share the same hash family (one
    # silicon matrix), so one mask serves both — but each signature is
    # tested separately: OR-ing the filter words first would merge bit
    # sets and manufacture false positives.  The mask is a big int for
    # the pure backend and a uint64 word array for the vector one;
    # ``test_mask`` consumes whichever its signature produced.
    def may_read_conflict_mask(self, mask: Any) -> bool:
        return (self.read_sig.test_mask(mask)
                or self.write_sig.test_mask(mask))

    def may_write_conflict_mask(self, mask: Any) -> bool:
        return self.write_sig.test_mask(mask)
