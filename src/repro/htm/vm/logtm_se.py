"""LogTM-SE: eager version management with an undo log (the baseline).

Every first transactional store to a line appends an undo record (old
value + address) to a per-thread log in cacheable memory, then updates
the line in place.  Commit discards the log (cheap).  Abort traps into a
software handler that walks the log in reverse, restoring every line —
the *repair pathology*: the transaction's isolation stays held for the
whole walk, blocking every conflicting neighbour (paper Figures 1, 6).
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.htm.transaction import TxFrame
from repro.htm.vm.base import VersionManager, register_scheme
from repro.mem.hierarchy import MemoryHierarchy
from repro.trace import LOG_WALK


@register_scheme("logtm-se", "logtmse", "logtm")
class LogTMSE(VersionManager):
    """Undo-log eager VM (LogTM-SE, Yen et al. HPCA'07)."""

    name = "logtm-se"
    vm_axis = "undo"
    cd_axis = "eager"

    #: cycles to discard the log and checkpoint at commit
    COMMIT_CYCLES = 8

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy) -> None:
        super().__init__(config, hierarchy)

    def pre_read(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        return 0, line

    def pre_write(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        self.stats.tx_writes += 1
        vm = frame.vm
        logged: set[int] | None = vm.get("logged_lines")
        if logged is None:
            logged = vm["logged_lines"] = set()
        extra = 0
        if line not in logged:
            # one load of the old value + one store to the undo log
            self.stats.first_writes += 1
            logged.add(line)
            frame.vm.setdefault("log_order", []).append(line)
            extra += self._log_append(core)
        return extra, line

    def commit(self, core: int, frame: TxFrame, outermost: bool) -> int:
        if not outermost:
            # nested commit: the log simply keeps growing; the simulator
            # splices the child's records into the parent via merge_nested
            return 2
        entries = len(frame.vm.get("logged_lines", ()))
        self._log_reset(core, entries)
        return self.COMMIT_CYCLES

    def abort(self, core: int, frame: TxFrame, outermost: bool) -> int:
        # trap into the software handler, then walk the log in reverse
        order: list[int] = frame.vm.get("log_order", [])
        latency = self.config.htm.abort_trap_cycles
        latency += self._log_walk_restore(core, order)
        self._log_reset(core, len(order))
        tr = self.trace
        if tr is not None and tr.events is not None:
            # the repair pathology, event by event: the undo walk keeps
            # the window open for `cycles` after the abort decision
            tr.emit(tr.clock.now, LOG_WALK, core,
                    data={"records": len(order), "cycles": latency})
        return latency

    def merge_nested(self, parent: TxFrame, child: TxFrame) -> None:
        parent.vm.setdefault("logged_lines", set()).update(
            child.vm.get("logged_lines", ())
        )
        parent.vm.setdefault("log_order", []).extend(
            child.vm.get("log_order", ())
        )
