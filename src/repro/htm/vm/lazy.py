"""Lazy (pessimistic) version management: redo-in-L1, merge at commit.

This is the TCC-style scheme DynTM uses for its lazy execution mode.
Transactional stores stay core-local (no coherence broadcast) in
speculative L1 lines; conflicts are *not* detected during execution.
At commit the transaction validates its read set against a global line
version clock, waits for any conflicting eager transaction, then merges:
for every written line it issues the real coherence write (invalidation
+ data movement), which is the *merge pathology* — the isolation window
stays open for the whole merge (paper Figure 1).

When the underlying data placement is SUV (DynTM+SUV), publication only
needs the invalidation round trip: the new data already sits at the
redirected address, so the Committing component shrinks (Figure 9).

Speculative-line eviction cannot be tolerated lazily; the transaction
must abort and re-execute eagerly (``must_abort`` = "overflow").
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.htm.transaction import TxFrame
from repro.htm.vm.base import VersionManager, register_scheme
from repro.mem.hierarchy import AccessResult, MemoryHierarchy
from repro.trace import PUBLISH


@register_scheme("lazy")
class LazyVM(VersionManager):
    """Redo-in-L1 lazy version manager (DynTM's lazy mode)."""

    name = "lazy"
    vm_axis = "buffer"
    cd_axis = "eager"

    FAST_ABORT_CYCLES = 14

    def __init__(
        self,
        config: SimConfig,
        hierarchy: MemoryHierarchy,
        publish_by_redirect: bool = False,
    ) -> None:
        super().__init__(config, hierarchy)
        #: True when SUV provides placement: commit publishes by
        #: invalidation only, without data movement.
        self.publish_by_redirect = publish_by_redirect
        #: global line-version clock, shared with the simulator (and the
        #: wrapping DynTM) for commit-time read-set validation.
        self.line_versions: dict[int, int] = {}
        self.stats.extra.update(
            validation_failures=0, lazy_overflows=0, published_lines=0
        )

    def wants_speculative_marking(self) -> bool:
        return True

    def uses_local_writes(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def pre_read(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        vm = frame.vm
        versions = vm.get("read_versions")
        if versions is None:
            versions = vm["read_versions"] = {}
        if line not in versions:
            versions[line] = self.line_versions.get(line, 0)
        return 0, line

    def pre_write(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        self.stats.tx_writes += 1
        vm = frame.vm
        first: set[int] | None = vm.get("spec_lines")
        if first is None:
            first = vm["spec_lines"] = set()
        if line not in first:
            self.stats.first_writes += 1
            first.add(line)
        return 0, line

    def post_write(
        self, core: int, frame: TxFrame, line: int, result: AccessResult
    ) -> int:
        extra = super().post_write(core, frame, line, result)
        if result.evicted_speculative:
            # uncommitted data left the L1: lazy mode cannot recover
            self.stats.extra["lazy_overflows"] += 1
            frame.vm["must_abort"] = "overflow"
        return extra

    # ------------------------------------------------------------------
    def validate(self, core: int, frame: TxFrame) -> bool:
        """Commit-time read-set validation against the version clock."""
        for line, seen in frame.vm.get("read_versions", {}).items():
            if self.line_versions.get(line, 0) != seen:
                self.stats.extra["validation_failures"] += 1
                return False
        return True

    def commit(self, core: int, frame: TxFrame, outermost: bool) -> int:
        if not outermost:
            return 2
        latency = self.config.dyntm.commit_arbitration_cycles
        for line in sorted(frame.vm.get("spec_lines", ())):
            self.stats.extra["published_lines"] += 1
            # every publication invalidates remote stale copies ...
            latency += self.hierarchy.invalidate_remote(core, line)
            if not self.publish_by_redirect:
                # ... and the data-moving variant (FasTM placement) must
                # also drain the new value to the shared level; with SUV
                # placement the data already sits at the redirected
                # address, so the invalidation round trip suffices.
                latency += self.hierarchy.flush_to_l2(core, line) or (
                    self.config.l2.latency
                )
        self.hierarchy.drop_speculative(core, invalidate=False)
        tr = self.trace
        if tr is not None and tr.events is not None:
            # the merge pathology: the window stays open for `cycles`
            # while every written line is published one by one
            tr.emit(tr.clock.now, PUBLISH, core,
                    data={"lines": len(frame.vm.get("spec_lines", ())),
                          "redirect": self.publish_by_redirect,
                          "cycles": latency})
        return latency

    def abort(self, core: int, frame: TxFrame, outermost: bool) -> int:
        self.hierarchy.drop_speculative(core, invalidate=True)
        return self.FAST_ABORT_CYCLES

    def merge_nested(self, parent: TxFrame, child: TxFrame) -> None:
        parent.vm.setdefault("spec_lines", set()).update(
            child.vm.get("spec_lines", ())
        )
        parent.vm.setdefault("read_versions", {}).update(
            {
                k: v
                for k, v in child.vm.get("read_versions", {}).items()
                if k not in parent.vm.get("read_versions", {})
            }
        )
