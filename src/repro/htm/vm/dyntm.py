"""DynTM: a dynamically-adaptable HTM (Lupon MICRO'10), behavioural.

DynTM chooses, per static transaction site, between *eager* execution
(eager conflict detection + eager version management) and *lazy*
execution (invisible until a validating, arbitrated commit).  The choice
comes from a history-based selector: a saturating counter per site that
moves toward lazy when eager attempts keep aborting (lazy aborts are
cheap and the committer always wins) and back toward eager when lazy
runs overflow the L1 or pay heavy commit merges.

The eager version manager is pluggable:

* ``eager_vm="fastm"`` — the original DynTM of the paper (Figure 9, D);
* ``eager_vm="suv"``  — the paper's DynTM+SUV (Figure 9, D+S), which
  also cheapens the lazy commit: publication is an invalidation round
  trip instead of a per-line data merge.
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.htm.transaction import TxFrame
from repro.htm.vm.base import VersionManager, register_scheme
from repro.htm.vm.fastm import FasTM
from repro.htm.vm.lazy import LazyVM
from repro.htm.vm.suv import SUV
from repro.mem.hierarchy import AccessResult, MemoryHierarchy


class DynTM(VersionManager):
    """Mode-selecting VM delegating to an eager VM and a LazyVM."""

    name = "dyntm"
    cd_axis = "adaptive"

    def __init__(
        self, config: SimConfig, hierarchy: MemoryHierarchy, eager_vm: str = "fastm"
    ) -> None:
        super().__init__(config, hierarchy)
        if eager_vm == "fastm":
            self.eager: VersionManager = FasTM(config, hierarchy)
        elif eager_vm == "suv":
            self.eager = SUV(config, hierarchy)
        else:
            raise ValueError(f"unsupported DynTM eager VM {eager_vm!r}")
        self.lazy = LazyVM(
            config, hierarchy, publish_by_redirect=(eager_vm == "suv")
        )
        self.name = f"dyntm+{self.eager.name}"
        self.vm_axis = self.eager.vm_axis
        self.line_versions = self.lazy.line_versions
        # per-site saturating counters; >= threshold ⇒ run lazily
        self._counters: dict[int, int] = {}
        self._max = (1 << config.dyntm.counter_bits) - 1
        self._threshold = config.dyntm.lazy_threshold
        self.stats.extra.update(eager_attempts=0, lazy_attempts=0)

    def attach_trace(self, tracer) -> None:
        super().attach_trace(tracer)
        # the delegated VMs emit their own events (FLASH_ABORT, PUBLISH,
        # table traffic); without this they would stay silent
        self.eager.attach_trace(tracer)
        self.lazy.attach_trace(tracer)

    # -- mode selection ---------------------------------------------------
    def mode_for(self, core: int, site: int) -> str:
        if self._counters.get(site, 0) >= self._threshold:
            self.stats.extra["lazy_attempts"] += 1
            return "lazy"
        self.stats.extra["eager_attempts"] += 1
        return "eager"

    def note_outcome(self, core: int, frame: TxFrame, committed: bool) -> None:
        site = frame.site
        c = self._counters.get(site, 0)
        if frame.mode == "eager":
            if not committed:
                # eager aborts are expensive; drift toward lazy
                self._counters[site] = min(self._max, c + 1)
        else:
            if frame.vm.get("must_abort") == "overflow":
                # lazy cannot hold the write set: force eager
                self._counters[site] = 0
            elif committed and len(frame.vm.get("spec_lines", ())) > 32:
                # heavy merge: eager would commit for free
                self._counters[site] = max(0, c - 1)

    # -- delegation ---------------------------------------------------------
    def _vm(self, frame: TxFrame) -> VersionManager:
        return self.lazy if frame.mode == "lazy" else self.eager

    def on_begin(self, core: int, frame: TxFrame) -> int:
        return self._vm(frame).on_begin(core, frame)

    def pre_read(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        return self._vm(frame).pre_read(core, frame, line)

    def pre_write(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        return self._vm(frame).pre_write(core, frame, line)

    def post_write(
        self, core: int, frame: TxFrame, line: int, result: AccessResult
    ) -> int:
        return self._vm(frame).post_write(core, frame, line, result)

    def commit(self, core: int, frame: TxFrame, outermost: bool) -> int:
        return self._vm(frame).commit(core, frame, outermost)

    def abort(self, core: int, frame: TxFrame, outermost: bool) -> int:
        return self._vm(frame).abort(core, frame, outermost)

    def validate(self, core: int, frame: TxFrame) -> bool:
        return self._vm(frame).validate(core, frame)

    def merge_nested(self, parent: TxFrame, child: TxFrame) -> None:
        self._vm(parent).merge_nested(parent, child)

    def nontx_translate(self, core: int, line: int) -> tuple[int, int]:
        return self.eager.nontx_translate(core, line)

    def wants_speculative_marking(self) -> bool:
        # resolved per frame by the simulator via frame.mode; the eager
        # VM's preference applies to eager frames
        return self.eager.wants_speculative_marking()

    def speculative_for(self, frame: TxFrame) -> bool:
        """Per-frame speculative-marking decision."""
        return self._vm(frame).wants_speculative_marking()

    def local_writes_for(self, frame: TxFrame) -> bool:
        return frame.mode == "lazy"

    def scheme_stats(self) -> dict[str, float]:
        out = super().scheme_stats()
        out.update({f"eager_{k}": v for k, v in self.eager.scheme_stats().items()})
        out.update({f"lazy_{k}": v for k, v in self.lazy.scheme_stats().items()})
        return out


@register_scheme("dyntm")
def _make_dyntm(config: SimConfig, hierarchy: MemoryHierarchy) -> DynTM:
    """The original DynTM: FasTM-based eager version management."""
    return DynTM(config, hierarchy, eager_vm="fastm")


@register_scheme("dyntm+suv", "dyntm-suv")
def _make_dyntm_suv(config: SimConfig, hierarchy: MemoryHierarchy) -> DynTM:
    """The paper's DynTM+SUV: SUV as DynTM's version-management scheme."""
    return DynTM(config, hierarchy, eager_vm="suv")
