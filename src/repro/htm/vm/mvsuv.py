"""MVSUV: multiversioned single-update version management (``vm=mvsuv``).

Plain SUV keeps exactly one committed version per line — the redirect
table maps each line to wherever its current bytes live.  MVSUV extends
that machinery with a bounded *pre-image chain*
(:mod:`repro.core.version_chain`): whenever a transaction publishes, the
values its stores overwrite are retained (stamped with a global
publication sequence number and the commit cycle), up to
``config.redirect.versions_k`` versions per line.

That chain buys **wait-free snapshot readers**.  A transaction declared
read-only (``Tx(body, read_only=True)``) — or detected read-only from
its site history — captures the current publication sequence at begin
and runs in ``"snapshot"`` mode: its reads never arm signatures, never
join the conflict graph, never stall anyone, and its commit is a single
cycle with no table flips and no arbitration.  Each read is answered
from the version chain (the pre-image of the oldest publication newer
than the snapshot) or, when the chain proves no newer publication
touched the word, straight from memory.  This is exactly the paper's
Figure 1 pathology — a huge reader repeatedly aborted by small writers —
removed by construction.

Degradation is graceful and conservative.  Version records pin
preserved-pool lines; under ``pool_max_pages`` pressure the oldest
versions are garbage-collected *before* any writer is doomed, and a
version that cannot be pinned at all is recorded as *lost*, which
poisons (only) snapshots older than it.  A snapshot read that needs
trimmed history aborts the reader and permanently demotes its site to
ordinary eager execution — as does a store inside a declared read-only
body — so mvsuv never livelocks and, with ``versions_k`` effectively
zero, simply behaves like plain SUV.
"""

from __future__ import annotations

from repro.config import LINE_SHIFT, SimConfig
from repro.core.version_chain import VersionChain
from repro.errors import PoolExhausted
from repro.htm.transaction import TxFrame
from repro.htm.vm.base import register_scheme
from repro.htm.vm.suv import SUV
from repro.mem.hierarchy import MemoryHierarchy
from repro.trace import VERSION_ALLOC, VERSION_GC, VERSION_READ


@register_scheme("mvsuv")
class MVSUV(SUV):
    """SUV plus bounded multiversioning and snapshot readers."""

    name = "mvsuv"
    vm_axis = "mvsuv"
    cd_axis = "eager"

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy) -> None:
        super().__init__(config, hierarchy)
        self.chain = VersionChain(config.redirect.versions_k)
        #: global publication sequence: one tick per publishing commit
        #: and per non-transactional store (strong isolation orders
        #: those against transactions, so they are publications too)
        self._commit_seq = 0
        #: per-site history for read-only detection
        self._site_commits: dict[int, int] = {}
        self._site_writes: dict[int, int] = {}
        #: sites that violated or exhausted a snapshot: permanently
        #: demoted to eager execution (livelock-freedom)
        self._demoted: set[int] = set()
        self.stats.extra.update(
            snapshot_txs=0, snapshot_commits=0,
            snapshot_reads_chain=0, snapshot_reads_memory=0,
            snapshot_exhaustions=0, snapshot_violations=0,
            version_allocs=0,
        )

    # ------------------------------------------------------------------
    # snapshot admission (simulator hook)
    # ------------------------------------------------------------------
    def snapshot_mode_for(self, core: int, site: int, declared: bool) -> bool:
        """Should this outermost attempt run as a snapshot reader?"""
        if site in self._demoted:
            return False
        if not declared and not (
            self._site_commits.get(site, 0) > 0
            and self._site_writes.get(site, 0) == 0
        ):
            return False
        self.stats.extra["snapshot_txs"] += 1
        return True

    def current_seq(self) -> int:
        """The snapshot timestamp a reader beginning now captures."""
        return self._commit_seq

    @staticmethod
    def _snapshot_seq_of(frame: TxFrame) -> int:
        f: TxFrame | None = frame
        while f is not None:
            seq = f.vm.get("snapshot_seq")
            if seq is not None:
                return seq
            f = f.parent
        return 0

    # ------------------------------------------------------------------
    # snapshot reads (simulator hook)
    # ------------------------------------------------------------------
    def snapshot_read(
        self, core: int, frame: TxFrame, addr: int, line: int
    ) -> tuple[int, int | None, bool]:
        """``(extra cycles, value, ok)`` for a snapshot-mode load.

        ``value is None`` with ``ok`` means the chain proved current
        memory still holds the snapshot's value — the caller performs an
        ordinary hierarchy read of the *original* line (no redirect
        lookup, no summary test: the wait-free path never consults the
        shared table).  A chain hit costs one second-level-table access.
        ``not ok`` means the needed history was trimmed away.
        """
        snap = self._snapshot_seq_of(frame)
        status, value = self.chain.read(line, addr, snap)
        tr = self.trace
        events = tr is not None and tr.events is not None
        if status == "exhausted":
            self.stats.extra["snapshot_exhaustions"] += 1
            self._demoted.add(frame.site)
            if events:
                tr.emit(tr.clock.now, VERSION_READ, core,
                        data={"line": line, "snapshot_seq": snap,
                              "exhausted": True})
            return 0, None, False
        if status == "chain":
            self.stats.extra["snapshot_reads_chain"] += 1
            if events:
                tr.emit(tr.clock.now, VERSION_READ, core,
                        data={"line": line, "snapshot_seq": snap,
                              "source": "chain"})
            return self.config.redirect.l2_latency, value, True
        self.stats.extra["snapshot_reads_memory"] += 1
        return 0, None, True

    def note_snapshot_violation(self, core: int, frame: TxFrame) -> None:
        """A declared/detected read-only body stored: demote its site."""
        self.stats.extra["snapshot_violations"] += 1
        self._demoted.add(frame.site)

    # ------------------------------------------------------------------
    # version recording (simulator hooks, called at publication points)
    # ------------------------------------------------------------------
    def note_publication(self, core: int, frame: TxFrame) -> None:
        """A commit is about to publish ``frame.write_buffer``."""
        self._commit_seq += 1
        seq = self._commit_seq
        memory = self.hierarchy.memory
        by_line: dict[int, dict[int, int]] = {}
        for addr in frame.write_buffer:
            by_line.setdefault(addr >> LINE_SHIFT, {})[addr] = memory.peek(addr)
        tr = self.trace
        cycle = tr.clock.now if tr is not None else 0
        for line in sorted(by_line):
            self._record_version(core, line, seq, cycle, by_line[line])

    def note_nontx_write(self, core: int, addr: int, line: int) -> None:
        """A non-transactional store is about to land (strong isolation
        makes it a publication of its own)."""
        self._commit_seq += 1
        tr = self.trace
        self._record_version(
            core, line, self._commit_seq,
            tr.clock.now if tr is not None else 0,
            {addr: self.hierarchy.memory.peek(addr)},
        )

    def _record_version(
        self, core: int, line: int, seq: int, cycle: int,
        values: dict[int, int],
    ) -> None:
        pool_line = self._pin_version_line()
        tr = self.trace
        events = tr is not None and tr.events is not None
        if pool_line is None:
            # the pool cannot hold this version even after reclamation
            # and GC: the publication still proceeds (commit never fails
            # here), but snapshots older than it are poisoned
            for freed in self.chain.note_lost(line, seq):
                self.pool.free_line(freed)
            if events:
                tr.emit(tr.clock.now, VERSION_ALLOC, core,
                        data={"line": line, "seq": seq, "lost": True})
            return
        self.stats.extra["version_allocs"] += 1
        for freed in self.chain.record(line, seq, cycle, values, pool_line):
            self.pool.free_line(freed)
        if events:
            tr.emit(tr.clock.now, VERSION_ALLOC, core,
                    data={"line": line, "seq": seq, "words": len(values)})

    def _pin_version_line(self) -> int | None:
        try:
            return self.pool.allocate_line()
        except PoolExhausted:
            pass
        if self._reclaim_committed():
            try:
                return self.pool.allocate_line()
            except PoolExhausted:
                pass
        return None

    # ------------------------------------------------------------------
    # garbage collection under pool pressure
    # ------------------------------------------------------------------
    def _reclaim_committed(self) -> int:
        """Stale versions are sacrificed before any writer is doomed."""
        freed = super()._reclaim_committed()
        if freed:
            return freed
        return self._gc_versions(self.RECLAIM_BATCH)

    def _gc_versions(self, n: int) -> int:
        released = self.chain.evict_oldest(n)
        for line in released:
            self.pool.free_line(line)
        if released:
            tr = self.trace
            if tr is not None and tr.events is not None:
                tr.emit(tr.clock.now, VERSION_GC,
                        data={"freed": len(released)})
        return len(released)

    # ------------------------------------------------------------------
    # end-of-transaction processing
    # ------------------------------------------------------------------
    def commit(self, core: int, frame: TxFrame, outermost: bool) -> int:
        if frame.mode == "snapshot":
            # wait-free: no table flips, no summary update, no
            # arbitration — the reader was never visible to anyone
            if outermost:
                self.stats.extra["snapshot_commits"] += 1
            return 1
        return super().commit(core, frame, outermost)

    def abort(self, core: int, frame: TxFrame, outermost: bool) -> int:
        if frame.mode == "snapshot":
            return 1  # nothing was published or armed
        return super().abort(core, frame, outermost)

    def note_outcome(self, core: int, frame: TxFrame, committed: bool) -> None:
        if committed and frame.depth == 0:
            site = frame.site
            self._site_commits[site] = self._site_commits.get(site, 0) + 1
            if frame.write_lines:
                self._site_writes[site] = self._site_writes.get(site, 0) + 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def version_pool_lines(self) -> set[int]:
        """Pool lines pinned by retained versions (oracle quiescence)."""
        return self.chain.pool_lines()

    def scheme_stats(self) -> dict[str, float]:
        out = super().scheme_stats()
        out.update(self.chain.stats())
        out["snapshot_demoted_sites"] = len(self._demoted)
        return out
