"""Version managers assembled from policy axes (see :mod:`repro.htm.policy`).

:class:`ComposedVM` is the runtime shape of a composed scheme name like
``redirect+lazy+stall+serial``: a thin mode-dispatching wrapper (the
same delegation pattern as :class:`~repro.htm.vm.dyntm.DynTM`) around
one carrier VM per execution mode, with the conflict-detection policy
choosing the mode per attempt.  The resolution and arbitration axes are
not resolved here — the simulator reads them off
:attr:`ComposedVM.composition` and instantiates the matching policy
objects from :mod:`repro.htm.policy`.

:class:`RedirectLazyVM` is the novel hybrid the decomposition unlocks:
SUV's redirect placement under *lazy* conflict detection.  Writes go to
private pool lines (naturally invisible — no transient entries are
published to the shared redirect table during execution), reads record
line versions for commit-time validation, and commit publishes by
installing the redirect entries plus one invalidation round trip per
written line — no data merge, and unlike the L1-buffer lazy VM it
survives speculative-line eviction (the pool is memory-backed).
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.core.redirect_entry import EntryState, RedirectEntry
from repro.htm.policy import (
    SchemeComposition,
    make_conflict_detection,
)
from repro.htm.transaction import TxFrame
from repro.htm.vm.base import VersionManager
from repro.htm.vm.fastm import FasTM
from repro.htm.vm.lazy import LazyVM
from repro.htm.vm.logtm_se import LogTMSE
from repro.htm.vm.mvsuv import MVSUV
from repro.htm.vm.suv import SUV
from repro.mem.hierarchy import AccessResult, MemoryHierarchy
from repro.trace import PUBLISH, Tracer


class RedirectLazyVM(SUV):
    """SUV placement under lazy conflict detection (a novel hybrid).

    Differences from eager SUV, all consequences of invisibility:

    * ``pre_write`` never touches the shared redirect table; the
      mapping lives in the frame's private ``targets`` until commit, so
      concurrent writers of the same line each buffer into their own
      pool line (the committer's entry wins at publication).
    * ``pre_read`` records the line's version against the global
      version clock; ``validate`` replays the check at commit, exactly
      like :class:`~repro.htm.vm.lazy.LazyVM`.
    * ``commit`` is the publication: arbitration delay, then per
      written line an entry install (fresh or replacing a committed
      predecessor) plus the invalidation round trip — the data already
      sits at the redirected address, so nothing moves.
    * ``abort`` just frees the private pool lines: no table surgery,
      no log walk, and — unlike the L1-buffer lazy VM — no
      ``must_abort`` on speculative eviction.
    """

    name = "redirect-lazy"
    vm_axis = "redirect"
    cd_axis = "lazy"

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy) -> None:
        super().__init__(config, hierarchy)
        #: global line-version clock shared with the simulator for
        #: commit-time read-set validation (same protocol as LazyVM)
        self.line_versions: dict[int, int] = {}
        self.stats.extra.update(validation_failures=0, published_lines=0)

    def uses_local_writes(self) -> bool:
        # writes land on private pool lines through the ordinary
        # hierarchy path; no core-local buffering needed
        return False

    # ------------------------------------------------------------------
    def pre_read(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        versions = frame.vm.get("read_versions")
        if versions is None:
            versions = frame.vm["read_versions"] = {}
        if line not in versions:
            versions[line] = self.line_versions.get(line, 0)
        # committed (VALID) redirections still translate reads; our own
        # private targets take precedence (read-your-writes placement)
        return super().pre_read(core, frame, line)

    def pre_write(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        self.stats.tx_writes += 1
        own = self._frame_target(frame, line)
        if own is not None:
            return 0, own
        self.stats.first_writes += 1
        targets = frame.vm.get("targets")
        if targets is None:
            targets = frame.vm["targets"] = {}
        # invisible until commit: allocate a private pool line, publish
        # nothing — the shared table is only touched at publication
        new_line, reclaim_cost = self._allocate_or_doom(frame)
        if new_line is None:
            return reclaim_cost, line
        self.stats.extra["redirects"] += 1
        targets[line] = new_line
        frame.vm["allocate_write"] = True
        return reclaim_cost + self.COPY_CYCLES, new_line

    # ------------------------------------------------------------------
    def validate(self, core: int, frame: TxFrame) -> bool:
        """Commit-time read-set validation against the version clock."""
        for line, seen in frame.vm.get("read_versions", {}).items():
            if self.line_versions.get(line, 0) != seen:
                self.stats.extra["validation_failures"] += 1
                return False
        return True

    def commit(self, core: int, frame: TxFrame, outermost: bool) -> int:
        if not outermost:
            return 2
        latency = self.config.dyntm.commit_arbitration_cycles + self.SWITCH_CYCLES
        targets = frame.vm.get("targets", {})
        for line in sorted(targets):
            pool_line = targets[line]
            self.stats.extra["published_lines"] += 1
            entry, extra = self._consult_table(core, line)
            latency += extra
            if entry is not None and entry.state is EntryState.VALID:
                # replace a committed predecessor's mapping in place
                if self.pool.contains_line(entry.redirected_line):
                    self.pool.free_line(entry.redirected_line)
                entry.redirected_line = pool_line
            else:
                self.table.insert(
                    core,
                    RedirectEntry(line, pool_line, EntryState.VALID, owner=None),
                )
                self.summary.add(line)
            # stale remote copies of the original line die here; the new
            # data already sits at the redirected address (no merge)
            latency += self.hierarchy.invalidate_remote(core, line)
        if self.summary.maybe_rebuild(self.table.iter_live_lines()):
            latency += self.config.redirect.software_overhead
        tr = self.trace
        if tr is not None and tr.events is not None:
            tr.emit(tr.clock.now, PUBLISH, core,
                    data={"lines": len(targets), "redirect": True,
                          "cycles": latency})
        return latency

    def abort(self, core: int, frame: TxFrame, outermost: bool) -> int:
        for pool_line in frame.vm.get("targets", {}).values():
            if self.pool.contains_line(pool_line):
                self.pool.free_line(pool_line)
        return self.SWITCH_CYCLES if outermost else 2

    def merge_nested(self, parent: TxFrame, child: TxFrame) -> None:
        super().merge_nested(parent, child)
        parent_versions = parent.vm.setdefault("read_versions", {})
        for line, seen in child.vm.get("read_versions", {}).items():
            if line not in parent_versions:
                parent_versions[line] = seen


#: vm-axis value -> carrier class for eager-capable placements
_EAGER_CARRIERS: dict[str, type[VersionManager]] = {
    "undo": LogTMSE,
    "flash": FasTM,
    "redirect": SUV,
    "buffer": LazyVM,  # buffer under eager detection = the canonical "lazy"
    "mvsuv": MVSUV,
}

#: simulator-facing multiversion hooks a carrier may provide; the
#: wrapper re-exports them so ``getattr(scheme, hook)`` finds them on a
#: composed scheme exactly as on the bare carrier
_SNAPSHOT_HOOKS = (
    "snapshot_mode_for", "snapshot_read", "current_seq",
    "note_publication", "note_nontx_write", "note_snapshot_violation",
    "version_pool_lines",
)


class ComposedVM(VersionManager):
    """A version manager assembled from a :class:`SchemeComposition`.

    Wraps at most two carrier VMs — one for eager-mode frames, one for
    lazy-mode frames — and lets the conflict-detection policy pick the
    mode per outermost attempt.  With ``cd=eager`` or ``cd=lazy`` a
    single carrier exists and every frame runs through it; ``adaptive``
    mirrors :class:`~repro.htm.vm.dyntm.DynTM` (eager carrier by the
    ``vm`` axis, :class:`LazyVM` with redirect publication when the vm
    axis is ``redirect``).
    """

    def __init__(
        self,
        config: SimConfig,
        hierarchy: MemoryHierarchy,
        composition: SchemeComposition,
    ) -> None:
        super().__init__(config, hierarchy)
        composition.check()
        self.composition = composition
        self.name = composition.name
        self.vm_axis = composition.vm
        self.cd_axis = composition.cd
        self._cd = make_conflict_detection(
            composition.cd,
            counter_bits=config.dyntm.counter_bits,
            lazy_threshold=config.dyntm.lazy_threshold,
        )
        self._eager: VersionManager | None = None
        self._lazy: VersionManager | None = None
        if composition.cd == "lazy":
            if composition.vm == "redirect":
                self._lazy = RedirectLazyVM(config, hierarchy)
            else:  # "buffer" (the only other legal lazy placement)
                self._lazy = LazyVM(config, hierarchy)
        else:
            self._eager = _EAGER_CARRIERS[composition.vm](config, hierarchy)
            if composition.cd == "adaptive":
                self._lazy = LazyVM(
                    config, hierarchy,
                    publish_by_redirect=(composition.vm == "redirect"),
                )
        #: the version clock, when any carrier validates against one —
        #: the simulator bumps it per committed written line
        for carrier in (self._lazy, self._eager):
            versions = getattr(carrier, "line_versions", None)
            if versions is not None:
                self.line_versions: dict[int, int] = versions
                break
        # re-export the multiversion snapshot hooks of an mvsuv carrier
        # (bound methods), so the simulator's getattr probes see them
        for carrier in (self._eager, self._lazy):
            if carrier is None:
                continue
            for hook in _SNAPSHOT_HOOKS:
                fn = getattr(carrier, hook, None)
                if fn is not None and not hasattr(self, hook):
                    setattr(self, hook, fn)
        if self._cd.name == "adaptive":
            self.stats.extra.update(eager_attempts=0, lazy_attempts=0)

    def attach_trace(self, tracer: Tracer) -> None:
        super().attach_trace(tracer)
        for carrier in (self._eager, self._lazy):
            if carrier is not None:
                carrier.attach_trace(tracer)

    # -- mode selection (the cd axis) -----------------------------------
    def mode_for(self, core: int, site: int) -> str:
        mode = self._cd.mode_for(site)
        if self._cd.name == "adaptive":
            self.stats.extra[f"{mode}_attempts"] += 1
        return mode

    def note_outcome(self, core: int, frame: TxFrame, committed: bool) -> None:
        self._cd.note_outcome(frame, committed)
        # carriers with their own outcome feedback (mvsuv's read-only
        # site detection) hear it too; the canonical carriers inherit
        # the base no-op, so this is behaviour-neutral for them
        self._vm(frame).note_outcome(core, frame, committed)

    # -- delegation (the vm axis) ---------------------------------------
    def _vm(self, frame: TxFrame) -> VersionManager:
        carrier = self._lazy if frame.mode == "lazy" else self._eager
        if carrier is None:  # single-carrier composition: every frame fits
            carrier = self._eager if self._eager is not None else self._lazy
        assert carrier is not None
        return carrier

    def on_begin(self, core: int, frame: TxFrame) -> int:
        return self._vm(frame).on_begin(core, frame)

    def pre_read(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        return self._vm(frame).pre_read(core, frame, line)

    def pre_write(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        return self._vm(frame).pre_write(core, frame, line)

    def post_write(
        self, core: int, frame: TxFrame, line: int, result: AccessResult
    ) -> int:
        return self._vm(frame).post_write(core, frame, line, result)

    def commit(self, core: int, frame: TxFrame, outermost: bool) -> int:
        return self._vm(frame).commit(core, frame, outermost)

    def abort(self, core: int, frame: TxFrame, outermost: bool) -> int:
        return self._vm(frame).abort(core, frame, outermost)

    def validate(self, core: int, frame: TxFrame) -> bool:
        return self._vm(frame).validate(core, frame)

    def merge_nested(self, parent: TxFrame, child: TxFrame) -> None:
        self._vm(parent).merge_nested(parent, child)

    def nontx_translate(self, core: int, line: int) -> tuple[int, int]:
        carrier = self._eager if self._eager is not None else self._lazy
        assert carrier is not None
        return carrier.nontx_translate(core, line)

    # -- per-frame placement decisions ----------------------------------
    def wants_speculative_marking(self) -> bool:
        carrier = self._eager if self._eager is not None else self._lazy
        assert carrier is not None
        return carrier.wants_speculative_marking()

    def uses_local_writes(self) -> bool:
        carrier = self._eager if self._eager is not None else self._lazy
        assert carrier is not None
        return carrier.uses_local_writes()

    def speculative_for(self, frame: TxFrame) -> bool:
        return self._vm(frame).wants_speculative_marking()

    def local_writes_for(self, frame: TxFrame) -> bool:
        return self._vm(frame).uses_local_writes()

    def scheme_stats(self) -> dict[str, float]:
        out = super().scheme_stats()
        if self._eager is not None and self._lazy is not None:
            out.update(
                {f"eager_{k}": v for k, v in self._eager.scheme_stats().items()}
            )
            out.update(
                {f"lazy_{k}": v for k, v in self._lazy.scheme_stats().items()}
            )
        else:
            # single carrier: it counted everything, so its view wins
            # (the wrapper's own counters never tick)
            carrier = self._eager if self._eager is not None else self._lazy
            assert carrier is not None
            out.update(carrier.scheme_stats())
        return out


def build_composed(
    composition: SchemeComposition,
    config: SimConfig,
    hierarchy: MemoryHierarchy,
) -> ComposedVM:
    """Factory used by the registry for composed scheme names."""
    return ComposedVM(config, hierarchy, composition)
