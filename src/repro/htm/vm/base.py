"""The version-manager interface.

A version manager decides *where the bytes live* during a transaction
and what commit/abort processing costs.  The simulator calls the hooks
below around every transactional event; each returns extra cycles to
charge (on top of the plain coherence cost of the data access itself,
which the simulator performs through the memory hierarchy).

Functional semantics (read-your-writes, discard-on-abort,
publish-on-commit) are handled uniformly by the simulator's write
buffers; schemes only shape timing, placement and counters.  This split
mirrors the paper: SUV never changes what a program observes, only how
many data movements realize it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.config import SimConfig
from repro.errors import UnknownSchemeError
from repro.htm.transaction import TxFrame
from repro.mem.hierarchy import AccessResult, MemoryHierarchy
from repro.trace import Tracer

#: base of the per-core undo-log regions (private, never shared)
LOG_REGION_BASE = 1 << 41
#: bytes reserved per core for its undo log
LOG_REGION_BYTES = 16 << 20


@dataclass
class VMStats:
    """Counters common to all schemes (Table V inputs)."""

    tx_writes: int = 0
    first_writes: int = 0
    #: transactionally-written L1 lines evicted before the transaction
    #: ended ("transactional data overflows" in Table V).
    cache_overflows: int = 0
    #: transactions that experienced at least one cache overflow.
    overflowed_txs: int = 0
    log_writes: int = 0
    log_restores: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        out = {
            "tx_writes": self.tx_writes,
            "first_writes": self.first_writes,
            "cache_overflows": self.cache_overflows,
            "overflowed_txs": self.overflowed_txs,
            "log_writes": self.log_writes,
            "log_restores": self.log_restores,
        }
        out.update(self.extra)
        return out


class VersionManager(ABC):
    """Scheme hook interface; one instance serves every core."""

    name: str = "abstract"
    #: policy-axis labels (see :mod:`repro.htm.policy`): which
    #: version-management and conflict-detection axis values this class
    #: realizes.  Canonical schemes pin them; third-party schemes that
    #: don't fit the axis taxonomy keep the ``custom`` default.
    vm_axis: str = "custom"
    cd_axis: str = "eager"

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.n_cores = config.n_cores
        self.stats = VMStats()
        #: the run's tracer, installed by the simulator via
        #: :meth:`attach_trace`; ``None`` for standalone scheme objects
        self.trace: Tracer | None = None
        # per-core undo-log cursors (line indices), used by the schemes
        # that keep a log (LogTM-SE always, FasTM on overflow)
        self._log_base = [
            (LOG_REGION_BASE + core * LOG_REGION_BYTES) >> 6
            for core in range(config.n_cores)
        ]
        self._log_cursor = list(self._log_base)

    def attach_trace(self, tracer: Tracer) -> None:
        """Install the run's tracer (composite schemes propagate it)."""
        self.trace = tracer

    # -- transaction lifecycle ------------------------------------------
    def on_begin(self, core: int, frame: TxFrame) -> int:
        """Extra cycles at transaction begin (outermost or nested)."""
        return 0

    @abstractmethod
    def pre_read(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        """(extra cycles, physical line) for a transactional load."""

    @abstractmethod
    def pre_write(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        """(extra cycles, physical line) for a transactional store."""

    def post_write(
        self, core: int, frame: TxFrame, line: int, result: AccessResult
    ) -> int:
        """Extra cycles after the store's coherence action completed.

        The default implementation counts write-set lines evicted from
        the L1 during the transaction (Table V's cache overflows).
        """
        vm = frame.vm
        written = vm.get("written_physical")
        if written is None:
            written = vm["written_physical"] = set()
        if result.evicted:
            overflowed = [ln for ln in result.evicted if ln in written]
            if overflowed:
                self.stats.cache_overflows += len(overflowed)
                if not vm.get("overflowed"):
                    vm["overflowed"] = True
                    self.stats.overflowed_txs += 1
        written.add(self._physical_of(core, frame, line))
        return 0

    @abstractmethod
    def commit(self, core: int, frame: TxFrame, outermost: bool) -> int:
        """Cycles of commit processing (isolation stays held meanwhile)."""

    @abstractmethod
    def abort(self, core: int, frame: TxFrame, outermost: bool) -> int:
        """Cycles of abort processing (isolation stays held meanwhile)."""

    # -- non-transactional path -----------------------------------------
    def nontx_translate(self, core: int, line: int) -> tuple[int, int]:
        """(extra cycles, physical line) for a non-transactional access.

        Only SUV pays anything here (the strong-isolation table lookup).
        """
        return 0, line

    # -- helpers ---------------------------------------------------------
    def _physical_of(self, core: int, frame: TxFrame, line: int) -> int:
        """Physical line a store to ``line`` lands on (identity default)."""
        return line

    def wants_speculative_marking(self) -> bool:
        """Should transactional stores pin their lines in the L1?"""
        return False

    def mode_for(self, core: int, site: int) -> str:
        """Execution mode for a new outermost transaction (DynTM hook)."""
        return "eager"

    def note_outcome(self, core: int, frame: TxFrame, committed: bool) -> None:
        """Feedback to history-based predictors (DynTM hook)."""

    def merge_nested(self, parent: TxFrame, child: TxFrame) -> None:
        """Fold scheme-private child-frame state into the parent."""

    def validate(self, core: int, frame: TxFrame) -> bool:
        """Commit-time validation (lazy schemes); False forces an abort."""
        return True

    def uses_local_writes(self) -> bool:
        """Do transactional stores stay core-local until commit (lazy)?"""
        return False

    # -- log plumbing shared by LogTM-SE and FasTM -----------------------
    def _log_append(self, core: int) -> int:
        """Write one undo record; returns its latency.

        The log is a private, sequentially-written region: records hit
        the L1 most of the time and occasionally miss/evict, all of
        which the cache model captures naturally.
        """
        self.stats.log_writes += 1
        line = self._log_cursor[core]
        self._log_cursor[core] += 1
        # reading the old value costs one extra L1 access; the store to
        # the log goes through the hierarchy
        res = self.hierarchy.write(core, line)
        return res.latency + self.config.l1.latency

    def _log_walk_restore(self, core: int, lines: list[int]) -> int:
        """Software undo-walk: restore ``lines`` from the log, in reverse.

        Each record costs a log load plus a store of the old value to
        its home line, exactly the "extra load and store on abort" of
        the paper's Section II.
        """
        total = 0
        for i, line in enumerate(reversed(lines)):
            log_line = self._log_cursor[core] - 1 - i
            total += self.hierarchy.read(core, max(log_line, self._log_base[core])).latency
            total += self.hierarchy.write(core, line).latency
            self.stats.log_restores += 1
        return total

    def _log_reset(self, core: int, entries: int) -> None:
        self._log_cursor[core] = max(
            self._log_base[core], self._log_cursor[core] - entries
        )

    def scheme_stats(self) -> dict[str, float]:
        """Scheme-specific statistics for reports."""
        return self.stats.as_dict()


# ======================================================================
# scheme registry
# ======================================================================

#: a factory building one VersionManager for a (config, hierarchy) pair —
#: either a VersionManager subclass or a plain function
SchemeFactory = Callable[[SimConfig, MemoryHierarchy], VersionManager]

#: canonical name -> factory, in registration order (drives CLI listings)
_SCHEME_REGISTRY: dict[str, SchemeFactory] = {}
#: normalized alias -> canonical name
_SCHEME_ALIASES: dict[str, str] = {}


def _normalize_scheme_name(name: str) -> str:
    return name.lower().replace("_", "-")


def register_scheme(name: str, *aliases: str):
    """Class/function decorator adding a scheme to the registry.

    ``@register_scheme("suv")`` on a :class:`VersionManager` subclass (or
    on a ``(config, hierarchy) -> VersionManager`` factory) makes
    ``make_version_manager("suv", ...)`` build it and lists it in
    :func:`available_schemes`.  Extra ``aliases`` resolve to the same
    factory but are not listed.
    """

    def decorate(factory: SchemeFactory) -> SchemeFactory:
        canonical = _normalize_scheme_name(name)
        if canonical in _SCHEME_REGISTRY:
            raise ValueError(f"scheme {canonical!r} is already registered")
        _SCHEME_REGISTRY[canonical] = factory
        for alias in (name, *aliases):
            key = _normalize_scheme_name(alias)
            existing = _SCHEME_ALIASES.get(key)
            if existing is not None and existing != canonical:
                raise ValueError(
                    f"alias {key!r} already points at scheme {existing!r}"
                )
            _SCHEME_ALIASES[key] = canonical
        return factory

    return decorate


def _ensure_builtin_schemes() -> None:
    """Import the bundled scheme modules so their decorators have run.

    The import order fixes the registration (and therefore listing)
    order: baseline first, the paper's contribution third, as in the
    figures.
    """
    import repro.htm.vm.logtm_se  # noqa: F401
    import repro.htm.vm.fastm  # noqa: F401
    import repro.htm.vm.suv  # noqa: F401
    import repro.htm.vm.lazy  # noqa: F401
    import repro.htm.vm.dyntm  # noqa: F401
    import repro.htm.vm.mvsuv  # noqa: F401


def available_schemes() -> tuple[str, ...]:
    """Canonical names of every registered scheme, in registration order.

    Lists the *named* schemes only; the composed four-axis space
    (``vm+cd+resolution+arbitration`` names, see
    :func:`repro.htm.policy.legal_combinations`) is enumerated
    separately so existing listings stay stable.
    """
    _ensure_builtin_schemes()
    return tuple(_SCHEME_REGISTRY)


def resolve_scheme_name(name: str) -> str:
    """Canonicalize a scheme name: a registered alias or a composed name.

    Registered aliases win (so ``dyntm+suv`` stays the canonical DynTM
    variant, not a composition); otherwise a four-token
    ``vm+cd+resolution+arbitration`` name is legality-checked and
    canonicalized.  Raises :class:`~repro.errors.UnknownSchemeError`
    with near-miss suggestions, or
    :class:`~repro.errors.IncompatiblePolicyError` for a well-formed
    but physically impossible composition.
    """
    _ensure_builtin_schemes()
    canonical = _SCHEME_ALIASES.get(_normalize_scheme_name(name))
    if canonical is not None:
        return canonical
    from repro.htm.policy import SchemeComposition

    composition = SchemeComposition.parse(name)
    if composition is not None:
        return composition.check().name
    import difflib

    registered = available_schemes()
    suggestions = difflib.get_close_matches(
        _normalize_scheme_name(name), sorted(_SCHEME_ALIASES), n=3, cutoff=0.6
    )
    raise UnknownSchemeError(
        f"unknown version-management scheme {name!r}; "
        f"registered: {', '.join(registered)} "
        "(or a composed vm+cd+resolution+arbitration name)",
        name=name,
        suggestions=[_SCHEME_ALIASES.get(s, s) for s in suggestions],
    )


def get_scheme(name: str) -> SchemeFactory:
    """The factory behind a scheme name (registered or composed).

    The public lookup of the registry: resolves aliases and composed
    four-axis names alike, raising typed
    :class:`~repro.errors.UnknownSchemeError` /
    :class:`~repro.errors.IncompatiblePolicyError` instead of a bare
    ``KeyError`` on a miss.
    """
    canonical = resolve_scheme_name(name)
    factory = _SCHEME_REGISTRY.get(canonical)
    if factory is not None:
        return factory
    from repro.htm.policy import SchemeComposition
    from repro.htm.vm.composed import build_composed

    composition = SchemeComposition.from_value(canonical)

    def _factory(
        config: SimConfig, hierarchy: MemoryHierarchy,
        composition: "SchemeComposition" = composition,
    ) -> VersionManager:
        return build_composed(composition, config, hierarchy)

    return _factory


def make_version_manager(
    name: str, config: SimConfig, hierarchy: MemoryHierarchy
) -> VersionManager:
    """Factory by scheme name.

    Bundled names: ``logtm-se``, ``fastm``, ``suv``, ``lazy``,
    ``dyntm`` (original, FasTM-based) and ``dyntm+suv``; more can be
    added with :func:`register_scheme`.  Composed four-axis names
    (``redirect+lazy+stall+serial``; see
    :func:`repro.htm.policy.compose_scheme`) build a
    :class:`~repro.htm.vm.composed.ComposedVM`.
    """
    return get_scheme(name)(config, hierarchy)
