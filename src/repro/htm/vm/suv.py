"""SUV: single-update version management (the paper's contribution).

Every transactional store is *redirected*: the new value is written to a
fresh line in the preserved pool (or back to the original line, for the
redirect-back optimization) and the mapping is recorded as a transient
redirect-table entry.  Old and new values coexist at two addresses until
the transaction ends, so commit and abort are **bit flips** on the
touched entries — no undo-log walk, no redo merge, exactly one data
movement per store regardless of outcome.  The isolation window closes
almost immediately, which is the source of the paper's speedups.

Costs that remain, and that the sensitivity studies probe:

* entries that fell out of the zero-latency first-level table pay the
  second-level (10-cycle) or in-memory (software) access on lookup and
  at commit/abort (Figures 7, 8; Table V);
* every access — including non-transactional ones, for strong
  isolation — consults the redirect summary signature; false positives
  cost a wasted lookup (Figure 5, Section IV-A);
* on a hardware table miss SUV speculates with the original address;
  if a swapped-out entry did exist in memory the access pays a
  re-execution penalty.
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.core.preserved_pool import PreservedPool
from repro.errors import InvariantViolation, PoolExhausted
from repro.core.redirect_entry import EntryState, RedirectEntry
from repro.core.redirect_table import RedirectTable
from repro.core.summary import RedirectSummaryFilter
from repro.htm.transaction import TxFrame
from repro.htm.vm.base import VersionManager, register_scheme
from repro.mem.hierarchy import MemoryHierarchy
from repro.trace import (
    POOL_ALLOC,
    POOL_RECLAIM,
    SIG_TEST,
    TABLE_HIT,
    TABLE_MISS,
    TABLE_SPILL,
)


@register_scheme("suv")
class SUV(VersionManager):
    """The single-update version manager (SUV-TM, eager mode)."""

    name = "suv"
    vm_axis = "redirect"
    cd_axis = "eager"

    #: constant cycles to flash-flip the transient entries and update the
    #: summary signature at commit/abort (a parallel hardware operation).
    SWITCH_CYCLES = 3
    #: the one data movement: copying the line's current contents to its
    #: redirect target happens L1-local, in parallel with the store.
    COPY_CYCLES = 1

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy) -> None:
        super().__init__(config, hierarchy)
        rcfg = config.redirect
        self.table = RedirectTable(config.n_cores, rcfg)
        self.pool = PreservedPool(
            rcfg.pool_base, rcfg.pool_page_bytes, rcfg.pool_max_pages
        )
        from repro.accel import resolve_backend

        self.summary = RedirectSummaryFilter(
            rcfg, accel=resolve_backend(config.htm.accel)
        )
        #: orig_lines of VALID entries with an in-flight "swap" action
        #: (redirect-back disabled): their pool lines must not be
        #: reclaimed while the owning transaction is open.
        self._inflight_swaps: set[int] = set()
        self.stats.extra.update(
            redirects=0, redirect_backs=0, remote_entry_touches=0,
            misspeculations=0, pool_exhaustions=0, pool_reclaims=0,
        )

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def _consult_table(self, core: int, line: int) -> tuple[RedirectEntry | None, int]:
        """Summary-filtered table lookup; returns (entry, extra cycles)."""
        tr = self.trace
        events = tr is not None and tr.events is not None
        if not self.summary.might_be_redirected(line):
            if events:
                tr.emit(tr.clock.now, SIG_TEST, core,
                        data={"line": line, "maybe": False})
            return None, 0
        if events:
            tr.emit(tr.clock.now, SIG_TEST, core,
                    data={"line": line, "maybe": True})
            spills_before = self.table.l2_overflows
        res = self.table.lookup(core, line)
        extra = res.latency
        if res.entry is None:
            self.summary.note_false_positive()
        elif res.level == "mem":
            # we speculated with the original address and were wrong
            self.stats.extra["misspeculations"] += 1
            extra += self.config.redirect.misspeculation_penalty
        if tr is not None:
            tr.note_table_lookup(extra)
            if events:
                kind = TABLE_MISS if res.entry is None else TABLE_HIT
                tr.emit(tr.clock.now, kind, core,
                        data={"line": line, "level": res.level,
                              "cycles": extra})
                spilled = self.table.l2_overflows - spills_before
                if spilled:
                    # the lookup's promotions pushed entries out of the
                    # hardware levels into the software overflow area
                    tr.emit(tr.clock.now, TABLE_SPILL, core,
                            data={"entries": spilled})
        return res.entry, extra

    #: committed entries reclaimed per software pass on pool exhaustion
    RECLAIM_BATCH = 8

    def _allocate_or_doom(self, frame: TxFrame) -> tuple[int | None, int]:
        """``(pool line, extra cycles)``, or ``(None, cost)`` after
        dooming the transaction.

        Pool exhaustion is survivable, in two stages.  First a software
        handler reclaims committed (stable ``VALID``) redirect entries:
        their data is copied back to the original lines, the entries are
        dropped from the table and the summary, and the pool lines
        return to the free list.  Only when nothing is reclaimable —
        every pool line is pinned by an open transaction — is this
        transaction marked ``must_abort``: the store stays untranslated
        and the ordinary abort-with-backoff path releases the
        transaction's own pool lines, so a retry (after neighbours
        commit) can succeed.
        """
        tr = self.trace
        events = tr is not None and tr.events is not None
        try:
            line = self.pool.allocate_line()
            if events:
                tr.emit(tr.clock.now, POOL_ALLOC, data={"pool_line": line})
            return line, 0
        except PoolExhausted:
            pass
        freed = self._reclaim_committed()
        if freed:
            # software handler: table/summary surgery plus one line copy
            # back to the original address per reclaimed entry
            cost = self.config.redirect.software_overhead + freed * self.COPY_CYCLES
            line = self.pool.allocate_line()
            if events:
                tr.emit(tr.clock.now, POOL_ALLOC,
                        data={"pool_line": line, "after_reclaim": True})
            return line, cost
        self.stats.extra["pool_exhaustions"] += 1
        frame.vm["must_abort"] = "pool"
        if events:
            tr.emit(tr.clock.now, POOL_ALLOC, data={"exhausted": True})
        return None, 0

    def _reclaim_committed(self) -> int:
        """Reclaim up to :attr:`RECLAIM_BATCH` committed redirections."""
        freed = 0
        for entry in list(self.table.iter_entries()):
            if freed >= self.RECLAIM_BATCH:
                break
            if entry.state is not EntryState.VALID:
                continue  # transient: pinned by an open transaction
            if entry.orig_line in self._inflight_swaps:
                continue  # its pool line is being swapped right now
            if not self.pool.contains_line(entry.redirected_line):
                continue  # redirect-back entry pointing at the original
            self.summary.remove(entry.orig_line)
            self.table.remove(entry.orig_line)
            self.pool.free_line(entry.redirected_line)
            freed += 1
        self.stats.extra["pool_reclaims"] += freed
        tr = self.trace
        if freed and tr is not None and tr.events is not None:
            tr.emit(tr.clock.now, POOL_RECLAIM, data={"freed": freed})
        return freed

    @staticmethod
    def _frame_target(frame: TxFrame, line: int) -> int | None:
        """This transaction's own redirection of ``line``, if any."""
        f: TxFrame | None = frame
        while f is not None:
            targets = f.vm.get("targets")
            if targets is not None:
                target = targets.get(line)
                if target is not None:
                    return target
            f = f.parent
        return None

    # ------------------------------------------------------------------
    # VersionManager hooks
    # ------------------------------------------------------------------
    def pre_read(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        own = self._frame_target(frame, line)
        if own is not None:
            return 0, own
        entry, extra = self._consult_table(core, line)
        if entry is not None and entry.active_for(core):
            return extra, entry.redirected_line
        return extra, line

    def pre_write(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        self.stats.tx_writes += 1
        own = self._frame_target(frame, line)
        if own is not None:
            # the line was already redirected by this transaction
            return 0, own
        self.stats.first_writes += 1
        vm = frame.vm
        targets = vm.get("targets")
        if targets is None:
            targets = vm["targets"] = {}
        actions = vm.get("entries")
        if actions is None:
            actions = vm["entries"] = []
        entry, extra = self._consult_table(core, line)

        if entry is not None and entry.state.is_transient:
            if entry.owner == core:
                # an enclosing frame's redirection not yet in our targets
                target = (
                    entry.redirected_line
                    if entry.state is EntryState.LOCAL_VALID
                    else line
                )
                targets[line] = target
                return extra, target
            raise InvariantViolation(
                "write reached a line transiently redirected by another "
                "core; conflict detection must prevent this",
                core=core, line=line, owner=entry.owner,
            )

        if entry is not None and entry.state is EntryState.VALID:
            if self.config.redirect.redirect_back:
                # redirect-back: write lands on the original address; the
                # committed mapping stays live for everyone else until we
                # commit, then the entry is reclaimed entirely.
                self.stats.extra["redirect_backs"] += 1
                entry.state = EntryState.LOCAL_INVALID
                entry.owner = core
                actions.append(("back", entry, None))
                targets[line] = line
                # the full-line copy from the redirected location supplies
                # the data (no fetch), but stale remote copies of the
                # original line must still be invalidated
                extra += self.hierarchy.invalidate_remote(core, line)
                frame.vm["allocate_write"] = True
                return extra + self.COPY_CYCLES, line
            # ablation: no redirect-back — chain to a fresh pool line
            self._inflight_swaps.add(entry.orig_line)
            new_line, reclaim_cost = self._allocate_or_doom(frame)
            extra += reclaim_cost
            if new_line is None:
                self._inflight_swaps.discard(entry.orig_line)
                return extra, line
            self.stats.extra["redirects"] += 1
            actions.append(("swap", entry, new_line))
            targets[line] = new_line
            frame.vm["allocate_write"] = True
            return extra + self.COPY_CYCLES, new_line

        # no (live) entry: create a fresh redirection into the pool
        new_line, reclaim_cost = self._allocate_or_doom(frame)
        extra += reclaim_cost
        if new_line is None:
            return extra, line
        self.stats.extra["redirects"] += 1
        new_entry = RedirectEntry(line, new_line, EntryState.LOCAL_VALID, owner=core)
        spills_before = self.table.l2_overflows
        self.table.insert(core, new_entry)
        tr = self.trace
        if tr is not None and tr.events is not None:
            spilled = self.table.l2_overflows - spills_before
            if spilled:
                tr.emit(tr.clock.now, TABLE_SPILL, core,
                        data={"entries": spilled})
        actions.append(("new", new_entry, None))
        targets[line] = new_line
        # the pool line is a fresh allocation: the store installs it in
        # the L1 without fetching anything from below
        frame.vm["allocate_write"] = True
        return extra + self.COPY_CYCLES, new_line

    def _physical_of(self, core: int, frame: TxFrame, line: int) -> int:
        own = self._frame_target(frame, line)
        return own if own is not None else line

    # ------------------------------------------------------------------
    def _entry_touch_cost(self, core: int, entry: RedirectEntry) -> int:
        """Cycles to reach an entry at end-of-transaction processing."""
        if entry.orig_line in self.table.l1_tables[core]:
            return self.config.redirect.l1_latency
        self.stats.extra["remote_entry_touches"] += 1
        if entry.orig_line in self.table.l2_table:
            return self.config.redirect.l2_latency
        return (
            self.config.redirect.memory_latency
            + self.config.redirect.software_overhead
        )

    def commit(self, core: int, frame: TxFrame, outermost: bool) -> int:
        if not outermost:
            return 2
        latency = self.SWITCH_CYCLES
        for kind, entry, aux in frame.vm.get("entries", ()):
            latency += self._entry_touch_cost(core, entry)
            if kind == "new":
                entry.on_commit()            # LOCAL_VALID → VALID
                self.summary.add(entry.orig_line)
            elif kind == "back":
                entry.on_commit()            # LOCAL_INVALID → INVALID
                self.summary.remove(entry.orig_line)
                self.table.remove(entry.orig_line)
                self.pool.free_line(entry.redirected_line)
            else:  # "swap" (redirect-back disabled)
                self.pool.free_line(entry.redirected_line)
                entry.redirected_line = aux
                self._inflight_swaps.discard(entry.orig_line)
        if self.summary.maybe_rebuild(self.table.iter_live_lines()):
            # software rebuild of the summary filter (performance hygiene)
            latency += self.config.redirect.software_overhead
        return latency

    def abort(self, core: int, frame: TxFrame, outermost: bool) -> int:
        latency = self.SWITCH_CYCLES if outermost else 2
        for kind, entry, aux in frame.vm.get("entries", ()):
            latency += self._entry_touch_cost(core, entry)
            if kind == "new":
                entry.on_abort()             # LOCAL_VALID → INVALID
                self.table.remove(entry.orig_line)
                self.pool.free_line(entry.redirected_line)
            elif kind == "back":
                entry.on_abort()             # LOCAL_INVALID → VALID
            else:  # "swap"
                self.pool.free_line(aux)
                self._inflight_swaps.discard(entry.orig_line)
        return latency

    def merge_nested(self, parent: TxFrame, child: TxFrame) -> None:
        parent.vm.setdefault("targets", {}).update(child.vm.get("targets", {}))
        parent.vm.setdefault("entries", []).extend(child.vm.get("entries", ()))

    # ------------------------------------------------------------------
    def nontx_translate(self, core: int, line: int) -> tuple[int, int]:
        entry, extra = self._consult_table(core, line)
        if entry is not None and entry.active_for(None):
            return extra, entry.redirected_line
        return extra, line

    def scheme_stats(self) -> dict[str, float]:
        out = super().scheme_stats()
        out.update({f"table_{k}": v for k, v in self.table.stats().items()})
        out.update({f"summary_{k}": v for k, v in self.summary.stats().items()})
        out["pool_pages"] = self.pool.pages_allocated
        out["pool_live_lines"] = self.pool.live_lines
        out["pool_high_water"] = self.pool.high_water
        return out
