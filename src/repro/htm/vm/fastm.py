"""FasTM: log-based eager VM with fast abort recovery (Lupon PACT'09).

FasTM exploits the inconsistency between the L1 and the lower memory
hierarchy: before a transaction's first store to a dirty line it writes
the old value back to the L2, then keeps the *new* value only in the L1
(marked speculative).  Abort then reduces to flash-invalidating the
speculative lines (old values refetch from the L2 naturally).

If a speculative line is evicted during the transaction (capacity or
conflict), FasTM *degenerates to LogTM-SE for that line*: the store is
also logged, and abort must software-walk those records.  This is the
behaviour the paper contrasts SUV against in Figure 6 and Table V.
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.htm.transaction import TxFrame
from repro.htm.vm.base import VersionManager, register_scheme
from repro.mem.hierarchy import AccessResult, MemoryHierarchy
from repro.trace import FLASH_ABORT


@register_scheme("fastm")
class FasTM(VersionManager):
    """L1-pinned eager VM with per-line LogTM-SE fallback on overflow."""

    name = "fastm"
    vm_axis = "flash"
    cd_axis = "eager"

    #: cycles of the flash commit (clear speculative bits)
    COMMIT_CYCLES = 6
    #: cycles of the flash abort (gang-invalidate speculative lines)
    FAST_ABORT_CYCLES = 14

    def __init__(self, config: SimConfig, hierarchy: MemoryHierarchy) -> None:
        super().__init__(config, hierarchy)
        self.stats.extra["writeback_flushes"] = 0
        self.stats.extra["degenerated_aborts"] = 0

    def wants_speculative_marking(self) -> bool:
        return True

    def pre_read(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        return 0, line

    def pre_write(self, core: int, frame: TxFrame, line: int) -> tuple[int, int]:
        self.stats.tx_writes += 1
        vm = frame.vm
        first: set[int] | None = vm.get("spec_lines")
        if first is None:
            first = vm["spec_lines"] = set()
        extra = 0
        if line not in first:
            self.stats.first_writes += 1
            first.add(line)
            # write back the pre-transaction dirty data so the L2 holds
            # the old value ("it first writes back the dirty data in the
            # L1 cache to the lower-level memory")
            flush = self.hierarchy.flush_to_l2(core, line)
            if flush:
                self.stats.extra["writeback_flushes"] += 1
            extra += flush
        return extra, line

    def post_write(
        self, core: int, frame: TxFrame, line: int, result: AccessResult
    ) -> int:
        extra = super().post_write(core, frame, line, result)
        if result.evicted_speculative:
            vm = frame.vm
            spec: set[int] = vm.setdefault("spec_lines", set())
            overflowed: list[int] = vm.setdefault("overflow_order", [])
            logged: set[int] = vm.setdefault("overflow_lines", set())
            for ln in result.evicted_speculative:
                if ln in spec and ln not in logged:
                    # the line left the L1 carrying uncommitted data: fall
                    # back to undo logging for it (degeneration to
                    # LogTM-SE)
                    logged.add(ln)
                    overflowed.append(ln)
                    extra += self._log_append(core)
        return extra

    def commit(self, core: int, frame: TxFrame, outermost: bool) -> int:
        if not outermost:
            return 2
        self.hierarchy.drop_speculative(core, invalidate=False)
        self._log_reset(core, len(frame.vm.get("overflow_lines", ())))
        return self.COMMIT_CYCLES

    def abort(self, core: int, frame: TxFrame, outermost: bool) -> int:
        # flash-invalidate the speculative lines still in the L1 ...
        self.hierarchy.drop_speculative(core, invalidate=True)
        latency = self.FAST_ABORT_CYCLES
        overflowed: list[int] = frame.vm.get("overflow_order", [])
        if overflowed:
            # ... but overflowed lines need the LogTM-SE software walk
            self.stats.extra["degenerated_aborts"] += 1
            latency += self.config.htm.abort_trap_cycles
            latency += self._log_walk_restore(core, overflowed)
        self._log_reset(core, len(overflowed))
        tr = self.trace
        if tr is not None and tr.events is not None:
            # the gang-invalidate is near-instant unless lines overflowed
            # into the undo log, in which case the walk dominates
            tr.emit(tr.clock.now, FLASH_ABORT, core,
                    data={"overflowed": len(overflowed), "cycles": latency})
        return latency

    def merge_nested(self, parent: TxFrame, child: TxFrame) -> None:
        parent.vm.setdefault("spec_lines", set()).update(
            child.vm.get("spec_lines", ())
        )
        parent.vm.setdefault("overflow_lines", set()).update(
            child.vm.get("overflow_lines", ())
        )
        parent.vm.setdefault("overflow_order", []).extend(
            child.vm.get("overflow_order", ())
        )
