"""Version-management schemes.

* :class:`~repro.htm.vm.logtm_se.LogTMSE` — eager VM with an undo log
  and a software abort walk (the paper's baseline).
* :class:`~repro.htm.vm.fastm.FasTM` — new values pinned in the L1,
  fast abort unless the L1 overflows (then per-line LogTM-SE fallback).
* :class:`~repro.htm.vm.suv.SUV` — the paper's contribution: every
  transactional store redirected through the redirect table; commit and
  abort are bit flips.
* :class:`~repro.htm.vm.lazy.LazyVM` — redo-in-L1 lazy VM used as
  DynTM's lazy execution mode (exhibits the merge pathology).
* :class:`~repro.htm.vm.dyntm.DynTM` — history-based eager/lazy mode
  selector over a pluggable eager VM (FasTM = original DynTM,
  SUV = the paper's DynTM+SUV).
* :class:`~repro.htm.vm.composed.ComposedVM` — any legal point of the
  four-axis policy space (:mod:`repro.htm.policy`), assembled from the
  canonical VMs plus the conflict-detection policy objects.

Scheme lookup goes through :func:`get_scheme` /
:func:`make_version_manager`, which accept registered names
(``"suv"``) and composed four-axis names
(``"redirect+lazy+stall+serial"``, see :func:`compose_scheme`) alike.
"""

from repro.htm.policy import (
    CommitArbitration,
    ConflictDetection,
    ConflictResolution,
    SchemeComposition,
    compose_scheme,
    legal_combinations,
)
from repro.htm.vm.base import (
    VersionManager,
    available_schemes,
    get_scheme,
    make_version_manager,
    register_scheme,
    resolve_scheme_name,
)

# scheme modules in registration (= listing) order: baseline first,
# the paper's contribution third, matching the figures
from repro.htm.vm.logtm_se import LogTMSE
from repro.htm.vm.fastm import FasTM
from repro.htm.vm.suv import SUV
from repro.htm.vm.lazy import LazyVM
from repro.htm.vm.dyntm import DynTM
from repro.htm.vm.composed import ComposedVM, RedirectLazyVM

__all__ = [
    "CommitArbitration",
    "ComposedVM",
    "ConflictDetection",
    "ConflictResolution",
    "DynTM",
    "FasTM",
    "LazyVM",
    "LogTMSE",
    "RedirectLazyVM",
    "SUV",
    "SchemeComposition",
    "VersionManager",
    "available_schemes",
    "compose_scheme",
    "get_scheme",
    "legal_combinations",
    "make_version_manager",
    "register_scheme",
    "resolve_scheme_name",
]
