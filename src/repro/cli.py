"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one workload under one scheme and print the
  breakdown and scheme statistics.
* ``compare`` — run several schemes on one workload and print the
  Figure 6/9-style normalized comparison.
* ``sweep`` — sweep one redirect-table parameter (Figure 7/8 style).
* ``matrix`` — run a (workload × scheme × seed) matrix across worker
  processes, with on-disk result caching; ``--resume JOURNAL``
  checkpoints every spec to a write-ahead journal so a killed campaign
  resumes where it died.
* ``cache`` — verify (checksums) or summarize the on-disk result cache;
  corrupt entries are quarantined, never silently trusted.
* ``chaos`` — chaos campaigns against the runner itself: inject worker
  crashes/hangs/corruption, kill the campaign mid-flight, resume it,
  and audit the resilience invariants.
* ``faults`` — run a fault-injection campaign (schemes × workloads ×
  fault plans) with the atomicity oracle enabled on every run.
* ``bench`` — run the pinned host-performance matrix and write a
  schema-versioned ``BENCH_<date>.json``.
* ``compare-bench`` — diff two BENCH files; exits non-zero past the
  regression thresholds (the CI gate).
* ``study`` — design-space study: sweep the legal policy space over a
  workload set, rank combinations, compute per-workload Pareto fronts
  over (cycles, aborts, pool high-water) and write a schema-versioned
  ``STUDY_<date>.json``; ``study report`` re-renders one, ``study
  compare`` diffs two modulo volatile sections (the determinism gate).
* ``hwcost`` — print the Table VII / Section V-C hardware-cost report.
* ``list`` — list workloads, schemes and fault-plan presets.

The commands are thin adapters over the :mod:`repro.runner` API:
``argparse`` namespaces become :class:`~repro.runner.ExperimentSpec`
values, which the library-level :func:`~repro.runner.run_experiment` /
:func:`~repro.runner.run_matrix` execute.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.config import SimConfig
from repro.errors import IncompatiblePolicyError, UnknownSchemeError
from repro.faults import list_presets
from repro.htm.policy import RESOLUTION_AXIS
from repro.htm.vm.base import available_schemes, resolve_scheme_name
from repro.runner import (
    ArtifactStore,
    CampaignReport,
    ExperimentSpec,
    ResultCache,
    RunMatrix,
    Runner,
    run_experiment,
    run_matrix,
)
from repro.runner.chaos import CHAOS_PRESETS
from repro.simulator import SimResult
from repro.stats.report import (
    format_breakdown_table,
    format_phase_table,
    format_table,
)
from repro.workloads import WORKLOAD_NAMES

SCHEMES = available_schemes()

_WORKLOAD_CHOICES = WORKLOAD_NAMES + ("synthetic",)


def _scheme_name(value: str) -> str:
    """``argparse`` type: any registered or composed scheme name."""
    try:
        return resolve_scheme_name(value)
    except (UnknownSchemeError, IncompatiblePolicyError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _scheme_from_args(args: argparse.Namespace, scheme: str):
    """The scheme the namespace describes: per-axis flags override."""
    if getattr(args, "vm", None) or getattr(args, "cd", None):
        return {
            "vm": args.vm or "redirect",
            "cd": args.cd or "eager",
            "resolution": args.resolution,
            "arbitration": getattr(args, "arbitration", "serial"),
        }
    return scheme


def _spec_from_args(
    args: argparse.Namespace, scheme, **config_overrides
) -> ExperimentSpec:
    """The experiment an ``argparse`` namespace describes."""
    versions_k = getattr(args, "versions_k", 0)
    if versions_k:
        config_overrides.setdefault("redirect.versions_k", versions_k)
    return ExperimentSpec(
        workload=args.workload,
        scheme=scheme,
        scale=args.scale,
        seed=args.seed,
        cores=args.cores,
        threads=args.threads,
        resolution=args.resolution,
        arbitration=getattr(args, "arbitration", "serial"),
        stagger=args.stagger,
        verify=not args.no_verify,
        config_overrides=config_overrides,
        fault_plan=getattr(args, "fault_plan", "") or "",
        check=getattr(args, "check", False),
    )


def _build_config(args: argparse.Namespace, **redirect_overrides) -> SimConfig:
    """Thin adapter kept for back-compat: the SimConfig of ``args``."""
    overrides = {f"redirect.{k}": v for k, v in redirect_overrides.items()}
    return _spec_from_args(args, "suv", **overrides).build_config()


def _run_one(
    args: argparse.Namespace, scheme: str, **config_overrides
) -> SimResult:
    """Thin adapter over :func:`run_experiment` for one CLI run."""
    return run_experiment(_spec_from_args(args, scheme, **config_overrides))


def _run_specs(args: argparse.Namespace, specs: list[ExperimentSpec]) -> list[SimResult]:
    """Run CLI specs through the runner; exits non-zero on any failure."""
    outcomes = run_matrix(specs, max_workers=getattr(args, "jobs", 1), retries=0)
    failed = [out for out in outcomes if not out.ok]
    if failed:
        for out in failed:
            print(f"error: {out.spec.label()}: {out.error}", file=sys.stderr)
        raise SystemExit(1)
    return [out.result for out in outcomes]


def cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args, _scheme_from_args(args, args.scheme))
    scheme_label = spec.scheme
    if args.trace:
        from repro.runner import execute_spec
        from repro.trace import Tracer

        tracer = Tracer(events=True)
        res = execute_spec(spec, trace=tracer)
        if args.trace_format == "chrome":
            tracer.write_chrome_trace(args.trace)
        else:
            tracer.write_jsonl(args.trace)
        print(f"trace: {res.phase_breakdown['events']['recorded']} events "
              f"({res.phase_breakdown['events']['dropped']} dropped) "
              f"-> {args.trace} [{args.trace_format}]")
    else:
        res = run_experiment(spec)
    if res.policy_axes:
        print("axes:", " ".join(
            f"{axis}={value}" for axis, value in res.policy_axes.items()
        ))
    print(f"{args.workload} under {scheme_label}: "
          f"{res.total_cycles:,} cycles, {res.commits} commits, "
          f"{res.aborts} aborts (ratio {res.abort_ratio:.1%}), "
          f"{res.n_threads} threads, "
          f"{res.context_switches} context switches")
    if res.fault_trace:
        hits = sum(1 for ev in res.fault_trace if ev.get("hit"))
        print(f"faults: {len(res.fault_trace)} events injected "
              f"({hits} hit)")
    if res.oracle is not None:
        print("oracle:", "PASSED" if res.oracle.get("passed") else "FAILED",
              f"({res.oracle.get('reads_checked', 0)} reads checked, "
              f"{res.oracle.get('entries', 0)} serial entries)")
    rows = [(k, v, f"{res.breakdown.fraction(k):.1%}")
            for k, v in res.breakdown.as_dict().items()]
    print(format_table(["component", "cycles", "share"], rows))
    if res.phase_breakdown:
        print()
        print(format_phase_table({scheme_label: res.phase_breakdown}))
    if args.stats:
        stats = [(k, v) for k, v in sorted(res.scheme_stats.items()) if v]
        print()
        print(format_table(["statistic", "value"], stats))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    specs = [_spec_from_args(args, scheme) for scheme in args.schemes]
    results = dict(zip(args.schemes, _run_specs(args, specs)))
    for scheme in args.schemes:
        print(f"{scheme:10s} {results[scheme].total_cycles:>12,} cycles")
    print()
    print(format_breakdown_table(
        {k: v.breakdown for k, v in results.items()},
        baseline=args.schemes[0],
        title=f"{args.workload} — normalized to {args.schemes[0]}",
    ))
    return 0


#: sweep stat columns by preference: the SUV redirect-table keys when the
#: scheme reports them, otherwise the undo-log/cache counters every
#: scheme carries — so a ``--scheme logtm-se`` sweep no longer prints
#: misleading all-zero SUV columns.
_SWEEP_TABLE_STATS = (
    ("table_l1_miss_rate", "L1-table miss rate", lambda v: f"{v:.3f}"),
    ("table_l2_overflows", "L2 ovf", lambda v: int(v)),
)
_SWEEP_GENERIC_STATS = (
    ("log_writes", "log writes", lambda v: int(v)),
    ("log_restores", "log restores", lambda v: int(v)),
    ("cache_overflows", "cache ovf", lambda v: int(v)),
)


def _sweep_stat_columns(results: list[SimResult]):
    present: set[str] = set()
    for res in results:
        present.update(res.scheme_stats)
    columns = [c for c in _SWEEP_TABLE_STATS if c[0] in present]
    return columns or [c for c in _SWEEP_GENERIC_STATS if c[0] in present]


def cmd_sweep(args: argparse.Namespace) -> int:
    specs = [
        _spec_from_args(args, args.scheme,
                        **{f"redirect.{args.parameter}": value})
        for value in args.values
    ]
    results = _run_specs(args, specs)
    columns = _sweep_stat_columns(results)
    rows = [
        [value, res.total_cycles,
         *(fmt(res.scheme_stats.get(key, 0.0)) for key, _, fmt in columns)]
        for value, res in zip(args.values, results)
    ]
    print(format_table(
        [args.parameter, "exec cycles", *(header for _, header, _ in columns)],
        rows,
        title=f"{args.workload} / {args.scheme} — sweep of {args.parameter}",
    ))
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    matrix = RunMatrix(
        workloads=tuple(args.workloads),
        schemes=tuple(args.schemes),
        vms=tuple(args.vms),
        cds=tuple(args.cds),
        scales=(args.scale,),
        seeds=tuple(args.seeds),
        cores=(args.cores,),
        threads=(args.threads,),
        resolutions=(args.resolution,),
        arbitrations=(args.arbitration,),
        staggers=(args.stagger,),
        fault_plans=tuple(getattr(args, "fault_plans", None) or ("",)),
        verify=not args.no_verify,
        check=getattr(args, "check", False),
    )
    specs = matrix.specs()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    artifacts = ArtifactStore(args.artifacts) if args.artifacts else None
    runner = Runner(
        max_workers=args.jobs or None,
        cache=cache,
        timeout=args.timeout,
        retries=args.retries,
        artifacts=artifacts,
        progress=not args.quiet,
        journal=getattr(args, "resume", None) or None,
    )
    started = time.monotonic()
    try:
        outcomes = [out for out in runner.run(specs) if out is not None]
    finally:
        runner.close()
    elapsed = time.monotonic() - started

    rows = []
    for out in outcomes:
        res = out.result
        rows.append([
            out.spec.workload, out.spec.scheme, out.spec.seed,
            f"{res.total_cycles:,}" if res else "-",
            res.commits if res else "-",
            res.aborts if res else "-",
            f"{res.abort_ratio:.1%}" if res else "-",
            "cache" if out.cached else
            (f"{out.duration_s:.1f}s" if out.ok else "FAILED"),
        ])
    print(format_table(
        ["workload", "scheme", "seed", "cycles", "commits", "aborts",
         "abort%", "source"],
        rows,
        title=f"matrix — {len(specs)} specs at scale {args.scale}, "
              f"{args.cores} cores",
    ))
    hits = sum(1 for out in outcomes if out.cached)
    failed = [out for out in outcomes if not out.ok]
    print()
    print(f"{len(specs)} specs | {len(specs) - len(failed)} ok, "
          f"{len(failed)} failed | cache hits {hits}/{len(specs)} "
          f"({hits / len(specs):.0%}) | workers={runner.max_workers} | "
          f"{elapsed:.1f}s")
    report = CampaignReport.collect(
        outcomes, runner=runner, cache=cache, wall_s=elapsed
    )
    print()
    print(report.format())
    if artifacts is not None:
        artifacts.append_report(report.to_dict())
    return 1 if failed else 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Verify (checksums) or summarize the on-disk result cache."""
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        for key, value in sorted(cache.stats().items()):
            print(f"{key:18s}: {value}")
        return 0
    report = cache.verify()
    print(f"cache verify: {report['checked']} entries checked, "
          f"{report['ok']} ok, {len(report['quarantined'])} quarantined")
    for entry in report["quarantined"]:
        print(f"  quarantined {entry['entry']}: {entry['reason']}")
    if report["quarantined"]:
        print(f"quarantined entries moved to "
              f"{os.path.join(args.cache_dir, 'quarantine')}")
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos campaigns against the runner: kill, resume, audit.

    One campaign per (preset × chaos seed): the spec matrix runs under
    injected faults, is killed mid-flight, resumed over the same journal
    and cache, and audited against the resilience invariants (no spec
    lost, none completed twice, resume converges, results byte-identical
    to an uninterrupted run, failures typed).  Exits non-zero if any
    campaign violates an invariant.
    """
    from repro.runner import execute_spec
    from repro.runner.chaos import (
        chaos_plan,
        run_chaos_campaign,
        write_chaos_report,
    )

    matrix = RunMatrix(
        workloads=tuple(args.workloads),
        schemes=tuple(args.schemes),
        scales=(args.scale,),
        seeds=(args.sim_seed,),
        cores=(args.cores,),
    )
    specs = matrix.specs()
    # one uninterrupted reference run, shared by every campaign
    reference = {s.spec_hash(): execute_spec(s).to_json() for s in specs}
    rows = []
    reports = []
    for preset in args.presets:
        for chaos_seed in args.seeds:
            plan = chaos_plan(preset, seed=chaos_seed)
            if args.hang_s is not None:
                plan = plan.with_(hang_s=args.hang_s)
            root = os.path.join(args.root, f"{preset}-s{chaos_seed}")
            verdict = run_chaos_campaign(
                specs, plan, root,
                jobs=args.jobs,
                timeout=args.timeout,
                retries=args.retries,
                kill_after=args.kill_after,
                reference=reference,
            )
            write_chaos_report(verdict, os.path.join(root, "report.json"))
            reports.append(verdict)
            fired = ", ".join(
                f"{kind}×{n}"
                for kind, n in sorted(verdict.faults_fired.items())
            ) or "-"
            rows.append([
                preset, chaos_seed, verdict.n_specs, verdict.killed_after,
                fired, "pass" if verdict.passed else "FAIL",
            ])
    print(format_table(
        ["preset", "seed", "specs", "killed@", "faults fired", "verdict"],
        rows,
        title=f"chaos — {len(reports)} campaigns over {len(specs)} specs "
              f"at scale {args.scale}",
    ))
    failures = [r for r in reports if not r.passed]
    print()
    print(f"{len(reports)} campaigns | {len(reports) - len(failures)} passed, "
          f"{len(failures)} failed | reports under {args.root}/")
    for verdict in failures:
        for violation in verdict.violations:
            print(f"VIOLATION [{verdict.plan} seed={verdict.seed}]: "
                  f"{violation}")
    return 1 if failures else 0


def cmd_faults(args: argparse.Namespace) -> int:
    """A fault-injection campaign with the oracle armed on every run.

    Crosses schemes × workloads × fault plans (always including the
    fault-free baseline) and prints one row per run: cycles, aborts,
    injected fault events, and the oracle verdict.  Exits non-zero if
    any run fails its oracle or crashes.
    """
    plans = ("",) + tuple(args.plans)
    matrix = RunMatrix(
        workloads=tuple(args.workloads),
        schemes=tuple(args.schemes),
        scales=(args.scale,),
        seeds=(args.seed,),
        cores=(args.cores,),
        threads=(args.threads,),
        resolutions=(args.resolution,),
        arbitrations=(args.arbitration,),
        staggers=(args.stagger,),
        fault_plans=plans,
        verify=not args.no_verify,
        check=True,
    )
    specs = matrix.specs()
    outcomes = run_matrix(
        specs, max_workers=args.jobs or None, retries=0, cache=None
    )
    rows = []
    failures = 0
    for out in outcomes:
        res = out.result
        if res is None:
            failures += 1
            rows.append([
                out.spec.workload, out.spec.scheme,
                out.spec.fault_plan or "(none)", "-", "-", "-",
                f"ERROR: {out.error}",
            ])
            continue
        injected = sum(1 for ev in res.fault_trace if ev.get("hit"))
        verdict = "pass" if (res.oracle or {}).get("passed") else "FAIL"
        if verdict == "FAIL":
            failures += 1
        rows.append([
            out.spec.workload, out.spec.scheme,
            out.spec.fault_plan or "(none)",
            f"{res.total_cycles:,}", res.aborts, injected, verdict,
        ])
    print(format_table(
        ["workload", "scheme", "fault plan", "cycles", "aborts",
         "faults hit", "oracle"],
        rows,
        title=f"fault campaign — {len(specs)} runs at scale {args.scale}, "
              f"oracle armed",
    ))
    print()
    print(f"{len(specs)} runs | {len(specs) - failures} ok, "
          f"{failures} failed")
    return 1 if failures else 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the pinned benchmark matrix and write ``BENCH_<date>.json``.

    Per entry: fidelity metrics (simulated cycles/commits/aborts and
    the isolation-window accounting, seed-deterministic) plus host
    throughput (wall seconds, events/s, txs/s).  Gate with
    ``repro compare-bench``.
    """
    from repro.bench import run_bench, write_bench

    doc = run_bench(scale=args.scale)
    path = write_bench(doc, args.out)
    rows = [
        [e["label"], f"{e['total_cycles']:,}", e["commits"], e["aborts"],
         f"{e['wall_s']:.3f}", f"{e['events_per_s']:,.0f}",
         f"{e['txs_per_s']:,.0f}"]
        for e in doc["entries"]
    ]
    print(format_table(
        ["run", "cycles", "commits", "aborts", "wall (s)", "events/s",
         "txs/s"],
        rows,
        title=f"bench — scale {args.scale}, "
              f"calibration {doc['calibration_s']:.3f}s, "
              f"accel {doc['provenance']['accel_backend']}",
    ))
    print()
    print(format_phase_table({
        e["label"]: e["phase_breakdown"] for e in doc["entries"]
    }))
    print()
    print(f"wrote {path}")
    return 0


def cmd_compare_bench(args: argparse.Namespace) -> int:
    """Diff two BENCH files; exit non-zero past the regression gate."""
    from repro.bench import compare, load_bench

    baseline = load_bench(args.baseline)
    current = load_bench(args.current)
    problems = compare(baseline, current, wall_threshold=args.wall_threshold)
    if problems:
        print(f"REGRESSION: {len(problems)} problem(s) vs {args.baseline}")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"ok: {len(current.get('entries', ()))} entries within "
          f"{args.wall_threshold:.0%} of {args.baseline}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one spec on the host and print/emit the hotspot report.

    ``repro bench`` tells you how fast; ``repro profile`` tells you
    where the host time goes: top-N cProfile hotspots next to the
    simulated per-component cycle table, optionally as JSON for
    machine consumption.
    """
    from repro.profiling import format_profile, profile_spec

    spec = _spec_from_args(args, args.scheme)
    report = profile_spec(spec, top=args.top, sort=args.sort)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_profile(report))
    return 0


def cmd_hwcost(args: argparse.Namespace) -> int:
    from repro.hwcost.cacti import CactiLite
    from repro.hwcost.storage import suv_overhead_report

    rows = [
        (e.tech_nm, e.access_time_ns, e.read_energy_nj, e.write_energy_nj,
         e.area_mm2, e.cycles_at(1.2))
        for e in CactiLite().table_vii()
    ]
    print(format_table(
        ["tech (nm)", "access (ns)", "read (nJ)", "write (nJ)",
         "area (mm²)", "cycles @1.2GHz"],
        rows, title="Table VII — first-level redirect table (CACTI-lite)",
    ))
    print()
    print(format_table(
        ["figure", "value"],
        [(k, f"{v:.4g}") for k, v in suv_overhead_report().items()],
        title="Section V-C overhead report",
    ))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("workloads:", ", ".join(_WORKLOAD_CHOICES))
    print("schemes  :", ", ".join(SCHEMES), "(+ composed, see `repro schemes`)")
    print("scales   : tiny, small, full")
    print("fault plans:", ", ".join(list_presets()))
    return 0


def _schemes_doc() -> dict:
    """The scheme registry + policy space as one JSON-friendly document."""
    from repro.htm.policy import (
        ARBITRATION_AXIS,
        CANONICAL_AXES,
        CD_AXIS,
        RESOLUTION_AXIS,
        VM_AXIS,
        iter_scheme_space,
    )

    legal, illegal = [], []
    for comp in iter_scheme_space():
        reason = comp.illegal_reason()
        if reason is None:
            legal.append(comp.name)
        else:
            illegal.append({"axes": comp.as_dict(), "reason": reason})
    return {
        "axes": {
            "vm": list(VM_AXIS),
            "cd": list(CD_AXIS),
            "resolution": list(RESOLUTION_AXIS),
            "arbitration": list(ARBITRATION_AXIS),
        },
        "canonical": [
            {"name": name, "vm": vm, "cd": cd}
            for name, (vm, cd) in CANONICAL_AXES.items()
        ],
        "legal": legal,
        "illegal": illegal,
        "counts": {"legal": len(legal), "total": len(legal) + len(illegal)},
    }


def scheme_table_markdown() -> str:
    """The README scheme table, generated from the registry."""
    doc = _schemes_doc()
    lines = [
        "| Scheme | VM axis | CD axis | Resolution | Arbitration |",
        "|--------|---------|---------|------------|-------------|",
    ]
    for row in doc["canonical"]:
        lines.append(
            f"| `{row['name']}` | {row['vm']} | {row['cd']} "
            "| config (`stall`) | config (`serial`) |"
        )
    counts = doc["counts"]
    lines.append("")
    lines.append(
        f"Composed names cover the legal subset of the four-axis space "
        f"({counts['legal']} of {counts['total']} combinations; "
        "`repro schemes --list` prints them all)."
    )
    return "\n".join(lines)


def cmd_schemes(args: argparse.Namespace) -> int:
    """Describe the scheme registry and the composed policy space."""
    doc = _schemes_doc()
    if args.json:
        if args.list:
            print(json.dumps(doc["legal"], indent=2))
        else:
            print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.markdown:
        print(scheme_table_markdown())
        return 0
    if args.list:
        for name in doc["legal"]:
            print(name)
        return 0
    print(format_table(
        ["scheme", "vm", "cd"],
        [[row["name"], row["vm"], row["cd"]] for row in doc["canonical"]],
        title="canonical schemes (resolution/arbitration from HTMConfig)",
    ))
    print()
    for axis, values in doc["axes"].items():
        print(f"{axis:12s}: {', '.join(values)}")
    counts = doc["counts"]
    print(f"\ncomposed space: {counts['legal']} legal of "
          f"{counts['total']} vm+cd+resolution+arbitration combinations "
          "(`repro schemes --list`)")
    return 0


#: resolution choices come from the policy registry, never a hardcoded
#: list — new contention managers appear in every ``--resolution`` flag
#: (and in ``repro schemes``) the moment they are registered
_RESOLUTIONS = RESOLUTION_AXIS


def _split_commas(values: list[str]) -> tuple[str, ...]:
    """Flatten ``["a,b", "c"]`` → ``("a", "b", "c")`` (argparse helper)."""
    out: list[str] = []
    for value in values:
        out.extend(v for v in value.split(",") if v)
    return tuple(out)


def cmd_study(args: argparse.Namespace) -> int:
    """Design-space study: sweep, rank, Pareto-front, report."""
    from repro.study import (
        StudySpace,
        compare_studies,
        format_csv,
        format_markdown,
        load_study,
        run_study,
        write_study,
    )

    sub_cmd = getattr(args, "study_cmd", None)
    if sub_cmd == "report":
        doc = load_study(args.study_file)
        print(format_csv(doc) if args.csv else format_markdown(doc), end="")
        return 0
    if sub_cmd == "compare":
        problems = compare_studies(
            load_study(args.baseline), load_study(args.current)
        )
        if problems:
            print(f"{len(problems)} difference(s) "
                  f"(volatile sections ignored):")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print("studies identical (volatile sections ignored)")
        return 0

    try:
        space = StudySpace(
            workloads=_split_commas(args.workloads),
            scale=args.scale,
            seeds=tuple(args.seeds),
            cores=args.cores,
            threads=args.threads,
            stagger=args.stagger,
            vms=_split_commas(args.vms),
            cds=_split_commas(args.cds),
            resolutions=_split_commas(args.resolutions),
            arbitrations=_split_commas(args.arbitrations),
            verify=not args.no_verify,
        )
        space.matrix()  # raises typed when the filters leave nothing
    except IncompatiblePolicyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    unknown = [w for w in space.workloads if w not in _WORKLOAD_CHOICES]
    if unknown:
        print(f"error: unknown workload(s): {', '.join(unknown)} "
              f"(see `repro list`)", file=sys.stderr)
        return 2
    if not args.quiet:
        desc = space.describe()
        print(f"study: {len(space.workloads)} workload(s) × "
              f"{desc['combos']} legal combos × {len(space.seeds)} seed(s) "
              f"= {len(space.specs())} runs", file=sys.stderr)
    doc = run_study(
        space,
        jobs=args.jobs or None,
        cache_dir=None if args.no_cache else args.cache_dir,
        journal=getattr(args, "resume", None) or None,
        timeout=args.timeout,
        retries=args.retries,
        progress=not args.quiet,
    )
    path = write_study(doc, args.out, date=args.date)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_markdown(doc), end="")
    print(f"\nstudy written to {path}", file=sys.stderr)
    return 1 if doc["failures"] else 0


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cores", type=int, default=16)
    p.add_argument("--threads", type=int, default=0,
                   help="software threads (default = cores; more than "
                        "cores enables time-multiplexing)")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--scale", choices=("tiny", "small", "full"),
                   default="small")
    p.add_argument("--resolution", "--policy", choices=_RESOLUTIONS,
                   default="stall",
                   help="conflict-resolution axis (--policy is the "
                        "deprecated spelling)")
    p.add_argument("--arbitration", default="serial",
                   help="commit-arbitration axis: serial or widthN "
                        "(N >= 2); applies to lazy-mode commits")
    p.add_argument("--stagger", type=int, default=512)
    p.add_argument("--no-verify", action="store_true",
                   help="skip the workload's functional verifier")
    p.add_argument("--fault-plan", default="",
                   help="fault plan: a preset name (see `repro list`) "
                        "or inline FaultPlan JSON")
    p.add_argument("--check", action="store_true",
                   help="run the atomicity oracle after the simulation")
    p.add_argument("--versions-k", type=int, default=0,
                   help="mvsuv: committed versions retained per line "
                        "(0 = config default)")


def _add_jobs(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = in-process serial)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SUV-TM reproduction (Yan et al., IPDPS 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run one workload under one scheme")
    p.add_argument("workload", choices=_WORKLOAD_CHOICES)
    p.add_argument("scheme", type=_scheme_name, nargs="?", default="suv",
                   help="a registered scheme name or a composed "
                        "vm+cd+resolution+arbitration name")
    p.add_argument("--vm",
                   choices=("undo", "flash", "redirect", "buffer", "mvsuv"),
                   help="version-management axis; with --cd/--resolution/"
                        "--arbitration this composes a scheme and "
                        "overrides the positional name")
    p.add_argument("--cd", choices=("eager", "lazy", "adaptive"),
                   help="conflict-detection axis (see --vm)")
    p.add_argument("--stats", action="store_true")
    p.add_argument("--trace", metavar="PATH",
                   help="record the event trace to PATH (bypasses the "
                        "result cache)")
    p.add_argument("--trace-format", choices=("chrome", "jsonl"),
                   default="chrome",
                   help="chrome = load in chrome://tracing / Perfetto; "
                        "jsonl = one event object per line")
    _add_common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compare", help="compare schemes on one workload")
    p.add_argument("workload", choices=_WORKLOAD_CHOICES)
    p.add_argument("--schemes", nargs="+", default=["logtm-se", "fastm", "suv"],
                   type=_scheme_name)
    _add_common(p)
    _add_jobs(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("sweep", help="sweep a redirect-table parameter")
    p.add_argument("workload", choices=_WORKLOAD_CHOICES)
    p.add_argument("parameter",
                   choices=("l1_entries", "l2_entries", "l2_latency"))
    p.add_argument("values", type=int, nargs="+")
    p.add_argument("--scheme", default="suv", type=_scheme_name)
    _add_common(p)
    _add_jobs(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "matrix",
        help="run a workload×scheme×seed matrix in parallel, with caching",
    )
    p.add_argument("--workloads", nargs="+", default=["ssca2", "intruder",
                                                      "kmeans", "vacation"],
                   choices=_WORKLOAD_CHOICES)
    p.add_argument("--schemes", nargs="+", default=["logtm-se", "fastm", "suv"],
                   type=_scheme_name)
    p.add_argument("--vms", nargs="+", default=[],
                   choices=("undo", "flash", "redirect", "buffer", "mvsuv"),
                   help="version-management axis sweep; with --cds/"
                        "--resolution/--arbitration replaces --schemes by "
                        "the legal composed cross product")
    p.add_argument("--cds", nargs="+", default=[],
                   choices=("eager", "lazy", "adaptive"),
                   help="conflict-detection axis sweep (see --vms)")
    p.add_argument("--seeds", type=int, nargs="+", default=[3])
    p.add_argument("--scale", choices=("tiny", "small", "full"),
                   default="tiny")
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--threads", type=int, default=0)
    p.add_argument("--resolution", "--policy", choices=_RESOLUTIONS,
                   default="stall")
    p.add_argument("--arbitration", default="serial")
    p.add_argument("--stagger", type=int, default=512)
    p.add_argument("--no-verify", action="store_true")
    p.add_argument("--fault-plans", nargs="+", default=[],
                   help="fault-plan axis (preset names or inline JSON)")
    p.add_argument("--check", action="store_true",
                   help="run the atomicity oracle after every run")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = auto, at least 2)")
    p.add_argument("--cache-dir",
                   default=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    p.add_argument("--no-cache", action="store_true",
                   help="recompute everything, touch no cache")
    p.add_argument("--timeout", type=float, default=900.0,
                   help="per-run timeout in seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="crash/timeout retries per spec (fresh seed offset)")
    p.add_argument("--artifacts", metavar="PATH",
                   help="append one JSONL record per run to PATH")
    p.add_argument("--resume", metavar="JOURNAL",
                   help="write-ahead campaign journal: every spec's state "
                        "is checkpointed to JOURNAL, and re-running with "
                        "the same path resumes a killed campaign")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-run progress lines")
    p.set_defaults(fn=cmd_matrix)

    p = sub.add_parser(
        "cache",
        help="verify (checksums) or summarize the result cache",
    )
    p.add_argument("action", choices=("verify", "stats"))
    p.add_argument("--cache-dir",
                   default=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser(
        "chaos",
        help="chaos campaigns against the runner: kill, resume, audit",
    )
    p.add_argument("--presets", nargs="+", default=["crash", "corrupt"],
                   choices=sorted(CHAOS_PRESETS),
                   help="fault presets; one campaign per preset × seed")
    p.add_argument("--seeds", type=int, nargs="+", default=[1, 2],
                   help="chaos plan seeds (fault placement, not the "
                        "simulation seed)")
    p.add_argument("--workloads", nargs="+", default=["ssca2", "kmeans"],
                   choices=_WORKLOAD_CHOICES)
    p.add_argument("--schemes", nargs="+", default=["suv"],
                   type=_scheme_name)
    p.add_argument("--sim-seed", type=int, default=3,
                   help="simulation seed of the spec matrix")
    p.add_argument("--scale", choices=("tiny", "small", "full"),
                   default="tiny")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--jobs", type=int, default=2)
    p.add_argument("--retries", type=int, default=2,
                   help="per-spec retry budget (verbatim retries)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-run timeout in seconds (required to survive "
                        "the hang preset quickly)")
    p.add_argument("--hang-s", type=float, default=None,
                   help="override the preset's injected hang duration")
    p.add_argument("--kill-after", type=int, default=None,
                   help="kill the first session after N resolved specs "
                        "(default: half the matrix)")
    p.add_argument("--root", default=".repro-chaos",
                   help="campaign root: journals, caches, markers, "
                        "report.json per campaign")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "faults",
        help="fault-injection campaign with the atomicity oracle",
    )
    p.add_argument("--workloads", nargs="+", default=["synthetic", "genome"],
                   choices=_WORKLOAD_CHOICES)
    p.add_argument("--schemes", nargs="+", default=list(SCHEMES),
                   type=_scheme_name)
    p.add_argument("--plans", nargs="+", default=list_presets(),
                   help="fault plans to inject (preset names or inline "
                        "JSON); the fault-free baseline always runs too")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--scale", choices=("tiny", "small", "full"),
                   default="tiny")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--threads", type=int, default=0)
    p.add_argument("--resolution", "--policy", choices=_RESOLUTIONS,
                   default="stall")
    p.add_argument("--arbitration", default="serial")
    p.add_argument("--stagger", type=int, default=512)
    p.add_argument("--no-verify", action="store_true")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = auto, at least 2)")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "bench",
        help="run the pinned benchmark matrix, write BENCH_<date>.json",
    )
    p.add_argument("--scale", choices=("tiny", "small", "full"),
                   default="tiny")
    p.add_argument("--out", default="benchmarks/results",
                   help="directory for the BENCH_<date>.json file")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "compare-bench",
        help="diff two BENCH files; non-zero exit on regression",
    )
    p.add_argument("baseline", help="baseline BENCH_*.json")
    p.add_argument("current", help="candidate BENCH_*.json")
    p.add_argument("--wall-threshold", type=float, default=0.15,
                   help="tolerated calibrated wall-time slowdown "
                        "(fraction; fidelity metrics always exact)")
    p.set_defaults(fn=cmd_compare_bench)

    p = sub.add_parser(
        "study",
        help="design-space study: sweep the legal policy space, rank "
             "per workload, compute Pareto fronts, write STUDY_<date>.json",
    )
    p.add_argument("--workloads", nargs="+", default=["starve", "ssca2"],
                   help="workload set (space- or comma-separated)")
    p.add_argument("--vms", nargs="+", default=[],
                   help="vm-axis filter (default: the whole axis)")
    p.add_argument("--cds", nargs="+", default=[],
                   help="cd-axis filter (default: the whole axis)")
    p.add_argument("--resolutions", nargs="+", default=[],
                   help="resolution-axis filter (default: the whole axis)")
    p.add_argument("--arbitrations", nargs="+", default=[],
                   help="arbitration-axis filter (default: the whole axis)")
    p.add_argument("--seeds", "--seed", type=int, nargs="+", default=[1])
    p.add_argument("--scale", choices=("tiny", "small", "full"),
                   default="tiny")
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--threads", type=int, default=0)
    p.add_argument("--stagger", type=int, default=512)
    p.add_argument("--no-verify", action="store_true")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = auto, at least 2)")
    p.add_argument("--cache-dir",
                   default=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    p.add_argument("--no-cache", action="store_true",
                   help="recompute everything, touch no cache")
    p.add_argument("--timeout", type=float, default=900.0,
                   help="per-run timeout in seconds")
    p.add_argument("--retries", type=int, default=1)
    p.add_argument("--resume", metavar="JOURNAL",
                   help="write-ahead campaign journal (resumes a killed "
                        "study when re-run with the same path)")
    p.add_argument("--out", default="studies",
                   help="directory for STUDY_<date>.json (default: studies)")
    p.add_argument("--date", default=None,
                   help="override the date stamp in the output filename")
    p.add_argument("--json", action="store_true",
                   help="print the full STUDY document instead of markdown")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-run progress lines")
    study_sub = p.add_subparsers(dest="study_cmd")
    sp = study_sub.add_parser(
        "report", help="re-render an existing STUDY file"
    )
    sp.add_argument("study_file", help="a STUDY_*.json")
    sp.add_argument("--csv", action="store_true",
                    help="flat per-(workload, scheme) CSV instead of "
                         "markdown")
    sp.set_defaults(fn=cmd_study)
    sp = study_sub.add_parser(
        "compare",
        help="diff two STUDY files modulo volatile sections; non-zero "
             "exit when the deterministic analysis differs",
    )
    sp.add_argument("baseline", help="baseline STUDY_*.json")
    sp.add_argument("current", help="candidate STUDY_*.json")
    sp.set_defaults(fn=cmd_study)
    p.set_defaults(fn=cmd_study)

    p = sub.add_parser(
        "profile",
        help="profile one spec on the host (cProfile hotspot report)",
    )
    p.add_argument("workload", choices=_WORKLOAD_CHOICES)
    p.add_argument("scheme", type=_scheme_name, nargs="?", default="suv")
    p.add_argument("--top", type=int, default=20,
                   help="hotspot rows to report (default 20)")
    p.add_argument("--sort", choices=("tottime", "cumtime", "ncalls"),
                   default="tottime")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of a table")
    _add_common(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("hwcost", help="hardware-cost report (Table VII)")
    p.set_defaults(fn=cmd_hwcost)

    p = sub.add_parser(
        "schemes",
        help="describe the scheme registry and composed policy space",
    )
    p.add_argument("--list", action="store_true",
                   help="print every legal composed scheme name")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")
    p.add_argument("--markdown", action="store_true",
                   help="emit the README scheme table")
    p.set_defaults(fn=cmd_schemes)

    p = sub.add_parser("list", help="list workloads and schemes")
    p.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
