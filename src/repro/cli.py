"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one workload under one scheme and print the
  breakdown and scheme statistics.
* ``compare`` — run several schemes on one workload and print the
  Figure 6/9-style normalized comparison.
* ``sweep`` — sweep one redirect-table parameter (Figure 7/8 style).
* ``hwcost`` — print the Table VII / Section V-C hardware-cost report.
* ``list`` — list workloads and schemes.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import HTMConfig, RedirectConfig, SimConfig
from repro.simulator import SimResult, Simulator
from repro.stats.report import format_breakdown_table, format_table
from repro.workloads import WORKLOAD_NAMES, make_workload

SCHEMES = ("logtm-se", "fastm", "suv", "lazy", "dyntm", "dyntm+suv")


def _build_config(args: argparse.Namespace, **redirect_overrides) -> SimConfig:
    redirect = RedirectConfig(**redirect_overrides)
    return SimConfig(
        n_cores=args.cores,
        htm=HTMConfig(policy=args.policy, start_stagger=args.stagger),
        redirect=redirect,
    )


def _run_one(args: argparse.Namespace, scheme: str,
             config: SimConfig | None = None) -> SimResult:
    cfg = config or _build_config(args)
    n_threads = args.threads or cfg.n_cores
    program = make_workload(args.workload, n_threads=n_threads,
                            seed=args.seed, scale=args.scale)
    sim = Simulator(cfg, scheme=scheme, seed=args.seed)
    result = sim.run(program.threads)
    if not args.no_verify:
        program.verify(result.memory)
    return result


def cmd_run(args: argparse.Namespace) -> int:
    res = _run_one(args, args.scheme)
    print(f"{args.workload} under {args.scheme}: "
          f"{res.total_cycles:,} cycles, {res.commits} commits, "
          f"{res.aborts} aborts (ratio {res.abort_ratio:.1%}), "
          f"{res.n_threads} threads, "
          f"{res.context_switches} context switches")
    rows = [(k, v, f"{res.breakdown.fraction(k):.1%}")
            for k, v in res.breakdown.as_dict().items()]
    print(format_table(["component", "cycles", "share"], rows))
    if args.stats:
        stats = [(k, v) for k, v in sorted(res.scheme_stats.items()) if v]
        print()
        print(format_table(["statistic", "value"], stats))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    results = {}
    for scheme in args.schemes:
        results[scheme] = _run_one(args, scheme)
        print(f"{scheme:10s} {results[scheme].total_cycles:>12,} cycles")
    print()
    print(format_breakdown_table(
        {k: v.breakdown for k, v in results.items()},
        baseline=args.schemes[0],
        title=f"{args.workload} — normalized to {args.schemes[0]}",
    ))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    rows = []
    for value in args.values:
        cfg = _build_config(args, **{args.parameter: value})
        res = _run_one(args, args.scheme, config=cfg)
        stats = res.scheme_stats
        rows.append([value, res.total_cycles,
                     f"{stats.get('table_l1_miss_rate', 0.0):.3f}",
                     int(stats.get("table_l2_overflows", 0))])
    print(format_table(
        [args.parameter, "exec cycles", "L1-table miss rate", "L2 ovf"],
        rows,
        title=f"{args.workload} / {args.scheme} — sweep of {args.parameter}",
    ))
    return 0


def cmd_hwcost(args: argparse.Namespace) -> int:
    from repro.hwcost.cacti import CactiLite
    from repro.hwcost.storage import suv_overhead_report

    rows = [
        (e.tech_nm, e.access_time_ns, e.read_energy_nj, e.write_energy_nj,
         e.area_mm2, e.cycles_at(1.2))
        for e in CactiLite().table_vii()
    ]
    print(format_table(
        ["tech (nm)", "access (ns)", "read (nJ)", "write (nJ)",
         "area (mm²)", "cycles @1.2GHz"],
        rows, title="Table VII — first-level redirect table (CACTI-lite)",
    ))
    print()
    print(format_table(
        ["figure", "value"],
        [(k, f"{v:.4g}") for k, v in suv_overhead_report().items()],
        title="Section V-C overhead report",
    ))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("workloads:", ", ".join(WORKLOAD_NAMES + ("synthetic",)))
    print("schemes  :", ", ".join(SCHEMES))
    print("scales   : tiny, small, full")
    return 0


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cores", type=int, default=16)
    p.add_argument("--threads", type=int, default=0,
                   help="software threads (default = cores; more than "
                        "cores enables time-multiplexing)")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--scale", choices=("tiny", "small", "full"),
                   default="small")
    p.add_argument("--policy", choices=("stall", "abort_requester", "abort_responder"),
                   default="stall")
    p.add_argument("--stagger", type=int, default=512)
    p.add_argument("--no-verify", action="store_true",
                   help="skip the workload's functional verifier")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SUV-TM reproduction (Yan et al., IPDPS 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run one workload under one scheme")
    p.add_argument("workload", choices=WORKLOAD_NAMES + ("synthetic",))
    p.add_argument("scheme", choices=SCHEMES, nargs="?", default="suv")
    p.add_argument("--stats", action="store_true")
    _add_common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compare", help="compare schemes on one workload")
    p.add_argument("workload", choices=WORKLOAD_NAMES + ("synthetic",))
    p.add_argument("--schemes", nargs="+", default=["logtm-se", "fastm", "suv"],
                   choices=SCHEMES)
    _add_common(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("sweep", help="sweep a redirect-table parameter")
    p.add_argument("workload", choices=WORKLOAD_NAMES + ("synthetic",))
    p.add_argument("parameter",
                   choices=("l1_entries", "l2_entries", "l2_latency"))
    p.add_argument("values", type=int, nargs="+")
    p.add_argument("--scheme", default="suv", choices=SCHEMES)
    _add_common(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("hwcost", help="hardware-cost report (Table VII)")
    p.set_defaults(fn=cmd_hwcost)

    p = sub.add_parser("list", help="list workloads and schemes")
    p.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
