"""Run provenance: which code, interpreter and host produced a result.

Benchmark and matrix artifacts are only comparable when we know what
produced them; every result JSON therefore embeds this record.  The git
lookups shell out once per process (cached) and degrade to ``None``
outside a repository or without a ``git`` binary, so library users are
never forced to run inside a checkout.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from functools import lru_cache
from pathlib import Path


def _git(*args: str) -> str | None:
    """Output of one git command in the package's repo, or None."""
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


@lru_cache(maxsize=1)
def git_revision() -> str | None:
    """The checkout's commit hash, or None outside a repository."""
    return _git("rev-parse", "HEAD")


@lru_cache(maxsize=1)
def git_dirty() -> bool | None:
    """True when the working tree has uncommitted changes."""
    status = _git("status", "--porcelain")
    if status is None:
        return None
    return bool(status)


@lru_cache(maxsize=1)
def _host_provenance() -> dict:
    """The process-constant part of the record (cacheable)."""
    from repro import __version__

    return {
        "repro_version": __version__,
        "git_revision": git_revision(),
        "git_dirty": git_dirty(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def provenance() -> dict:
    """A JSON-safe record identifying code, interpreter and host.

    The accel backend is resolved fresh on every call (``REPRO_ACCEL``
    can change between runs inside one process, e.g. in tests), on top
    of the cached host record.  Backends never change simulated results
    — the key records host-performance context, not result identity.
    """
    from repro.accel import default_backend_name

    return {**_host_provenance(), "accel_backend": default_backend_name()}
