"""Design-space study subsystem.

PR 6 decomposed the schemes into a vm × cd × resolution × arbitration
cross product; this package *exploits* that space.  A
:class:`StudySpace` expands the legal policy combinations × a workload
set into the :class:`~repro.runner.RunMatrix` the crash-safe runner
executes (journal + cache + chaos-hardened executor), and the analysis
layer ranks every combination per workload by total cycles, computes
the per-workload Pareto front over (cycles, aborts, preserved-pool
high-water), and detects axis values no front ever uses — the
methodology Multiverse-style papers use to justify multiversioning
trade-offs (PAPERS.md, arXiv 2601.09735).

The output is a schema-versioned ``STUDY_<date>.json`` plus markdown
and CSV reports; ``repro study`` runs a study, ``repro study report``
re-renders one, ``repro study compare`` diffs two (the CI determinism
gate).  Everything outside the ``provenance``/``campaign`` sections is
seed-deterministic: the same space and seeds produce byte-identical
analysis, so CI can gate on it.
"""

from repro.study.pareto import (
    StudyPoint,
    dominated_axis_values,
    dominates,
    pareto_front,
    rank_points,
)
from repro.study.report import (
    STUDY_SCHEMA_VERSION,
    compare_studies,
    format_csv,
    format_markdown,
    load_study,
    strip_volatile,
    write_study,
)
from repro.study.run import build_study_doc, run_study
from repro.study.space import StudySpace

__all__ = [
    "STUDY_SCHEMA_VERSION",
    "StudyPoint",
    "StudySpace",
    "build_study_doc",
    "compare_studies",
    "dominated_axis_values",
    "dominates",
    "format_csv",
    "format_markdown",
    "load_study",
    "pareto_front",
    "rank_points",
    "run_study",
    "strip_volatile",
    "write_study",
]
