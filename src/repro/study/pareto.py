"""Ranking, Pareto fronts and dominated-axis detection.

A design-space study does not end with a winner: schemes trade total
execution time against abort work and against the hardware the
preserved pool must provision.  The per-workload Pareto front over
``(cycles, aborts, pool_high_water)`` — all minimized — is the set of
combinations a designer could rationally pick; everything else is
dominated by a combination that is no worse on every objective and
strictly better on one.

Everything here is pure and deterministic: points in, sorted values
out, no clocks, no randomness — so CI can byte-compare study analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.htm.policy import SchemeComposition

#: the study's objectives, all minimized, in tie-break order
OBJECTIVES = ("cycles", "aborts", "pool_high_water")


@dataclass(frozen=True)
class StudyPoint:
    """One (combination, workload) outcome in objective space."""

    scheme: str  #: composed four-axis name
    cycles: int
    aborts: int
    pool_high_water: int

    @property
    def metrics(self) -> tuple[int, int, int]:
        return (self.cycles, self.aborts, self.pool_high_water)

    @property
    def axes(self) -> dict[str, str]:
        comp = SchemeComposition.parse(self.scheme)
        if comp is None:
            raise ValueError(
                f"study point {self.scheme!r} is not a composed scheme name"
            )
        return comp.as_dict()

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"scheme": self.scheme}
        out.update(self.axes)
        out.update(zip(OBJECTIVES, self.metrics))
        return out


def dominates(a: StudyPoint, b: StudyPoint) -> bool:
    """Is ``a`` no worse than ``b`` everywhere and better somewhere?"""
    am, bm = a.metrics, b.metrics
    return all(x <= y for x, y in zip(am, bm)) and am != bm


def rank_points(points: Iterable[StudyPoint]) -> list[StudyPoint]:
    """Points ordered best-first by (cycles, aborts, pool, name).

    The name tie-break makes the ranking total and therefore
    deterministic even when two combinations behave identically (an
    arbitration axis value that never engages, say).
    """
    return sorted(
        points,
        key=lambda p: (p.cycles, p.aborts, p.pool_high_water, p.scheme),
    )


def pareto_front(points: Iterable[StudyPoint]) -> list[StudyPoint]:
    """The non-dominated subset, in ranking order.

    Duplicate metric vectors all stay on the front (they are mutually
    non-dominating), so equivalent combinations remain visible instead
    of one arbitrarily shadowing the rest.
    """
    pts = rank_points(points)
    front: list[StudyPoint] = []
    for candidate in pts:
        if not any(dominates(other, candidate) for other in pts):
            front.append(candidate)
    return front


def dominated_axis_values(
    fronts: Mapping[str, Sequence[StudyPoint]],
    swept: Mapping[str, Sequence[str]],
) -> dict[str, list[str]]:
    """Axis values that appear on *no* workload's Pareto front.

    ``fronts`` maps workload → its front; ``swept`` maps axis → the
    values the study actually swept (an axis value can only be called
    dominated if it was given a chance).  A value returned here buys
    nothing on any studied workload under any objective — the study's
    evidence that the axis region is a dead end.
    """
    used: dict[str, set[str]] = {axis: set() for axis in swept}
    for front in fronts.values():
        for point in front:
            for axis, value in point.axes.items():
                if axis in used:
                    used[axis].add(value)
    return {
        axis: [v for v in values if v not in used[axis]]
        for axis, values in swept.items()
    }
