"""STUDY artifacts: write, load, render and compare.

Mirrors the BENCH pipeline (``repro.bench``): the study document is
schema-versioned, written as ``STUDY_<date>.json`` with sorted keys,
and diffed by :func:`compare_studies` after stripping the volatile
sections (``provenance``, ``campaign`` — git revision, wall time,
cache-hit counts).  An empty comparison is the CI determinism gate:
two runs of the same study space on the same seeds must analyse
identically, byte for byte.
"""

from __future__ import annotations

import datetime
import io
import json
from pathlib import Path
from typing import Any, Mapping

STUDY_SCHEMA_VERSION = 1

#: document sections that legitimately differ between identical runs
VOLATILE_KEYS = ("provenance", "campaign")


def write_study(
    doc: Mapping[str, Any], out_dir: str | Path, date: str | None = None
) -> Path:
    """Write ``doc`` as ``<out_dir>/STUDY_<date>.json``; returns the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stamp = date or datetime.date.today().isoformat()
    path = out / f"STUDY_{stamp}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_study(path: str | Path) -> dict[str, Any]:
    """Load and schema-check one STUDY file."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("schema_version")
    if version != STUDY_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r}, "
            f"this build reads {STUDY_SCHEMA_VERSION}"
        )
    return doc


def strip_volatile(doc: Mapping[str, Any]) -> dict[str, Any]:
    """The deterministic core of a study document."""
    return {k: v for k, v in doc.items() if k not in VOLATILE_KEYS}


def compare_studies(
    baseline: Mapping[str, Any], current: Mapping[str, Any]
) -> list[str]:
    """Differences between two studies, ignoring volatile sections.

    Empty list = the analyses are identical; this is what the CI
    determinism gate asserts across two runs of the same space.
    """
    a, b = strip_volatile(baseline), strip_volatile(current)
    problems: list[str] = []
    for key in sorted(a.keys() - b.keys()):
        problems.append(f"{key}: missing from current study")
    for key in sorted(b.keys() - a.keys()):
        problems.append(f"{key}: missing from baseline study")
    for key in sorted(a.keys() & b.keys()):
        if a[key] != b[key]:
            problems.append(
                f"{key}: differs between baseline and current "
                f"({json.dumps(a[key], sort_keys=True)[:120]} vs "
                f"{json.dumps(b[key], sort_keys=True)[:120]})"
            )
    return problems


def format_markdown(doc: Mapping[str, Any]) -> str:
    """A human-readable study report (rankings, fronts, dead axes)."""
    space = doc.get("space", {})
    lines: list[str] = ["# Design-space study", ""]
    lines.append(
        f"Scale `{space.get('scale')}`, seeds {space.get('seeds')}, "
        f"{space.get('cores')} cores, {space.get('combos')} legal "
        f"combinations per workload."
    )
    prov = doc.get("provenance") or {}
    if prov.get("git_revision"):
        lines.append(f"Revision `{prov['git_revision'][:12]}`.")
    for workload, section in sorted(doc.get("per_workload", {}).items()):
        lines += ["", f"## {workload}", ""]
        ranking = section.get("ranking", [])
        if not ranking:
            lines.append("_no completed runs_")
            continue
        lines.append(
            "| rank | scheme | cycles | aborts | pool high-water | front |"
        )
        lines.append("|---:|---|---:|---:|---:|:---:|")
        for entry in ranking:
            lines.append(
                f"| {entry['rank']} | `{entry['scheme']}` "
                f"| {entry['cycles']} | {entry['aborts']} "
                f"| {entry['pool_high_water']} "
                f"| {'*' if entry.get('on_front') else ''} |"
            )
        lines.append("")
        lines.append(
            f"Pareto front ({len(section.get('pareto_front', []))}): "
            + ", ".join(f"`{s}`" for s in section.get("pareto_front", []))
        )
    dead = {
        axis: values
        for axis, values in (doc.get("dominated_axis_values") or {}).items()
        if values
    }
    lines += ["", "## Dominated axis values", ""]
    if dead:
        for axis, values in sorted(dead.items()):
            lines.append(
                f"- `{axis}`: {', '.join(f'`{v}`' for v in values)} "
                f"(on no workload's Pareto front)"
            )
    else:
        lines.append(
            "Every swept axis value appears on at least one Pareto front."
        )
    failures = doc.get("failures") or []
    if failures:
        lines += ["", "## Failures", ""]
        for f in failures:
            lines.append(f"- `{f['label']}`: {f['error_type']}: {f['error']}")
    return "\n".join(lines) + "\n"


def format_csv(doc: Mapping[str, Any]) -> str:
    """The flat ranking table, one row per (workload, scheme)."""
    import csv

    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow([
        "workload", "rank", "scheme", "vm", "cd", "resolution",
        "arbitration", "cycles", "aborts", "pool_high_water", "on_front",
    ])
    for workload, section in sorted(doc.get("per_workload", {}).items()):
        for entry in section.get("ranking", []):
            writer.writerow([
                workload, entry["rank"], entry["scheme"], entry["vm"],
                entry["cd"], entry["resolution"], entry["arbitration"],
                entry["cycles"], entry["aborts"], entry["pool_high_water"],
                int(bool(entry.get("on_front"))),
            ])
    return buf.getvalue()
