"""The swept region of the policy design space.

A :class:`StudySpace` is the frozen description of one study: which
workloads, which slice of the four policy axes (default: all of it),
and the machine/seed pins.  It expands to the legal combinations via
:func:`repro.htm.policy.legal_combinations` — never a hardcoded list —
and to runnable :class:`~repro.runner.ExperimentSpec` values through
the same :class:`~repro.runner.RunMatrix` machinery every other
campaign uses, so studies inherit caching, journaling and the
chaos-hardened executor for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.errors import IncompatiblePolicyError
from repro.htm.policy import (
    ARBITRATION_AXIS,
    CD_AXIS,
    RESOLUTION_AXIS,
    VM_AXIS,
    SchemeComposition,
    legal_combinations,
)
from repro.runner import ExperimentSpec, RunMatrix

#: the axis names, in canonical order (mirrors SchemeComposition)
AXES = ("vm", "cd", "resolution", "arbitration")


def _axis_subset(
    requested: Sequence[str], full: Sequence[str], axis: str
) -> tuple[str, ...]:
    """Validate an axis filter; empty means the whole axis."""
    if not requested:
        return tuple(full)
    unknown = [v for v in requested if v not in full]
    if unknown:
        raise IncompatiblePolicyError(
            f"unknown {axis} axis value in study space",
            axes={axis: ",".join(unknown)},
            reason=f"choose from {', '.join(full)}",
        )
    return tuple(dict.fromkeys(requested))  # dedup, keep order


@dataclass(frozen=True)
class StudySpace:
    """One design-space study, as a frozen value.

    The axis filters (``vms``/``cds``/``resolutions``/``arbitrations``)
    default to the full axes; a study over a slice (CI smoke, a
    focussed question) sets them explicitly.  Expansion keeps only the
    *legal* subset of the cross product.
    """

    workloads: tuple[str, ...]
    scale: str = "tiny"
    seeds: tuple[int, ...] = (1,)
    cores: int = 8
    threads: int = 0
    stagger: int = 512
    vms: tuple[str, ...] = ()
    cds: tuple[str, ...] = ()
    resolutions: tuple[str, ...] = ()
    arbitrations: tuple[str, ...] = ()
    verify: bool = True
    workload_kwargs: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(
            self, "vms", _axis_subset(self.vms, VM_AXIS, "vm"))
        object.__setattr__(
            self, "cds", _axis_subset(self.cds, CD_AXIS, "cd"))
        object.__setattr__(
            self,
            "resolutions",
            _axis_subset(self.resolutions, RESOLUTION_AXIS, "resolution"),
        )
        object.__setattr__(
            self,
            "arbitrations",
            _axis_subset(self.arbitrations, ARBITRATION_AXIS, "arbitration"),
        )

    def with_(self, **changes: Any) -> "StudySpace":
        return replace(self, **changes)

    # -- expansion ------------------------------------------------------
    def combos(self) -> tuple[SchemeComposition, ...]:
        """The legal policy combinations inside this space, axis order."""
        return tuple(
            c for c in legal_combinations()
            if c.vm in self.vms and c.cd in self.cds
            and c.resolution in self.resolutions
            and c.arbitration in self.arbitrations
        )

    def matrix(self) -> RunMatrix:
        """The :class:`RunMatrix` this study executes."""
        if not self.combos():
            raise IncompatiblePolicyError(
                "empty study space",
                axes={
                    "vm": ",".join(self.vms),
                    "cd": ",".join(self.cds),
                    "resolution": ",".join(self.resolutions),
                    "arbitration": ",".join(self.arbitrations),
                },
                reason="no legal combination survives the axis filters",
            )
        return RunMatrix(
            workloads=self.workloads,
            vms=self.vms,
            cds=self.cds,
            resolutions=self.resolutions,
            arbitrations=self.arbitrations,
            scales=(self.scale,),
            seeds=self.seeds,
            cores=(self.cores,),
            threads=(self.threads,),
            staggers=(self.stagger,),
            workload_kwargs=self.workload_kwargs,
            verify=self.verify,
        )

    def specs(self) -> list[ExperimentSpec]:
        """Every run of the study (workload-major, axis order)."""
        return self.matrix().specs()

    def describe(self) -> dict[str, Any]:
        """The JSON-safe description embedded in the STUDY document."""
        return {
            "workloads": list(self.workloads),
            "scale": self.scale,
            "seeds": list(self.seeds),
            "cores": self.cores,
            "threads": self.threads,
            "stagger": self.stagger,
            "axes": {
                "vm": list(self.vms),
                "cd": list(self.cds),
                "resolution": list(self.resolutions),
                "arbitration": list(self.arbitrations),
            },
            "combos": len(self.combos()),
        }
