"""Study execution: the design-space sweep through the crash-safe runner.

``run_study`` fans the study's spec matrix out through the same
:class:`~repro.runner.Runner` every campaign uses — content-hashed
result cache (a re-run of an unchanged study is nearly free),
write-ahead journal (a killed nightly study resumes where it died) and
the supervised process pool — then folds the outcomes into the
schema-versioned STUDY document via :func:`build_study_doc`.

Aggregation over seeds is exact integer arithmetic (sums and maxima),
so the analysis sections of the document are byte-deterministic for a
fixed space and seed set; host-dependent facts (wall time, retries,
git revision) are quarantined under the ``provenance`` and
``campaign`` keys, which comparisons ignore.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.provenance import provenance
from repro.runner import (
    CampaignReport,
    ExperimentSpec,
    ResultCache,
    Runner,
    RunOutcome,
)
from repro.study.pareto import (
    StudyPoint,
    dominated_axis_values,
    pareto_front,
    rank_points,
)
from repro.study.report import STUDY_SCHEMA_VERSION
from repro.study.space import StudySpace


def _aggregate(
    outcomes: Iterable[RunOutcome],
) -> tuple[dict[str, list[StudyPoint]], list[dict[str, Any]]]:
    """Fold per-seed outcomes into per-(workload, scheme) study points.

    Cycles and aborts are summed over seeds, the preserved-pool
    high-water mark is the maximum any seed reached (the pool must be
    provisioned for the worst case, not the average).  Failed specs are
    reported, never silently dropped — a combination missing a seed is
    excluded from the analysis entirely so a partial sum cannot
    masquerade as a fast scheme.
    """
    sums: dict[tuple[str, str], dict[str, int]] = {}
    seeds_seen: dict[tuple[str, str], int] = {}
    failures: list[dict[str, Any]] = []
    expected: dict[tuple[str, str], int] = {}
    for out in outcomes:
        key = (out.spec.workload, out.spec.scheme)
        expected[key] = expected.get(key, 0) + 1
        if not out.ok or out.result is None:
            failures.append({
                "label": out.spec.label(),
                "error_type": out.error_type,
                "error": str(out.error or ""),
            })
            continue
        res = out.result
        agg = sums.setdefault(
            key, {"cycles": 0, "aborts": 0, "pool_high_water": 0}
        )
        agg["cycles"] += res.total_cycles
        agg["aborts"] += res.aborts
        agg["pool_high_water"] = max(
            agg["pool_high_water"],
            int(res.scheme_stats.get("pool_high_water", 0)),
        )
        seeds_seen[key] = seeds_seen.get(key, 0) + 1

    by_workload: dict[str, list[StudyPoint]] = {}
    for (workload, scheme), agg in sums.items():
        if seeds_seen[(workload, scheme)] != expected[(workload, scheme)]:
            continue  # incomplete combination: already in failures
        by_workload.setdefault(workload, []).append(StudyPoint(
            scheme=scheme,
            cycles=agg["cycles"],
            aborts=agg["aborts"],
            pool_high_water=agg["pool_high_water"],
        ))
    failures.sort(key=lambda f: f["label"])
    return by_workload, failures


def build_study_doc(
    space: StudySpace,
    outcomes: Iterable[RunOutcome],
    campaign: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The schema-versioned STUDY document for a finished sweep."""
    by_workload, failures = _aggregate(outcomes)
    swept = space.describe()["axes"]
    per_workload: dict[str, Any] = {}
    fronts: dict[str, list[StudyPoint]] = {}
    for workload in space.workloads:
        points = by_workload.get(workload, [])
        ranking = rank_points(points)
        front = pareto_front(points)
        fronts[workload] = front
        front_names = [p.scheme for p in front]
        per_workload[workload] = {
            "ranking": [
                {**p.as_dict(), "rank": i + 1,
                 "on_front": p.scheme in front_names}
                for i, p in enumerate(ranking)
            ],
            "pareto_front": front_names,
            "best": ranking[0].scheme if ranking else None,
        }
    return {
        "schema_version": STUDY_SCHEMA_VERSION,
        "kind": "STUDY",
        "space": space.describe(),
        "per_workload": per_workload,
        "dominated_axis_values": dominated_axis_values(fronts, swept),
        "failures": failures,
        # volatile sections — excluded from study comparisons
        "provenance": provenance(),
        "campaign": dict(campaign) if campaign else {},
    }


def run_study(
    space: StudySpace,
    *,
    jobs: int | None = None,
    cache_dir: str | None = None,
    journal: str | None = None,
    timeout: float = 900.0,
    retries: int = 1,
    progress: bool = False,
) -> dict[str, Any]:
    """Execute a study space and return its STUDY document.

    ``cache_dir``/``journal`` plug the sweep into the crash-safe
    campaign machinery: re-running a study over the same cache is a
    near-total cache hit, and re-running over the same journal resumes
    a killed study instead of restarting it.
    """
    specs: list[ExperimentSpec] = space.specs()
    cache = ResultCache(cache_dir) if cache_dir else None
    runner = Runner(
        max_workers=jobs,
        cache=cache,
        timeout=timeout,
        retries=retries,
        progress=progress,
        journal=journal,
    )
    import time

    started = time.monotonic()
    try:
        outcomes = [out for out in runner.run(specs) if out is not None]
    finally:
        runner.close()
    report = CampaignReport.collect(
        outcomes, runner=runner, cache=cache,
        wall_s=time.monotonic() - started,
    )
    return build_study_doc(space, outcomes, campaign=report.to_dict())
