"""Host-performance profiling for single specs (``repro profile``).

The bench machinery (`repro bench`) answers *how fast* the simulator
runs; this module answers *where the host time goes*.  It runs one
:class:`~repro.runner.spec.ExperimentSpec` under :mod:`cProfile` and
reduces the trace to a JSON-serializable report:

* **host** — wall seconds, simulated events/s and cycles/s, so a
  hotspot's weight can be read against the throughput it costs;
* **hotspots** — the top-N profile rows (by ``tottime`` or
  ``cumtime``), each with call count and per-call cost;
* **components** — the simulated per-component cycle table (the paper's
  NoTrans/Trans/Stalled/... stacking) with each component's share, so a
  host hotspot can be correlated with the simulated phase that drives
  it.

Profiling overhead inflates small-function cost (the tracer hook fires
on every call), so treat ``tottime`` as attribution, not as absolute
speed — wall-clock comparisons belong to ``repro bench``.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from typing import Any

from repro.runner.spec import ExperimentSpec

#: pstats sort keys accepted by ``profile_spec`` (CLI ``--sort``)
SORT_KEYS = ("tottime", "cumtime", "ncalls")


def profile_spec(
    spec: ExperimentSpec,
    top: int = 20,
    sort: str = "tottime",
) -> dict[str, Any]:
    """Profile one spec run; returns the hotspot report as a dict."""
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    from repro.runner.executor import execute_spec

    execute_spec(spec)  # warm-up: imports, memo fills, workload build
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = execute_spec(spec)
    profiler.disable()
    wall = time.perf_counter() - start

    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    hotspots = []
    for func in stats.fcn_list[:top]:  # fcn_list is set by sort_stats
        cc, ncalls, tottime, cumtime, _callers = stats.stats[func]
        filename, line, name = func
        hotspots.append({
            "function": name,
            "file": filename,
            "line": line,
            "ncalls": ncalls,
            "primitive_calls": cc,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
            "percall_us": round(tottime / ncalls * 1e6, 3) if ncalls else 0.0,
        })

    total = result.breakdown.total or 1
    components = {
        name: {"cycles": cycles, "share": round(cycles / total, 4)}
        for name, cycles in result.breakdown.cycles.items()
    }
    from repro.accel import default_backend_name

    return {
        "spec": spec.label(),
        "scheme": result.scheme,
        "sort": sort,
        "accel_backend": default_backend_name(),
        "host": {
            "wall_s": round(wall, 6),
            "events_executed": result.events_executed,
            "events_per_s": round(result.events_executed / wall, 1),
            "sim_cycles": result.total_cycles,
            "sim_cycles_per_s": round(result.total_cycles / wall, 1),
        },
        "components": components,
        "hotspots": hotspots,
    }


def format_profile(report: dict[str, Any]) -> str:
    """Render a :func:`profile_spec` report as an aligned text table."""
    host = report["host"]
    backend = report.get("accel_backend", "pure")
    lines = [
        f"profile — {report['spec']} (sorted by {report['sort']}, "
        f"accel {backend})",
        f"  wall {host['wall_s']:.3f}s | "
        f"{host['events_per_s']:,.0f} events/s | "
        f"{host['sim_cycles_per_s']:,.0f} sim-cycles/s",
        "",
        f"  {'function':<42} {'calls':>9} {'tottime':>9} "
        f"{'cumtime':>9} {'us/call':>9}",
    ]
    for spot in report["hotspots"]:
        where = spot["function"]
        if spot["line"]:
            tail = spot["file"].rsplit("/", 1)[-1]
            where = f"{where} ({tail}:{spot['line']})"
        lines.append(
            f"  {where:<42.42} {spot['ncalls']:>9} "
            f"{spot['tottime_s']:>9.4f} {spot['cumtime_s']:>9.4f} "
            f"{spot['percall_us']:>9.2f}"
        )
    lines.append("")
    lines.append(f"  {'component':<12} {'sim cycles':>12} {'share':>7}")
    for name, row in report["components"].items():
        if row["cycles"]:
            lines.append(
                f"  {name:<12} {row['cycles']:>12,} {row['share']:>6.1%}"
            )
    return "\n".join(lines)
