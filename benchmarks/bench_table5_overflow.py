"""Table V: overflow statistics for the three coarse-grained
applications (bayes, labyrinth, yada).

The paper reports that LogTM-SE and FasTM suffer transactional data
overflow (write-set lines evicted from the L1 mid-transaction) while
SUV-TM mitigates cache overflow but occasionally overflows the redirect
table instead.  Run with ``REPRO_BENCH_SCALE=full`` for write sets that
genuinely stress the 32 KB L1, as the paper's inputs do."""

import os

from conftest import F, L, S, emit
from repro.stats.report import format_table

COARSE = ("bayes", "labyrinth", "yada")

#: Table V is about L1-cache overflow, which only the paper-sized inputs
#: produce; default to the full inputs unless the caller insists.
TABLE5_SCALE = os.environ.get(
    "REPRO_BENCH_SCALE_TABLE5",
    os.environ.get("REPRO_BENCH_SCALE", "full"),
)


def test_table5_overflow(benchmark, sim_cache):
    results = {}

    def run_all():
        for app in COARSE:
            for scheme in (L, F, S):
                results[(app, scheme)] = sim_cache.run(
                    app, scheme, scale=TABLE5_SCALE
                )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for app in COARSE:
        for scheme in (L, F, S):
            st = results[(app, scheme)].scheme_stats
            rows.append([
                app, scheme,
                int(st.get("cache_overflows", 0)),
                int(st.get("overflowed_txs", 0)),
                int(st.get("table_l1_overflows", 0)),
                int(st.get("table_l2_overflows", 0)),
                int(st.get("log_writes", 0)),
            ])
    emit("table5_overflow", format_table(
        ["app", "scheme", "cache ovf (lines)", "ovf txs",
         "rtable L1 ovf", "rtable L2 ovf", "undo-log writes"],
        rows,
        title="Table V — overflow statistics for the coarse-grained "
              "applications",
    ))

    # SUV never writes an undo log; LogTM-SE always logs its write set
    for app in COARSE:
        assert results[(app, S)].scheme_stats.get("log_writes", 0) == 0
        assert results[(app, L)].scheme_stats.get("log_writes", 0) > 0
