"""Figure 7: sensitivity of SUV-TM to the first-level redirect-table
size — (a) L1-table miss rate, (b) total execution time — on the
coarse-grained applications.  The paper finds a 512-entry table reaches
a high hit rate and that scaling beyond 512 barely helps."""

from conftest import S, emit
from repro.stats.report import format_table

SIZES = (64, 128, 256, 512, 1024, 2048)
APPS = ("yada", "bayes")


def test_figure7_l1_table_size(benchmark, sim_cache):
    results = {}

    def run_all():
        results.update(sim_cache.run_sweep(APPS, S, "l1_entries", SIZES))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for app in APPS:
        base = results[(app, 512)].total_cycles
        for size in SIZES:
            res = results[(app, size)]
            st = res.scheme_stats
            rows.append([
                app if size == SIZES[0] else "", size,
                f"{st['table_l1_miss_rate']:.3f}",
                res.total_cycles,
                f"{res.total_cycles / base:.3f}",
            ])
    from repro.stats.charts import line_plot

    table = format_table(
        ["app", "L1-table entries", "miss rate", "exec cycles",
         "vs 512-entry"],
        rows,
        title="Figure 7 — first-level redirect-table size sensitivity "
              "(SUV-TM)",
    )
    plots = [
        line_plot(
            [(float(size), float(results[(app, size)].total_cycles))
             for size in SIZES],
            title=f"Figure 7(b) {app}: exec cycles vs L1-table entries",
            x_label="entries",
        )
        for app in APPS
    ]
    emit("figure7_l1table", "\n\n".join([table, *plots]))

    # the paper's knee: beyond 512 entries the gain is marginal
    for app in APPS:
        t512 = results[(app, 512)].total_cycles
        t2048 = results[(app, 2048)].total_cycles
        assert t2048 >= 0.9 * t512, f"{app}: >10% gain beyond 512 entries"
        # and miss rate falls monotonically-ish with size
        m64 = results[(app, 64)].scheme_stats["table_l1_miss_rate"]
        m1024 = results[(app, 1024)].scheme_stats["table_l1_miss_rate"]
        assert m1024 <= m64
