"""Ablations of the SUV design choices called out in DESIGN.md:

* redirect-back on/off (Section IV-A claims it keeps table occupancy
  and entry counts low);
* redirect summary signature on/off (filters table lookups off the
  critical path of every access);
* Stall vs abort-requester conflict resolution;
* conflict-signature size (false-conflict sensitivity).
"""

from conftest import S, emit
from repro.stats.report import format_table

APP = "genome"


def test_ablation_redirect_back(benchmark, sim_cache):
    results = {}

    def run_all():
        for on in (True, False):
            results[on] = sim_cache.run(
                APP, S, overrides={"redirect.redirect_back": on}
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for on in (True, False):
        res, st = results[on], results[on].scheme_stats
        rows.append([
            "on" if on else "off", res.total_cycles,
            int(st["redirects"]), int(st["redirect_backs"]),
            int(st["pool_live_lines"]), int(st["pool_pages"]),
        ])
    emit("ablation_redirect_back", format_table(
        ["redirect-back", "exec cycles", "redirects", "redirect-backs",
         "live pool lines", "pool pages"],
        rows,
        title=f"ablation — redirect-back optimization ({APP})",
    ))
    # the optimization's claimed effect: far fewer live entries/pool lines
    assert (results[True].scheme_stats["pool_live_lines"]
            <= results[False].scheme_stats["pool_live_lines"])


def test_ablation_summary_signature(benchmark, sim_cache):
    results = {}

    def run_all():
        for on in (True, False):
            results[on] = sim_cache.run(
                APP, S, overrides={"redirect.use_summary_signature": on}
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for on in (True, False):
        res, st = results[on], results[on].scheme_stats
        rows.append([
            "on" if on else "off", res.total_cycles,
            int(st["summary_filtered"]), int(st["summary_passed"]),
            int(st["summary_false_positives"]),
        ])
    emit("ablation_summary_signature", format_table(
        ["summary signature", "exec cycles", "lookups filtered",
         "lookups performed", "false positives"],
        rows,
        title=f"ablation — redirect summary signature ({APP})",
    ))
    # with the filter off, every access performs a table lookup
    assert results[False].scheme_stats["summary_filtered"] == 0
    assert (results[True].scheme_stats["summary_passed"]
            < results[False].scheme_stats["summary_passed"])


def test_ablation_conflict_policy(benchmark, sim_cache):
    results = {}

    def run_all():
        for policy in ("stall", "abort_requester"):
            results[policy] = sim_cache.run(APP, S, resolution=policy)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [policy, res.total_cycles, res.aborts,
         f"{res.abort_ratio:.1%}",
         res.breakdown.cycles["Stalled"], res.breakdown.cycles["Wasted"]]
        for policy, res in results.items()
    ]
    emit("ablation_policy", format_table(
        ["policy", "exec cycles", "aborts", "abort ratio", "Stalled",
         "Wasted"],
        rows,
        title=f"ablation — conflict-resolution policy ({APP}, SUV)",
    ))
    # abort_requester never stalls a conflicting transaction; the Stall
    # policy converts (some of) those aborts into waiting time
    assert (results["abort_requester"].breakdown.cycles["Stalled"]
            <= results["stall"].breakdown.cycles["Stalled"])


def test_ablation_signature_size(benchmark, sim_cache):
    sizes = (256, 1024, 2048, 8192)
    results = {}

    def run_all():
        for bits in sizes:
            results[bits] = sim_cache.run(
                APP, S, overrides={"signature.bits": bits}
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [bits, results[bits].total_cycles, results[bits].aborts,
         results[bits].breakdown.cycles["Stalled"]]
        for bits in sizes
    ]
    emit("ablation_signature_size", format_table(
        ["signature bits", "exec cycles", "aborts", "Stalled"],
        rows,
        title=f"ablation — conflict-signature size ({APP}, SUV): smaller "
              "signatures alias more addresses (false conflicts)",
    ))
    # tiny signatures must not be faster than the paper's 2 Kbit
    assert results[256].total_cycles >= 0.9 * results[2048].total_cycles
