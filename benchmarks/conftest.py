"""Shared infrastructure for the experiment-regeneration benchmarks.

Every paper table/figure has one bench module.  Simulation results are
cached per (workload, scheme, scale, seed, config-overrides) for the
whole pytest session so figures that share runs (e.g. Figure 6 and
Table I) don't recompute them.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — ``tiny`` | ``small`` (default) | ``full``.
  ``full`` gets closest to the paper's inputs (notably the L1-cache
  overflow behaviour of Table V) but takes tens of minutes.
* ``REPRO_BENCH_SEED`` — RNG seed (default 3).

Each bench prints its regenerated table and also appends it to
``benchmarks/results/<name>.txt`` so the artefacts survive pytest's
output capture.
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.config import HTMConfig, SimConfig
from repro.simulator import SimResult, Simulator
from repro.workloads import make_workload


def bench_config(**kw) -> SimConfig:
    """The Table III CMP with realistic thread-launch skew."""
    kw.setdefault("htm", HTMConfig(start_stagger=512))
    return SimConfig(**kw)

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "3"))

#: the paper's scheme labels
L, F, S, D, DS = "logtm-se", "fastm", "suv", "dyntm", "dyntm+suv"


class SimCache:
    """Memoized simulation runner shared across bench modules."""

    def __init__(self) -> None:
        self._cache: dict[tuple, SimResult] = {}

    def run(
        self,
        workload: str,
        scheme: str,
        scale: str = SCALE,
        seed: int = SEED,
        config: SimConfig | None = None,
        config_key: tuple = (),
        verify: bool = True,
    ) -> SimResult:
        key = (workload, scheme, scale, seed, config_key)
        if key in self._cache:
            return self._cache[key]
        cfg = config or bench_config()
        program = make_workload(workload, n_threads=cfg.n_cores, seed=seed,
                                scale=scale)
        sim = Simulator(cfg, scheme=scheme, seed=seed)
        result = sim.run(program.threads, max_events=1_000_000_000)
        if verify:
            program.verify(result.memory)
        self._cache[key] = result
        return result


_session_cache = SimCache()


@pytest.fixture(scope="session")
def sim_cache() -> SimCache:
    return _session_cache


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def geomean(values: list[float]) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1 / len(values)) if values else 0.0
