"""Shared infrastructure for the experiment-regeneration benchmarks.

Every paper table/figure has one bench module.  Execution goes through
the :mod:`repro.runner` subsystem: bench modules describe their run
grids as :class:`ExperimentSpec` lists (usually via :class:`RunMatrix`)
and the session-wide :class:`SimCache` memoizes results per spec, so
figures that share runs (e.g. Figure 6 and Table I) don't recompute
them.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — ``tiny`` | ``small`` (default) | ``full``.
  ``full`` gets closest to the paper's inputs (notably the L1-cache
  overflow behaviour of Table V) but takes tens of minutes.
* ``REPRO_BENCH_SEED`` — RNG seed (default 3).
* ``REPRO_BENCH_JOBS`` — worker processes for uncached runs (default 1
  = in-process serial; results are identical either way).

Each bench prints its regenerated table and also appends it to
``benchmarks/results/<name>.txt`` so the artefacts survive pytest's
output capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Mapping, Sequence

import pytest

from repro.runner import ExperimentSpec, RunMatrix, Runner
from repro.simulator import SimResult

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "3"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: the benchmark machine: Table III CMP with realistic thread-launch skew
BENCH_CORES = 16
BENCH_STAGGER = 512
BENCH_MAX_EVENTS = 1_000_000_000

#: the paper's scheme labels
L, F, S, D, DS = "logtm-se", "fastm", "suv", "dyntm", "dyntm+suv"


def bench_spec(
    workload: str,
    scheme: str,
    scale: str | None = None,
    seed: int | None = None,
    overrides: Mapping | None = None,
    resolution: str = "stall",
    verify: bool = True,
) -> ExperimentSpec:
    """The harness's spec for one run (Table III machine, bench knobs)."""
    return ExperimentSpec(
        workload=workload,
        scheme=scheme,
        scale=scale or SCALE,
        seed=SEED if seed is None else seed,
        cores=BENCH_CORES,
        resolution=resolution,
        stagger=BENCH_STAGGER,
        verify=verify,
        max_events=BENCH_MAX_EVENTS,
        config_overrides=overrides or {},
    )


def bench_matrix(
    workloads: Sequence[str],
    schemes: Sequence[str],
    scale: str | None = None,
    overrides: Sequence[Mapping] = ((),),
) -> RunMatrix:
    """A RunMatrix over the harness machine (workload-major order)."""
    return RunMatrix(
        workloads=tuple(workloads),
        schemes=tuple(schemes),
        scales=(scale or SCALE,),
        seeds=(SEED,),
        cores=(BENCH_CORES,),
        staggers=(BENCH_STAGGER,),
        overrides=tuple(overrides),
        max_events=BENCH_MAX_EVENTS,
    )


class SimCache:
    """Session-wide memo of spec → result over the runner subsystem."""

    def __init__(self) -> None:
        self._memo: dict[ExperimentSpec, SimResult] = {}

    def run(self, workload: str, scheme: str, **kw) -> SimResult:
        """One run by (workload, scheme) plus :func:`bench_spec` knobs."""
        return self.run_specs([bench_spec(workload, scheme, **kw)])[0]

    def run_specs(
        self, specs: Sequence[ExperimentSpec] | RunMatrix
    ) -> list[SimResult]:
        """Results for ``specs`` in order, computing only the unmemoized."""
        if isinstance(specs, RunMatrix):
            specs = specs.specs()
        missing = [s for s in dict.fromkeys(specs) if s not in self._memo]
        if missing:
            runner = Runner(max_workers=JOBS, retries=0)
            for outcome in runner.run(missing):
                if not outcome.ok:
                    raise RuntimeError(
                        f"bench run failed: {outcome.spec.label()}: "
                        f"{outcome.error}"
                    )
                self._memo[outcome.spec] = outcome.result
        return [self._memo[s] for s in specs]

    def run_grid(
        self,
        workloads: Sequence[str],
        schemes: Sequence[str],
        scale: str | None = None,
    ) -> dict[tuple[str, str], SimResult]:
        """A (workload × scheme) grid keyed by (workload, scheme)."""
        specs = bench_matrix(workloads, schemes, scale=scale).specs()
        return {
            (spec.workload, spec.scheme): res
            for spec, res in zip(specs, self.run_specs(specs))
        }

    def run_sweep(
        self,
        workloads: Sequence[str],
        scheme: str,
        parameter: str,
        values: Sequence,
        section: str = "redirect",
    ) -> dict[tuple[str, object], SimResult]:
        """Sweep one config field; keyed by (workload, value)."""
        matrix = bench_matrix(
            workloads, (scheme,),
            overrides=[{f"{section}.{parameter}": v} for v in values],
        )
        specs = matrix.specs()
        results = self.run_specs(specs)
        keys = [(w, v) for w in workloads for v in values]
        return dict(zip(keys, results))


_session_cache = SimCache()


@pytest.fixture(scope="session")
def sim_cache() -> SimCache:
    return _session_cache


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def geomean(values: list[float]) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1 / len(values)) if values else 0.0
