"""Table I: abort behaviours — the published studies the paper quotes,
side by side with the abort ratios our own simulator measures for the
STAMP-like suite under the LogTM-SE baseline."""

from conftest import L, emit
from repro.data import ABORT_RATIO_STUDIES
from repro.stats.report import format_table
from repro.workloads import STAMP_APPS


def test_table1_literature_and_measured(benchmark, sim_cache):
    measured = {}

    def run_all():
        for app in STAMP_APPS:
            measured[app] = sim_cache.run(app, L)
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lit_rows = [
        (s.study, f"up to {s.abort_ratio_max:.1%}", s.environment)
        for s in ABORT_RATIO_STUDIES
    ]
    lit = format_table(
        ["study", "abort ratio", "environment"],
        lit_rows,
        title="Table I — abort behaviours reported in published studies",
    )
    ours_rows = [
        (app, f"{measured[app].abort_ratio:.1%}",
         measured[app].aborts, measured[app].commits)
        for app in STAMP_APPS
    ]
    ours = format_table(
        ["workload", "abort ratio", "aborts", "commits"],
        ours_rows,
        title="measured under this simulator (LogTM-SE, Stall policy)",
    )
    emit("table1_aborts", lit + "\n\n" + ours)

    # the motivation holds here too: the high-contention apps abort a lot
    assert any(measured[a].abort_ratio > 0.3 for a in STAMP_APPS)
