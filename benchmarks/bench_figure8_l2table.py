"""Figure 8: sensitivity of SUV-TM to the second-level redirect table —
(a) table size (paper: gains vanish beyond 16K entries), (b) access
latency (paper: execution time rises sharply beyond 10 cycles, and a
zero-latency L2 table would improve things by less than 5%)."""

from conftest import S, emit
from repro.stats.report import format_table

SIZES = (1024, 4096, 16384, 65536)
LATENCIES = (0, 5, 10, 20, 40)
APPS = ("yada", "bayes")


def test_figure8a_l2_table_size(benchmark, sim_cache):
    results = {}

    def run_all():
        results.update(sim_cache.run_sweep(APPS, S, "l2_entries", SIZES))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for app in APPS:
        base = results[(app, 16384)].total_cycles
        for size in SIZES:
            res = results[(app, size)]
            rows.append([
                app if size == SIZES[0] else "", size, res.total_cycles,
                f"{res.total_cycles / base:.3f}",
                int(res.scheme_stats["table_l2_overflows"]),
            ])
    emit("figure8a_l2size", format_table(
        ["app", "L2-table entries", "exec cycles", "vs 16K", "L2 ovf"],
        rows,
        title="Figure 8(a) — second-level redirect-table size sensitivity",
    ))

    for app in APPS:
        t16k = results[(app, 16384)].total_cycles
        t64k = results[(app, 65536)].total_cycles
        assert t64k >= 0.95 * t16k, f"{app}: >5% gain beyond 16K entries"


def test_figure8b_l2_table_latency(benchmark, sim_cache):
    results = {}

    def run_all():
        results.update(
            sim_cache.run_sweep(APPS, S, "l2_latency", LATENCIES)
        )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for app in APPS:
        base = results[(app, 10)].total_cycles
        for lat in LATENCIES:
            res = results[(app, lat)]
            rows.append([
                app if lat == LATENCIES[0] else "", lat, res.total_cycles,
                f"{res.total_cycles / base:.3f}",
            ])
    from repro.stats.charts import line_plot

    table = format_table(
        ["app", "L2-table latency (cycles)", "exec cycles", "vs 10-cycle"],
        rows,
        title="Figure 8(b) — second-level redirect-table latency "
              "sensitivity",
    )
    plots = [
        line_plot(
            [(float(lat), float(results[(app, lat)].total_cycles))
             for lat in LATENCIES],
            title=f"Figure 8(b) {app}: exec cycles vs L2-table latency",
            x_label="cycles",
        )
        for app in APPS
    ]
    emit("figure8b_l2latency", "\n\n".join([table, *plots]))

    for app in APPS:
        t0 = results[(app, 0)].total_cycles
        t10 = results[(app, 10)].total_cycles
        t40 = results[(app, 40)].total_cycles
        # the paper's qualitative shape: execution time rises sharply
        # beyond 10 cycles, and the 0→10 step costs much less than the
        # 10→40 step.  (Our scaled inputs show a steeper 0→10 gradient
        # than the paper's <5% because lookups are less amortized over
        # the shorter transactions — see EXPERIMENTS.md.)
        assert t40 > 1.15 * t10, f"{app}: no sharp rise beyond 10 cycles"
        assert (t10 - t0) < (t40 - t10), f"{app}: knee not at 10 cycles"
