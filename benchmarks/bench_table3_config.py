"""Table III: the simulated CMP configuration actually in force."""

from conftest import emit
from repro.config import SimConfig
from repro.stats.report import format_table


def test_table3_configuration(benchmark):
    cfg = benchmark.pedantic(SimConfig, rounds=1, iterations=1)
    rows = [
        ("Processor cores", f"{cfg.n_cores} x {cfg.clock_ghz} GHz in-order"),
        ("L1 cache", f"{cfg.l1.size_bytes >> 10} KB {cfg.l1.ways}-way, "
                     f"{cfg.l1.line_bytes}-byte line, "
                     f"{cfg.l1.latency}-cycle latency"),
        ("L2 cache", f"{cfg.l2.size_bytes >> 20} MB {cfg.l2.ways}-way, "
                     f"{cfg.l2.latency}-cycle latency"),
        ("Main memory", f"{cfg.memory.size_bytes >> 30} GB, "
                        f"{cfg.memory.banks} banks, "
                        f"{cfg.memory.latency}-cycle latency"),
        ("L2 directory", f"bit vector of sharers, "
                         f"{cfg.directory.latency}-cycle latency"),
        ("Interconnect", f"mesh, {cfg.mesh.wire_latency}-cycle wire, "
                         f"{cfg.mesh.route_latency}-cycle route"),
        ("Signatures", f"{cfg.signature.bits // 1024} Kbit Bloom filters"),
        ("1st-level table", f"{cfg.redirect.l1_entries}-entry "
                            f"{cfg.redirect.l1_latency}-latency "
                            "fully associative"),
        ("2nd-level table", f"{cfg.redirect.l2_latency}-cycle latency "
                            f"{cfg.redirect.l2_entries}-entry "
                            f"{cfg.redirect.l2_ways}-way shared"),
    ]
    emit("table3_config", format_table(
        ["parameter", "value"], rows,
        title="Table III — configuration of the simulated CMP system",
    ))
    # the defaults must be the paper's
    assert cfg.n_cores == 16 and cfg.clock_ghz == 1.2
    assert cfg.l1.size_bytes == 32 << 10 and cfg.l1.ways == 4
    assert cfg.l2.size_bytes == 8 << 20 and cfg.l2.latency == 15
    assert cfg.memory.latency == 150 and cfg.directory.latency == 6
    assert cfg.redirect.l1_entries == 512
    assert cfg.redirect.l2_entries == 16384 and cfg.redirect.l2_latency == 10
