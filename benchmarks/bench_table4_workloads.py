"""Table IV: workload characteristics — measured transaction length and
contention class of each application as our scaled inputs produce them."""

from conftest import S, emit
from repro.stats.report import format_table
from repro.workloads import HIGH_CONTENTION, STAMP_APPS, make_workload

#: the paper's reported mean transaction lengths (instructions)
PAPER_LENGTH = {
    "bayes": "43K", "genome": "1.7K", "intruder": "237", "kmeans": "106",
    "labyrinth": "317K", "ssca2": "21", "vacation": "2.1K", "yada": "6.8K",
}


def test_table4_characteristics(benchmark, sim_cache):
    results = {}

    def run_all():
        for app in STAMP_APPS:
            results[app] = sim_cache.run(app, S)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for app in STAMP_APPS:
        res = results[app]
        mean_len = (res.breakdown.cycles["Trans"] / res.commits
                    if res.commits else 0)
        prog = make_workload(app, n_threads=2, scale="small")
        rows.append([
            app,
            f"{mean_len:,.0f}",
            PAPER_LENGTH[app],
            prog.contention,
            "high" if app in HIGH_CONTENTION else "low",
            f"{res.abort_ratio:.1%}",
        ])
    emit("table4_workloads", format_table(
        ["app", "mean tx length (cycles)", "paper length (insns)",
         "contention", "paper contention", "abort ratio (SUV)"],
        rows,
        title="Table IV — workload characteristics as measured",
    ))

    # relative ordering of transaction lengths must match the paper:
    # labyrinth and bayes the longest, ssca2 and kmeans the shortest
    lengths = {
        app: results[app].breakdown.cycles["Trans"] / max(results[app].commits, 1)
        for app in STAMP_APPS
    }
    assert lengths["labyrinth"] > lengths["intruder"]
    assert lengths["bayes"] > lengths["kmeans"]
    assert lengths["yada"] > lengths["ssca2"]
