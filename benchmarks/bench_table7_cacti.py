"""Tables VI and VII + Section V-C: hardware overheads of SUV.

Regenerates the CACTI estimates of the 512-entry fully-associative
first-level redirect table across technology nodes, lists the
contemporary-processor context, and prints the per-core storage /
CMP energy / CMP area arithmetic."""

from conftest import emit
from repro.data import PROCESSORS
from repro.hwcost.cacti import CactiLite
from repro.hwcost.storage import suv_overhead_report
from repro.stats.report import format_table


def test_table7_and_section_vc(benchmark):
    cacti = CactiLite()
    rows = benchmark.pedantic(cacti.table_vii, rounds=1, iterations=1)

    t7 = format_table(
        ["tech (nm)", "access time (ns)", "read (nJ)", "write (nJ)",
         "area (mm²)", "cycles @1.2GHz"],
        [(r.tech_nm, r.access_time_ns, r.read_energy_nj, r.write_energy_nj,
          r.area_mm2, r.cycles_at(1.2)) for r in rows],
        title="Table VII — 512-entry fully-associative table (CACTI-lite)",
    )
    t6 = format_table(
        ["processor", "tech (nm)", "clock (GHz)", "cores/threads",
         "TDP (W)", "area (mm²)"],
        [(p.name, p.tech_nm, p.clock_ghz, f"{p.cores}/{p.threads}",
          p.tdp_w, p.area_mm2) for p in PROCESSORS],
        title="Table VI — contemporary processors",
    )
    rep = suv_overhead_report()
    vc = format_table(
        ["figure", "value", "paper"],
        [
            ("per-core SUV state", f"{rep['per_core_kb']:.3f} KB", "1.875 KB"),
            ("fraction of 32 KB L1", f"{rep['fraction_of_l1']:.2%}", "5.86%"),
            ("CMP table energy bound", f"{rep['cmp_energy_joules_per_s']:.2f} J/s", "< 3 J"),
            ("fraction of Rock TDP", f"{rep['energy_fraction_of_rock_tdp']:.2%}", "~1.2%"),
            ("CMP table area", f"{rep['cmp_area_mm2']:.2f} mm²", "2.26 mm²"),
            ("fraction of Rock area", f"{rep['area_fraction_of_rock']:.2%}", "~0.6%"),
        ],
        title="Section V-C — SUV hardware-overhead arithmetic",
    )
    emit("table7_cacti", "\n\n".join([t7, t6, vc]))

    # feasibility claims
    assert next(r for r in rows if r.tech_nm == 45).cycles_at(1.2) == 1
    assert rep["cmp_energy_joules_per_s"] < 3.01
    assert rep["area_fraction_of_rock"] < 0.01
