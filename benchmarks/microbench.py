#!/usr/bin/env python
"""Micro-benchmarks for the simulator's host hot paths.

``repro bench`` measures end-to-end host throughput; this suite times
the individual substrate operations the tentpole optimizations target —
event-queue scheduling, Bloom-signature tests, the batched conflict
scan, cache lookups, H3 mask memoization, mesh latency lookups and
directory updates — so a regression (or a win) is attributable to a
specific layer.

Every benchmark that has an accelerated implementation builds its
substrate through the accel backend (``--accel``, default resolution =
``$REPRO_ACCEL`` else ``pure``), so the same suite measures both the
big-int and the vector kernels; CI runs it once per backend and
publishes both artifacts.

Usage::

    PYTHONPATH=src python benchmarks/microbench.py [--json] [--quick]
        [--accel {pure,vector,auto}]

Each benchmark is a closed loop over a fixed op count; the fastest of
three repetitions is reported (ops/sec), which filters scheduler noise
the same way ``repro bench`` does.  Numbers are host-specific: compare
them only across runs on the same machine (CI publishes them as an
artifact next to the BENCH file for exactly that purpose).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.accel import resolve_backend
from repro.config import CacheConfig, MeshConfig, DirectoryConfig, SignatureConfig
from repro.interconnect.mesh import Mesh
from repro.mem.cache import SetAssocCache
from repro.signatures.hashes import H3HashFamily

#: best-of repetitions per benchmark
REPEATS = 3


def _best_of(fn, ops: int, accel) -> float:
    """ops/sec for ``fn(ops, accel)`` — fastest of :data:`REPEATS` runs."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(ops, accel)
        best = min(best, time.perf_counter() - start)
    return ops / best


def bench_event_queue(ops: int, accel) -> None:
    """schedule+run cycles through the kernel (mixed zero/nonzero delay).

    Uses ``schedule_fast`` — the fire-and-forget path the simulator's
    non-cancellable call sites take on both backends.
    """
    queue = accel.make_event_queue()
    fn = (lambda: None)
    batch = 64
    for _ in range(ops // batch):
        for i in range(batch):
            queue.schedule_fast(i & 3, fn)  # 1/4 zero-delay fast path
        queue.run()


def bench_bloom_test(ops: int, accel) -> None:
    """membership tests against a populated 2 Kbit signature."""
    ctx = accel.make_signature_context(SignatureConfig())
    sig = ctx.make_signature()
    lines = [0x4000 + 64 * i for i in range(256)]
    for line in lines[:64]:
        sig.add(line)
    test = sig.test
    n = len(lines)
    for i in range(ops):
        test(lines[i % n])


def bench_signature_scan(ops: int, accel) -> None:
    """one precomputed mask probed against 128 armed signatures.

    The conflict scan's shape: every transactional access tests one
    line's H3 mask against all other cores' read/write signatures.  The
    pure scan loops over the set; the vector scan gathers the pool rows
    and compares them in one matrix op.  Probe lines are disjoint from
    the inserted ones, so the pure loop pays the full-scan worst case —
    exactly the no-conflict common case of a real run.
    """
    ctx = accel.make_signature_context(SignatureConfig())
    sigs = [ctx.make_signature() for _ in range(128)]
    for k, sig in enumerate(sigs):
        for j in range(16):
            sig.add(0x4000 + 64 * (k * 16 + j))
    scan = ctx.make_scan(sigs)
    probe = [ctx.mask_of(0x900_0000 + 64 * i) for i in range(64)]
    first_match = scan.first_match
    n = len(probe)
    for i in range(ops):
        first_match(probe[i % n])


def bench_cache_lookup(ops: int, accel) -> None:
    """L1-geometry lookups, ~3:1 hit:miss."""
    cache = SetAssocCache(CacheConfig(size_bytes=32_768, ways=4, latency=1))
    from repro.mem.cache import CacheLineState
    resident = [i for i in range(384)]
    for line in resident:
        cache.insert(line, CacheLineState.SHARED)
    probe = resident + [100_000 + i for i in range(128)]
    lookup = cache.lookup
    n = len(probe)
    for i in range(ops):
        lookup(probe[i % n])


def bench_h3_mask(ops: int, accel) -> None:
    """memoized H3 mask fetches (the conflict scan's per-line hash)."""
    cfg = SignatureConfig()
    family = H3HashFamily.shared(cfg.hashes, cfg.bits, cfg.seed)
    lines = [0x9000 + i for i in range(512)]
    mask = family.mask
    for line in lines:
        mask(line)  # fill the memo
    n = len(lines)
    for i in range(ops):
        mask(lines[i % n])


def bench_mesh_latency(ops: int, accel) -> None:
    """core→bank latency lookups on the 4x4 mesh (precomputed tables)."""
    mesh = Mesh(16, MeshConfig())
    core_to_bank = mesh.core_to_bank
    for i in range(ops):
        core_to_bank(i & 15, i)


def bench_directory_update(ops: int, accel) -> None:
    """owner/sharer recording plus holder queries."""
    directory = accel.make_directory(DirectoryConfig(), n_cores=16)
    record_owner = directory.record_owner
    holders = directory.holders
    for i in range(ops):
        line = i & 1023
        record_owner(line, i & 15)
        holders(line)


def bench_directory_probe(ops: int, accel) -> None:
    """holder queries against wide sharer sets (invalidation fan-out).

    ``_invalidate_holders`` and the read path materialize the holder
    set of lines shared by many cores; this times that query shape with
    every tracked line held by all 16 cores.
    """
    directory = accel.make_directory(DirectoryConfig(), n_cores=16)
    for line in range(256):
        for core in range(16):
            directory.record_shared(line, core)
    holders = directory.holders
    for i in range(ops):
        holders(i & 255)


BENCHES = (
    ("event_queue_ops", bench_event_queue, 200_000),
    ("bloom_test_ops", bench_bloom_test, 500_000),
    ("signature_scan_ops", bench_signature_scan, 100_000),
    ("cache_lookup_ops", bench_cache_lookup, 500_000),
    ("h3_mask_ops", bench_h3_mask, 500_000),
    ("mesh_latency_ops", bench_mesh_latency, 500_000),
    ("directory_update_ops", bench_directory_update, 200_000),
    ("directory_probe_ops", bench_directory_probe, 200_000),
)


def run_microbench(quick: bool = False, accel: str = "") -> dict[str, float]:
    """All benchmarks; returns ``{name: ops_per_sec}``.

    ``accel`` is an ``HTMConfig.accel``-style backend name; ``""``
    defers to ``$REPRO_ACCEL`` (default ``pure``).
    """
    backend = resolve_backend(accel)
    scale = 50 if quick else 1
    return {
        name: round(_best_of(fn, max(1000, ops // scale), backend), 1)
        for name, fn, ops in BENCHES
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="emit {name: ops_per_sec} JSON")
    parser.add_argument("--quick", action="store_true",
                        help="1/50th op counts (smoke-test mode)")
    parser.add_argument("--accel", default="",
                        choices=("pure", "vector", "auto"),
                        help="accel backend (default: $REPRO_ACCEL else pure)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the JSON report to PATH")
    args = parser.parse_args(argv)
    backend = resolve_backend(args.accel)
    results = run_microbench(quick=args.quick, accel=backend.name)
    doc = {
        "schema_version": 1,
        "quick": args.quick,
        "backend": backend.name,
        "ops_per_s": results,
    }
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        width = max(len(name) for name in results)
        print(f"accel backend: {backend.name}")
        for name, rate in results.items():
            print(f"{name:<{width}}  {rate:>14,.0f} ops/s")
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
