"""Figure 9: original DynTM (D, FasTM-based version management) versus
DynTM with SUV as its version-management scheme (D+S), including the
Committing component of the lazy mode.  Paper: D+S is 9.8% faster over
all 8 applications and 18.6% over the 5 high-contention ones."""

from conftest import D, DS, emit, geomean
from repro.stats.breakdown import COMPONENTS
from repro.stats.report import format_table
from repro.workloads import HIGH_CONTENTION, STAMP_APPS


def test_figure9_dyntm(benchmark, sim_cache):
    results = {}

    def run_all():
        results.update(sim_cache.run_grid(STAMP_APPS, (D, DS)))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for app in STAMP_APPS:
        base = results[(app, D)].breakdown.total or 1
        for scheme, label in ((D, "D"), (DS, "D+S")):
            res = results[(app, scheme)]
            norm = res.breakdown.normalized_to(base)
            rows.append([
                app if label == "D" else "", label,
                *(f"{norm[c]:.3f}" for c in COMPONENTS),
                f"{res.breakdown.total / base:.3f}",
            ])
    table = format_table(
        ["app", "scheme", *COMPONENTS, "total"],
        rows,
        title="Figure 9 — DynTM (D) vs DynTM+SUV (D+S), normalized to D",
    )

    lines = [table, ""]
    for label, apps in (("all 8 applications", STAMP_APPS),
                        ("5 high-contention", HIGH_CONTENTION)):
        speed = geomean([
            results[(a, D)].total_cycles / results[(a, DS)].total_cycles
            for a in apps
        ])
        paper = "1.098x" if len(apps) == 8 else "1.186x"
        lines.append(
            f"DynTM+SUV speedup ({label}): {speed:.3f}x (paper: {paper})"
        )
    emit("figure9_dyntm", "\n".join(lines))
