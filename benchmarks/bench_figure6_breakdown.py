"""Figure 6: execution-time breakdown of LogTM-SE (L), FasTM (F) and
SUV-TM (S) across the STAMP suite, normalized to LogTM-SE, plus the
Section I headline speedups (56%/95% over LogTM-SE, 9%/12% over FasTM
in the paper)."""

from conftest import F, L, S, emit, geomean
from repro.stats.breakdown import COMPONENTS
from repro.stats.charts import breakdown_chart
from repro.stats.report import format_table
from repro.workloads import HIGH_CONTENTION, STAMP_APPS


def test_figure6_breakdown(benchmark, sim_cache):
    results = {}

    def run_all():
        results.update(sim_cache.run_grid(STAMP_APPS, (L, F, S)))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for app in STAMP_APPS:
        base = results[(app, L)].breakdown.total or 1
        for scheme, label in ((L, "L"), (F, "F"), (S, "S")):
            res = results[(app, scheme)]
            norm = res.breakdown.normalized_to(base)
            rows.append([
                app if label == "L" else "", label,
                *(f"{norm[c]:.3f}" for c in COMPONENTS),
                f"{res.breakdown.total / base:.3f}",
            ])
    table = format_table(
        ["app", "scheme", *COMPONENTS, "total"],
        rows,
        title="Figure 6 — execution-time breakdown normalized to "
              "LogTM-SE (L=LogTM-SE, F=FasTM, S=SUV-TM)",
    )

    # the figure itself, as stacked bars
    charts = []
    for app in STAMP_APPS:
        charts.append(breakdown_chart(
            {
                f"{app}/L": results[(app, L)].breakdown,
                f"{app}/F": results[(app, F)].breakdown,
                f"{app}/S": results[(app, S)].breakdown,
            },
            baseline=f"{app}/L",
        ))

    # headline speedups (execution-time ratios, geometric mean)
    lines = [table, "", *charts, ""]
    for label, apps in (("all 8 applications", STAMP_APPS),
                        ("5 high-contention", HIGH_CONTENTION)):
        over_l = geomean([
            results[(a, L)].total_cycles / results[(a, S)].total_cycles
            for a in apps
        ])
        over_f = geomean([
            results[(a, F)].total_cycles / results[(a, S)].total_cycles
            for a in apps
        ])
        lines.append(
            f"SUV-TM speedup ({label}): {over_l:.2f}x over LogTM-SE, "
            f"{over_f:.2f}x over FasTM "
            f"(paper: {'1.56x / 1.09x' if len(apps) == 8 else '1.95x / 1.12x'})"
        )
    emit("figure6_breakdown", "\n".join(lines))

    # the paper's ordering must hold
    for app in STAMP_APPS:
        assert results[(app, S)].total_cycles <= results[(app, L)].total_cycles, (
            f"SUV slower than LogTM-SE on {app}"
        )
