"""Smoke tests: every example script runs to completion and prints the
expected landmarks."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 420) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_pathologies_example():
    out = run_example("pathologies.py")
    assert "repair pathology" in out or "Aborting" in out
    assert "logtm-se" in out and "suv" in out and "lazy" in out


def test_quickstart_example():
    out = run_example("quickstart.py", "ssca2", "suv")
    assert "execution-time breakdown" in out
    assert "redirect-entry states" in out
    assert "LOCAL_VALID" in out


@pytest.mark.slow
def test_compare_schemes_example():
    out = run_example("compare_schemes.py", "intruder", "tiny")
    assert "SUV speedup over LogTM-SE" in out
    assert "normalized to LogTM-SE" in out


@pytest.mark.slow
def test_contention_study_example():
    out = run_example("contention_study.py")
    assert "contention sweep" in out
    assert "SUV vs FasTM" in out


def test_suspension_demo_example():
    out = run_example("suspension_demo.py")
    assert "context switches" in out
    assert "open nesting" in out
