"""Unit + property tests for Bloom signatures (incl. Figure 5 semantics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures.bloom import BloomSignature, CountingSummarySignature
from repro.signatures.hashes import H3HashFamily


def test_hash_family_requires_power_of_two():
    with pytest.raises(ValueError):
        H3HashFamily(4, 1000, seed=1)


def test_hash_family_deterministic():
    a = H3HashFamily(4, 2048, seed=5)
    b = H3HashFamily(4, 2048, seed=5)
    assert a.indexes(0xDEADBEEF) == b.indexes(0xDEADBEEF)


def test_hash_family_shared_instance():
    a = H3HashFamily.shared(4, 2048, seed=9)
    b = H3HashFamily.shared(4, 2048, seed=9)
    assert a is b


def test_hash_indexes_in_range():
    fam = H3HashFamily(4, 2048, seed=3)
    for v in range(0, 10_000, 97):
        assert all(0 <= i < 2048 for i in fam.indexes(v))


def test_empty_signature_rejects_everything():
    sig = BloomSignature(2048, 4)
    assert not sig.test(123)
    assert sig.is_empty


def test_no_false_negatives_small():
    sig = BloomSignature(2048, 4)
    values = list(range(0, 4000, 61))
    for v in values:
        sig.add(v)
    assert all(sig.test(v) for v in values)


@given(st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_no_false_negatives(values):
    sig = BloomSignature(2048, 4)
    for v in values:
        sig.add(v)
    assert all(sig.test(v) for v in values)


def test_clear_resets():
    sig = BloomSignature(2048, 4)
    sig.add(42)
    sig.clear()
    assert sig.is_empty and not sig.test(42)
    assert sig.added == 0


def test_union_merges_memberships():
    a = BloomSignature(2048, 4)
    b = BloomSignature(2048, 4)
    a.add(1)
    b.add(2)
    a.union_inplace(b)
    assert a.test(1) and a.test(2)


def test_union_size_mismatch_rejected():
    a = BloomSignature(2048, 4)
    b = BloomSignature(1024, 4)
    with pytest.raises(ValueError):
        a.union_inplace(b)


def test_intersects_detects_shared_bits():
    a = BloomSignature(2048, 4)
    b = BloomSignature(2048, 4)
    a.add(777)
    b.add(777)
    assert a.intersects(b)
    c = BloomSignature(2048, 4)
    assert not a.intersects(c)


def test_false_positive_rate_grows_with_fill():
    sig = BloomSignature(2048, 4)
    assert sig.false_positive_rate() == 0.0
    for v in range(200):
        sig.add(v)
    fp_small = sig.false_positive_rate()
    for v in range(200, 2000):
        sig.add(v)
    assert sig.false_positive_rate() > fp_small


def test_small_signature_produces_false_positives():
    # with 16 bits and plenty of inserts, aliasing is certain
    sig = BloomSignature(16, 2, seed=1)
    for v in range(0, 64):
        sig.add(v)
    assert any(sig.test(v) for v in range(10_000, 10_100))


# ---------------------------------------------------------------------------
# CountingSummarySignature — Figure 5 semantics
# ---------------------------------------------------------------------------

def test_summary_add_then_test():
    s = CountingSummarySignature(2048, 2)
    s.add(0x40)
    assert s.test(0x40)
    assert not s.test(0x80)


def test_summary_delete_unique_address_removes_it():
    # the Figure 5 walk-through: add @1, add @3, inquire @1, delete @1
    s = CountingSummarySignature(2048, 2)
    s.add(1)
    s.add(3)
    assert s.test(1) and s.test(3)
    s.remove(1)
    assert not s.test(1)  # unique bits of @1 were cleared
    assert s.test(3)      # @3 untouched


def test_summary_delete_is_conservative_on_shared_bits():
    # force bit sharing with a tiny filter: deletion must never produce a
    # false negative for a still-present address
    s = CountingSummarySignature(16, 2, seed=7)
    values = list(range(0, 48))
    for v in values:
        s.add(v)
    s.remove(values[0])
    for v in values[1:]:
        assert s.test(v), f"false negative for {v} after deleting {values[0]}"


@given(
    st.lists(st.integers(min_value=0, max_value=1 << 30),
             min_size=1, max_size=100, unique=True),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_property_summary_never_false_negative(values, data):
    s = CountingSummarySignature(256, 2, seed=3)
    for v in values:
        s.add(v)
    removed = data.draw(st.sampled_from(values))
    s.remove(removed)
    for v in values:
        if v != removed:
            assert s.test(v)


def test_summary_double_add_makes_bits_non_unique():
    s = CountingSummarySignature(2048, 2)
    s.add(5)
    s.add(5)
    s.remove(5)
    # bits were written twice, so removal is a no-op: superset behaviour
    assert s.test(5)


def test_summary_clear():
    s = CountingSummarySignature(2048, 2)
    s.add(1)
    s.clear()
    assert s.is_empty and not s.test(1)


def test_summary_counters():
    s = CountingSummarySignature(2048, 2)
    s.add(1)
    s.add(2)
    s.remove(1)
    assert s.adds == 2 and s.removes == 1


def test_union_with_no_new_bits_does_not_inflate_count():
    # regression: union_inplace used to add other's count even when the
    # OR set no new bits, drifting `added` away from reality
    a = BloomSignature(2048, 4)
    b = BloomSignature(2048, 4)
    a.add(42)
    b.add(42)  # identical membership -> no new bits
    before = a.added
    a.union_inplace(b)
    assert a.added == before

    empty = BloomSignature(2048, 4)
    a.union_inplace(empty)
    assert a.added == before

    c = BloomSignature(2048, 4)
    c.add(7)
    a.union_inplace(c)  # genuinely new bits do count
    assert a.added == before + c.added
