"""Backend registry: selection precedence, fallback, and failure modes."""

import pytest

import repro.accel as accel_mod
from repro.accel import (
    ACCEL_ENV,
    available_backends,
    default_backend_name,
    resolve_backend,
    vector_unavailable_reason,
)
from repro.config import HTMConfig
from repro.errors import AccelUnavailableError, ReproError


def test_default_is_pure(monkeypatch):
    monkeypatch.delenv(ACCEL_ENV, raising=False)
    assert resolve_backend().name == "pure"
    assert resolve_backend("").name == "pure"
    assert default_backend_name() == "pure"


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv(ACCEL_ENV, "vector")
    assert resolve_backend("").name == "vector"
    assert default_backend_name() == "vector"


def test_explicit_name_beats_env(monkeypatch):
    monkeypatch.setenv(ACCEL_ENV, "vector")
    assert resolve_backend("pure").name == "pure"


def test_auto_picks_vector_when_available(monkeypatch):
    monkeypatch.delenv(ACCEL_ENV, raising=False)
    assert vector_unavailable_reason() == ""  # CI hosts are little-endian
    assert resolve_backend("auto").name == "vector"


def test_auto_degrades_silently_when_unavailable(monkeypatch):
    monkeypatch.setattr(
        accel_mod, "vector_unavailable_reason", lambda: "no numpy here"
    )
    assert resolve_backend("auto").name == "pure"


def test_forced_vector_raises_when_unavailable(monkeypatch):
    monkeypatch.setattr(
        accel_mod, "vector_unavailable_reason", lambda: "no numpy here"
    )
    with pytest.raises(AccelUnavailableError) as exc_info:
        resolve_backend("vector")
    err = exc_info.value
    assert err.backend == "vector"
    assert "no numpy here" in str(err)
    assert isinstance(err, ReproError)  # catchable with the family base


def test_forced_unavailable_is_reported_not_raised(monkeypatch):
    monkeypatch.setenv(ACCEL_ENV, "vector")
    monkeypatch.setattr(
        accel_mod, "vector_unavailable_reason", lambda: "no numpy here"
    )
    assert default_backend_name() == "vector (unavailable)"


def test_unknown_backend_name_rejected():
    with pytest.raises(ValueError, match="unknown accel backend"):
        resolve_backend("cuda")


def test_available_backends_lists_pure_first():
    names = available_backends()
    assert names[0] == "pure"
    assert set(names) <= {"pure", "vector"}


def test_backends_are_singletons():
    assert resolve_backend("pure") is resolve_backend("pure")
    assert resolve_backend("vector") is resolve_backend("vector")


def test_htm_config_validates_accel_values():
    for name in ("", "pure", "vector", "auto"):
        assert HTMConfig(accel=name).accel == name
    with pytest.raises(ValueError):
        HTMConfig(accel="cuda")


def test_simulator_honours_config_accel(monkeypatch):
    from repro.config import SimConfig
    from repro.simulator import Simulator

    monkeypatch.delenv(ACCEL_ENV, raising=False)
    config = SimConfig(n_cores=2, htm=HTMConfig(accel="vector"))
    sim = Simulator(config=config, scheme="suv")
    assert sim.accel.name == "vector"
    assert sim._sig_pool is not None
    # default stays pure, and pure runs have no row pool
    sim = Simulator(config=SimConfig(n_cores=2), scheme="suv")
    assert sim.accel.name == "pure"
    assert sim._sig_pool is None
