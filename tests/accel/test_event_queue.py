"""Calendar-queue parity: delivery order, cancel, budgets, schedule_fast.

The vector backend's :class:`~repro.accel.vector.VectorEventQueue` must
execute every schedule in exactly the pure heap's ``(time, seq)`` order
— including zero-delay events scheduled mid-drain and cancellations —
and replicate the pure queue's budget semantics (what raises, the
reported cycle, whether the queue is resumable afterwards).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import resolve_backend
from repro.errors import BudgetExhausted
from repro.sim.kernel import EventQueue

PURE = resolve_backend("pure")
VECTOR = resolve_backend("vector")


def _both():
    return PURE.make_event_queue(), VECTOR.make_event_queue()


def test_pure_backend_returns_kernel_queue():
    assert isinstance(PURE.make_event_queue(), EventQueue)


@given(st.lists(st.integers(min_value=0, max_value=12),
                min_size=1, max_size=60))
@settings(max_examples=80, deadline=None)
def test_delivery_order_matches_pure(delays):
    orders = []
    for queue in _both():
        log = []
        for i, delay in enumerate(delays):
            queue.schedule(delay, lambda i=i: log.append((queue.now, i)))
        queue.run()
        orders.append(log)
    assert orders[0] == orders[1]


@given(st.lists(st.integers(min_value=0, max_value=6),
                min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_schedule_fast_order_matches_schedule(delays):
    orders = []
    for queue in _both():
        log = []
        for i, delay in enumerate(delays):
            if i % 2:
                queue.schedule_fast(delay, lambda i=i: log.append((queue.now, i)))
            else:
                queue.schedule(delay, lambda i=i: log.append((queue.now, i)))
        queue.run()
        orders.append(log)
    assert orders[0] == orders[1]


def test_zero_delay_mid_drain_runs_same_cycle():
    for queue in _both():
        log = []

        def chain(n):
            log.append((queue.now, n))
            if n < 3:
                queue.schedule_fast(0, lambda: chain(n + 1))

        queue.schedule(5, lambda: chain(0))
        queue.schedule(6, lambda: log.append((queue.now, "later")))
        queue.run()
        assert log == [(5, 0), (5, 1), (5, 2), (5, 3), (6, "later")]


def test_cancelled_events_are_skipped_identically():
    for queue in _both():
        log = []
        keep = queue.schedule(3, lambda: log.append("keep"))
        kill = queue.schedule(3, lambda: log.append("kill"))
        queue.schedule(4, lambda: log.append("tail"))
        kill.cancel()
        assert len(queue) == 2
        queue.run()
        assert log == ["keep", "tail"]
        assert not keep.cancelled


def test_event_budget_semantics_match():
    outcomes = []
    for queue in _both():
        log = []
        for i in range(6):
            queue.schedule(i, lambda i=i: log.append(i))
        with pytest.raises(BudgetExhausted) as exc_info:
            queue.run(max_events=3)
        # resumable: the unexecuted tail must still be intact
        remaining = queue.run()
        outcomes.append((log, exc_info.value.cycle,
                         exc_info.value.context.get("events"), remaining))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == [0, 1, 2, 3, 4, 5]


def test_time_budget_semantics_match():
    outcomes = []
    for queue in _both():
        log = []
        queue.schedule(1, lambda: log.append(1))
        queue.schedule(9, lambda: log.append(9))
        with pytest.raises(BudgetExhausted) as exc_info:
            queue.run(max_time=5)
        outcomes.append((log, exc_info.value.cycle, str(exc_info.value)))
    assert outcomes[0] == outcomes[1]


def test_time_budget_skips_dead_only_buckets():
    for queue in _both():
        log = []
        queue.schedule(1, lambda: log.append(1))
        doomed = queue.schedule(9, lambda: log.append(9))
        doomed.cancel()
        assert queue.run(max_time=5) == 1  # no raise: nothing live past 5
        assert log == [1]


def test_now_and_len_track_pure():
    for queue in _both():
        queue.schedule(4, lambda: None)
        queue.schedule(7, lambda: None)
        assert len(queue) == 2
        queue.step()
        assert (queue.now, len(queue)) == (4, 1)
        queue.step()
        assert (queue.now, len(queue)) == (7, 0)


def test_at_schedules_absolute_time():
    for queue in _both():
        log = []
        queue.schedule(3, lambda: queue.at(10, lambda: log.append(queue.now)))
        queue.run()
        assert log == [10]


def test_negative_delay_rejected():
    for queue in _both():
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)
        with pytest.raises(ValueError):
            queue.schedule_fast(-1, lambda: None)


def test_vector_compaction_drops_dead_events():
    queue = VECTOR.make_event_queue()
    ran = []
    for i in range(10):
        queue.schedule(5, lambda i=i: ran.append(i))
    dead = [queue.schedule(6, lambda: ran.append(-1)) for _ in range(200)]
    for ev in dead:
        ev.cancel()
    assert len(queue) == 10
    total_queued = sum(len(b) for b in queue._buckets.values())
    assert total_queued < 220  # compaction rewrote the dominated bucket
    assert queue.run() == 10
    assert ran == list(range(10))


def test_peak_queue_tracks_live_events():
    for queue in _both():
        for _ in range(5):
            queue.schedule(1, lambda: None)
        queue.run()
        assert queue.peak_queue == 5
