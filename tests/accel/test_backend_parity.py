"""End-to-end cross-backend parity: the determinism contract, enforced.

Every canonical scheme (plus the composed-policy and mvsuv ones in
``available_schemes()``) must produce **byte-identical** result JSON
under the pure and vector backends, per seed.  This is the gate that
lets the backend stay out of :class:`~repro.runner.ExperimentSpec`
identity: cached results are valid whichever backend computed them.
"""

import pytest

from repro.accel import ACCEL_ENV
from repro.htm.vm.base import available_schemes
from repro.runner import ExperimentSpec, execute_spec

#: one small pin per seed; tiny scale keeps the cross product tier-1-fast
SEEDS = (1, 2, 3)


def _result_json(scheme: str, seed: int, accel: str) -> str:
    spec = ExperimentSpec(
        workload="ssca2",
        scheme=scheme,
        scale="tiny",
        seed=seed,
        cores=4,
        config_overrides={"htm.accel": accel},
    )
    return execute_spec(spec).to_json()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme", available_schemes())
def test_backends_produce_byte_identical_results(scheme, seed):
    pure = _result_json(scheme, seed, "pure")
    vector = _result_json(scheme, seed, "vector")
    assert pure == vector, (
        f"{scheme} seed={seed}: vector backend diverged from pure — "
        "the accel determinism contract is broken"
    )


def test_env_selection_is_equivalent_to_config(monkeypatch):
    spec = ExperimentSpec(workload="synthetic", scheme="suv",
                          scale="tiny", seed=7, cores=4)
    monkeypatch.setenv(ACCEL_ENV, "pure")
    pure = execute_spec(spec).to_json()
    monkeypatch.setenv(ACCEL_ENV, "vector")
    vector = execute_spec(spec).to_json()
    assert pure == vector


def test_multithreaded_parity():
    """Context multiplexing exercises the suspended-frame scan path."""
    for scheme in ("suv", "lazy"):
        results = set()
        for accel in ("pure", "vector"):
            spec = ExperimentSpec(
                workload="synthetic",
                scheme=scheme,
                scale="tiny",
                seed=5,
                cores=2,
                threads=4,
                config_overrides={"htm.accel": accel},
            )
            results.add(execute_spec(spec).to_json())
        assert len(results) == 1, f"{scheme}: multiplexed runs diverged"


def test_faulted_parity():
    """Fault campaigns schedule through the cancellable path."""
    results = set()
    for accel in ("pure", "vector"):
        spec = ExperimentSpec(
            workload="synthetic",
            scheme="suv",
            scale="tiny",
            seed=11,
            cores=4,
            fault_plan="sig-storm",
            config_overrides={"htm.accel": accel},
        )
        results.add(execute_spec(spec).to_json())
    assert len(results) == 1
