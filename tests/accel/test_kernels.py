"""Hypothesis parity properties: vector kernels vs the big-int reference.

Every vector substrate must be *bit-identical* to its pure sibling for
the same operation sequence.  These properties drive random op streams
through both implementations side by side and compare full filter
state, not just query answers — the strongest form of the determinism
contract the backends promise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import resolve_backend
from repro.config import DirectoryConfig, SignatureConfig
from repro.signatures.bloom import BloomSignature, CountingSummarySignature
from repro.signatures.hashes import H3HashFamily

PURE = resolve_backend("pure")
VECTOR = resolve_backend("vector")

lines = st.integers(min_value=0, max_value=(1 << 28) - 1)


def _as_int(arr: np.ndarray) -> int:
    """The big-int value of a little-endian uint64 word array."""
    return int.from_bytes(arr.tobytes(), "little")


# ---------------------------------------------------------------------------
# word-array layout
# ---------------------------------------------------------------------------
@given(st.lists(lines, max_size=40))
@settings(max_examples=60, deadline=None)
def test_mask_words_match_big_int_masks(values):
    family = H3HashFamily.shared(4, 2048, seed=0xB100)
    for value in values:
        assert _as_int(family.mask_words(value)) == family.mask(value)
        assert _as_int(family.unique_mask_words(value)) == family.unique_mask(value)


def test_unique_mask_drops_colliding_indexes():
    family = H3HashFamily.shared(2, 64, seed=7)
    for value in range(4096):
        idx = family.indexes(value)
        unique = family.unique_mask(value)
        if len(set(idx)) < len(idx):
            assert unique == 0  # both hashes hit the same bit
        else:
            assert unique == family.mask(value)


# ---------------------------------------------------------------------------
# Bloom signatures
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.sampled_from(["add", "test", "clear"]), lines),
                max_size=60))
@settings(max_examples=60, deadline=None)
def test_vector_bloom_matches_pure_bloom(ops):
    cfg = SignatureConfig()
    pure_sig = BloomSignature(cfg.bits, cfg.hashes, cfg.seed)
    ctx = VECTOR.make_signature_context(cfg)
    vec_sig = ctx.make_signature()
    for op, value in ops:
        if op == "add":
            pure_sig.add(value)
            vec_sig.add(value)
        elif op == "clear":
            pure_sig.clear()
            vec_sig.clear()
        else:
            assert pure_sig.test(value) == vec_sig.test(value)
        assert _as_int(ctx.pool.arr[vec_sig._row]) == pure_sig._word
        assert vec_sig.popcount == pure_sig.popcount
        assert vec_sig.is_empty == pure_sig.is_empty
        assert vec_sig.added == pure_sig.added


@given(st.lists(lines, max_size=30), st.lists(lines, max_size=30))
@settings(max_examples=40, deadline=None)
def test_vector_union_matches_pure_union(left, right):
    cfg = SignatureConfig()
    ctx = VECTOR.make_signature_context(cfg)
    pure_a = BloomSignature(cfg.bits, cfg.hashes, cfg.seed)
    pure_b = BloomSignature(cfg.bits, cfg.hashes, cfg.seed)
    vec_a, vec_b = ctx.make_signature(), ctx.make_signature()
    for value in left:
        pure_a.add(value)
        vec_a.add(value)
    for value in right:
        pure_b.add(value)
        vec_b.add(value)
    pure_a.union_inplace(pure_b)
    vec_a.union_inplace(vec_b)
    assert _as_int(ctx.pool.arr[vec_a._row]) == pure_a._word
    assert vec_a.added == pure_a.added
    assert pure_a.intersects(pure_b) == vec_a.intersects(vec_b)


def test_pool_rows_are_recycled_zeroed():
    ctx = VECTOR.make_signature_context(SignatureConfig())
    sig = ctx.make_signature()
    row = sig._row
    sig.add(1234)
    del sig
    fresh = ctx.make_signature()
    assert fresh._row == row  # LIFO free list hands the row back
    assert fresh.is_empty


def test_pool_growth_preserves_contents():
    ctx = VECTOR.make_signature_context(SignatureConfig())
    sigs = [ctx.make_signature() for _ in range(100)]  # forces growth
    for i, sig in enumerate(sigs):
        sig.add(i)
    for i, sig in enumerate(sigs):
        assert sig.test(i)


# ---------------------------------------------------------------------------
# batched scan
# ---------------------------------------------------------------------------
@given(
    st.lists(st.lists(lines, max_size=20), min_size=0, max_size=24),
    st.lists(lines, min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_scan_first_match_is_backend_independent(sig_contents, probes):
    cfg = SignatureConfig()
    pure_ctx = PURE.make_signature_context(cfg)
    vec_ctx = VECTOR.make_signature_context(cfg)
    pure_sigs, vec_sigs = [], []
    for contents in sig_contents:
        ps, vs = pure_ctx.make_signature(), vec_ctx.make_signature()
        for value in contents:
            ps.add(value)
            vs.add(value)
        pure_sigs.append(ps)
        vec_sigs.append(vs)
    pure_scan = pure_ctx.make_scan(pure_sigs)
    vec_scan = vec_ctx.make_scan(vec_sigs)
    for probe in probes:
        assert (pure_scan.first_match(pure_ctx.mask_of(probe))
                == vec_scan.first_match(vec_ctx.mask_of(probe)))


def test_scan_returns_first_index_for_duplicate_hits():
    cfg = SignatureConfig()
    for backend in (PURE, VECTOR):
        ctx = backend.make_signature_context(cfg)
        sigs = [ctx.make_signature() for _ in range(4)]
        sigs[1].add(77)
        sigs[3].add(77)
        scan = ctx.make_scan(sigs)
        assert scan.first_match(ctx.mask_of(77)) == 1


def test_pool_first_match_matches_pure_loop():
    cfg = SignatureConfig()
    ctx = VECTOR.make_signature_context(cfg)
    sigs = [ctx.make_signature() for _ in range(8)]
    for i, sig in enumerate(sigs):
        sig.add(1000 + i)
    rows = [sig._row for sig in sigs]
    for probe in [1000, 1003, 1007, 4242]:
        mask = ctx.mask_of(probe)
        expect = next(
            (i for i, sig in enumerate(sigs) if sig.test_mask(mask)), -1
        )
        assert ctx.pool.first_match(rows, mask) == expect


# ---------------------------------------------------------------------------
# counting summary (Figure 5)
# ---------------------------------------------------------------------------
summary_ops = st.lists(
    st.tuples(st.sampled_from(["add", "remove", "test", "clear"]), lines),
    max_size=80,
)


@given(summary_ops)
@settings(max_examples=80, deadline=None)
def test_vector_counting_summary_matches_pure(ops):
    pure_sum = CountingSummarySignature(2048, 2)
    vec_sum = VECTOR.make_counting_summary(2048, 2)
    for op, value in ops:
        if op == "add":
            pure_sum.add(value)
            vec_sum.add(value)
        elif op == "remove":
            pure_sum.remove(value)
            vec_sum.remove(value)
        elif op == "clear":
            pure_sum.clear()
            vec_sum.clear()
        else:
            assert pure_sum.test(value) == vec_sum.test(value)
        assert _as_int(vec_sum._sig) == pure_sum._sig
        assert _as_int(vec_sum._once) == pure_sum._once
        assert vec_sum.popcount == pure_sum.popcount
        assert vec_sum.is_empty == pure_sum.is_empty
    assert (vec_sum.adds, vec_sum.removes) == (pure_sum.adds, pure_sum.removes)


@given(st.lists(lines, max_size=60))
@settings(max_examples=80, deadline=None)
def test_vector_rebuild_matches_sequential_reinsertion(values):
    pure_sum = CountingSummarySignature(2048, 2)
    vec_sum = VECTOR.make_counting_summary(2048, 2)
    pure_sum.rebuild(values)
    vec_sum.rebuild(values)
    assert _as_int(vec_sum._sig) == pure_sum._sig
    assert _as_int(vec_sum._once) == pure_sum._once


@given(st.lists(st.integers(min_value=0, max_value=500), max_size=40))
@settings(max_examples=60, deadline=None)
def test_rebuild_collision_heavy_geometry(values):
    # 64-bit / 2-hash filters collide constantly, stressing the
    # duplicate-index and once-bit characterization of the rebuild
    pure_sum = CountingSummarySignature(64, 2, seed=0x5BB)
    vec_sum = VECTOR.make_counting_summary(64, 2, seed=0x5BB)
    pure_sum.rebuild(values)
    vec_sum.rebuild(values)
    assert _as_int(vec_sum._sig) == pure_sum._sig
    assert _as_int(vec_sum._once) == pure_sum._once


# ---------------------------------------------------------------------------
# directory
# ---------------------------------------------------------------------------
dir_ops = st.lists(
    st.tuples(
        st.sampled_from(["shared", "owner", "drop"]),
        st.integers(min_value=0, max_value=31),   # line
        st.integers(min_value=0, max_value=15),   # core
    ),
    max_size=120,
)


@given(dir_ops)
@settings(max_examples=80, deadline=None)
def test_vector_directory_matches_pure(ops):
    pure_dir = PURE.make_directory(DirectoryConfig(), n_cores=16)
    vec_dir = VECTOR.make_directory(DirectoryConfig(), n_cores=16)
    for op, line, core in ops:
        if op == "shared":
            pure_dir.record_shared(line, core)
            vec_dir.record_shared(line, core)
        elif op == "owner":
            pure_dir.record_owner(line, core)
            vec_dir.record_owner(line, core)
        else:
            pure_dir.drop(line, core)
            vec_dir.drop(line, core)
        assert pure_dir.holders(line) == vec_dir.holders(line)
        assert pure_dir.owner_of(line) == vec_dir.owner_of(line)
    assert pure_dir.tracked_lines == vec_dir.tracked_lines
    assert pure_dir.lookups == vec_dir.lookups
    for line in range(32):
        assert pure_dir.holders(line) == vec_dir.holders(line)


def test_vector_directory_entry_view():
    vec_dir = VECTOR.make_directory(DirectoryConfig(), n_cores=8)
    vec_dir.record_shared(5, 1)
    vec_dir.record_shared(5, 4)
    entry = vec_dir.entry(5)
    assert entry.sharers == {1, 4}
    assert not entry.is_idle
    vec_dir.drop(5, 1)
    vec_dir.drop(5, 4)
    assert vec_dir.tracked_lines == 0
