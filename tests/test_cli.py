"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "genome" in out and "suv" in out and "dyntm+suv" in out


def test_hwcost_command(capsys):
    assert main(["hwcost"]) == 0
    out = capsys.readouterr().out
    assert "Table VII" in out
    assert "1.382" in out  # 90nm access time


def test_run_command(capsys):
    rc = main(["run", "ssca2", "suv", "--scale", "tiny", "--cores", "4",
               "--stagger", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "commits" in out and "NoTrans" in out


def test_run_with_stats(capsys):
    main(["run", "ssca2", "suv", "--scale", "tiny", "--cores", "4",
          "--stats"])
    out = capsys.readouterr().out
    assert "redirects" in out


def test_compare_command(capsys):
    rc = main(["compare", "ssca2", "--scale", "tiny", "--cores", "4",
               "--schemes", "logtm-se", "suv"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "normalized to logtm-se" in out


def test_sweep_command(capsys):
    rc = main(["sweep", "ssca2", "l1_entries", "64", "512",
               "--scale", "tiny", "--cores", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweep of l1_entries" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "quicksort"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
