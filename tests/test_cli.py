"""Tests for the command-line interface."""

import pytest

from repro.cli import SCHEMES, build_parser, main
from repro.htm.vm.base import available_schemes


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "genome" in out and "suv" in out and "dyntm+suv" in out


def test_hwcost_command(capsys):
    assert main(["hwcost"]) == 0
    out = capsys.readouterr().out
    assert "Table VII" in out
    assert "1.382" in out  # 90nm access time


def test_run_command(capsys):
    rc = main(["run", "ssca2", "suv", "--scale", "tiny", "--cores", "4",
               "--stagger", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "commits" in out and "NoTrans" in out


def test_run_with_stats(capsys):
    main(["run", "ssca2", "suv", "--scale", "tiny", "--cores", "4",
          "--stats"])
    out = capsys.readouterr().out
    assert "redirects" in out


def test_compare_command(capsys):
    rc = main(["compare", "ssca2", "--scale", "tiny", "--cores", "4",
               "--schemes", "logtm-se", "suv"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "normalized to logtm-se" in out


def test_sweep_command(capsys):
    rc = main(["sweep", "ssca2", "l1_entries", "64", "512",
               "--scale", "tiny", "--cores", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sweep of l1_entries" in out


def test_schemes_derived_from_registry():
    assert SCHEMES == available_schemes()


def test_sweep_emits_scheme_appropriate_stats(capsys):
    rc = main(["sweep", "ssca2", "l1_entries", "64",
               "--scale", "tiny", "--cores", "4", "--scheme", "logtm-se"])
    assert rc == 0
    out = capsys.readouterr().out
    # logtm-se has no redirect tables: no misleading SUV-only columns
    assert "L1-table miss" not in out
    assert "log writes" in out


def test_matrix_command_caches_results(capsys, tmp_path):
    argv = ["matrix", "--workloads", "ssca2", "synthetic",
            "--schemes", "logtm-se", "suv", "--seeds", "1", "2",
            "--scale", "tiny", "--cores", "4", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"), "--quiet"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "8 specs" in first and "cache hits 0/8" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "cache hits 8/8 (100%)" in second
    # cached results reproduce the fresh ones exactly (the trailing
    # column shows wall time vs "cache", so compare everything before it)
    def stat_rows(text):
        return [line.rsplit("|", 1)[0] for line in text.splitlines()
                if line.count("|") > 2 and "cache hits" not in line]

    assert stat_rows(first) == stat_rows(second)


def test_matrix_prints_campaign_report(capsys, tmp_path):
    rc = main(["matrix", "--workloads", "ssca2", "--schemes", "suv",
               "--seeds", "1", "--scale", "tiny", "--cores", "4",
               "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
               "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "campaign report:" in out
    assert "1 total | 1 ok, 0 failed" in out


def test_matrix_resume_satisfies_from_journal(capsys, tmp_path):
    argv = ["matrix", "--workloads", "ssca2", "--schemes", "suv",
            "--seeds", "1", "2", "--scale", "tiny", "--cores", "4",
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
            "--resume", str(tmp_path / "campaign.journal"), "--quiet"]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "cache hits 2/2" in out
    assert "2 cached, 2 resumed" in out


def test_matrix_report_appended_to_artifacts(tmp_path):
    import json

    artifacts = tmp_path / "runs.jsonl"
    rc = main(["matrix", "--workloads", "ssca2", "--schemes", "suv",
               "--seeds", "1", "--scale", "tiny", "--cores", "4",
               "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
               "--artifacts", str(artifacts), "--quiet"])
    assert rc == 0
    records = [json.loads(line) for line in artifacts.read_text().splitlines()]
    assert records[-1]["kind"] == "campaign_report"
    assert records[-1]["report"]["ok"] == 1


def test_cache_verify_command(capsys, tmp_path):
    from repro.runner import ExperimentSpec, ResultCache
    from repro.runner.executor import execute_spec

    spec = ExperimentSpec("ssca2", scheme="suv", scale="tiny", cores=4)
    cache = ResultCache(tmp_path / "cache")
    cache.put(spec, execute_spec(spec))
    assert main(["cache", "verify", "--cache-dir",
                 str(tmp_path / "cache")]) == 0
    assert "1 ok, 0 quarantined" in capsys.readouterr().out

    cache.path_for(spec).write_text("{not json")
    assert main(["cache", "verify", "--cache-dir",
                 str(tmp_path / "cache")]) == 1
    out = capsys.readouterr().out
    assert "1 quarantined" in out and "unreadable JSON" in out


def test_cache_stats_command(capsys, tmp_path):
    from repro.runner import ResultCache

    ResultCache(tmp_path / "cache")  # create an empty cache
    assert main(["cache", "stats", "--cache-dir",
                 str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "quarantined" in out


def test_chaos_command_smoke(capsys, tmp_path):
    rc = main(["chaos", "--presets", "crash", "--seeds", "2",
               "--workloads", "ssca2", "--schemes", "suv",
               "--scale", "tiny", "--cores", "4", "--jobs", "2",
               "--kill-after", "1", "--root", str(tmp_path / "chaos")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "1 campaigns | 1 passed, 0 failed" in out
    assert (tmp_path / "chaos" / "crash-s2" / "report.json").exists()
    assert (tmp_path / "chaos" / "crash-s2" / "campaign.journal").exists()


def test_run_trace_chrome(tmp_path, capsys):
    import json

    path = tmp_path / "trace.json"
    rc = main(["run", "synthetic", "suv", "--scale", "tiny", "--cores", "4",
               "--trace", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace:" in out and "Isolation windows" in out
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_run_trace_jsonl(tmp_path, capsys):
    import json

    path = tmp_path / "trace.jsonl"
    rc = main(["run", "synthetic", "suv", "--scale", "tiny", "--cores", "4",
               "--trace", str(path), "--trace-format", "jsonl"])
    assert rc == 0
    first = json.loads(path.read_text().splitlines()[0])
    assert {"ts", "kind", "core"} <= set(first)


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "quicksort"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_with_fault_plan_and_check(capsys):
    rc = main(["run", "synthetic", "suv", "--scale", "tiny", "--cores", "4",
               "--fault-plan", "tx-kill", "--check"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "faults:" in out and "events injected" in out
    assert "oracle: PASSED" in out


def test_run_rejects_unknown_fault_plan():
    with pytest.raises(ValueError, match="unknown fault plan"):
        main(["run", "synthetic", "suv", "--scale", "tiny", "--cores", "4",
              "--fault-plan", "no-such-plan"])


def test_faults_campaign_command(capsys):
    rc = main(["faults", "--workloads", "synthetic", "--schemes", "suv",
               "--plans", "tx-kill", "--scale", "tiny", "--cores", "4",
               "--jobs", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fault campaign" in out
    assert "(none)" in out      # the fault-free baseline row
    assert "tx-kill" in out
    assert "pass" in out and "FAIL" not in out


def test_list_mentions_fault_plans(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fault plans:" in out and "tx-kill" in out


def test_schemes_command_table(capsys):
    assert main(["schemes"]) == 0
    out = capsys.readouterr().out
    assert "canonical schemes" in out
    assert "redirect" in out and "adaptive" in out
    assert "legal of" in out


def test_schemes_list_json_smoke(capsys):
    import json

    assert main(["schemes", "--list", "--json"]) == 0
    names = json.loads(capsys.readouterr().out)
    assert "redirect+lazy+stall+serial" in names
    assert "undo+eager+timestamp+serial" in names
    assert "undo+lazy+stall+serial" not in names  # illegal: not listed

    assert main(["schemes", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"]["legal"] == len(doc["legal"])
    assert doc["counts"]["total"] == len(doc["legal"]) + len(doc["illegal"])
    assert all(row["reason"] for row in doc["illegal"])
    assert {row["name"] for row in doc["canonical"]} == set(SCHEMES)


def test_schemes_markdown_matches_registry(capsys):
    assert main(["schemes", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "| Scheme | VM axis | CD axis |" in out
    for scheme in SCHEMES:
        assert f"`{scheme}`" in out


def test_run_accepts_composed_scheme_name(capsys):
    rc = main(["run", "ssca2", "redirect+lazy+stall+serial",
               "--scale", "tiny", "--cores", "4", "--check"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "axes: vm=redirect cd=lazy resolution=stall arbitration=serial" in out
    assert "oracle: PASSED" in out


def test_run_composes_scheme_from_axis_flags(capsys):
    rc = main(["run", "ssca2", "--vm", "undo", "--resolution", "timestamp",
               "--scale", "tiny", "--cores", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "under undo+eager+timestamp+serial" in out


def test_run_rejects_unknown_and_illegal_schemes(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "ssca2", "sub"])
    assert "did you mean" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "ssca2", "undo+lazy+stall+serial"])
    assert "coherence" in capsys.readouterr().err


def test_matrix_sweeps_policy_axes(capsys, tmp_path):
    rc = main(["matrix", "--workloads", "ssca2",
               "--vms", "redirect", "buffer", "--cds", "lazy",
               "--scale", "tiny", "--cores", "4", "--jobs", "1",
               "--cache-dir", str(tmp_path / "cache"), "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "redirect+lazy+stall+serial" in out
    assert "buffer+lazy+stall+serial" in out
