"""SUV address translation across cores and its costs."""

from repro.config import RedirectConfig, SimConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.simulator import Simulator


def sim_with(scheme="suv", seed=5, **redirect_kw):
    cfg = SimConfig(n_cores=4, redirect=RedirectConfig(**redirect_kw))
    return Simulator(cfg, scheme=scheme, seed=seed)


def test_committed_redirection_read_by_other_core():
    """Core 1 reads a line that core 0's transaction redirected: the
    value flows through the redirect table and is correct."""
    sim = sim_with()
    seen = []

    def writer():
        def body():
            yield Write(0x7000, 123)
        yield Tx(body)

    def reader():
        yield Work(4000)  # after the writer committed
        v = yield Read(0x7000)
        seen.append(v)

    sim.run([writer, reader])
    assert seen == [123]
    # the reader's access consulted the table (summary passed)
    assert sim.scheme.summary.passed >= 1


def test_translation_promotes_entry_into_reader_l1_table():
    sim = sim_with()

    def writer():
        def body():
            yield Write(0x7000, 1)
        yield Tx(body)

    def reader():
        yield Work(4000)
        for _ in range(3):
            yield Read(0x7000)
            yield Work(10)

    sim.run([writer, reader])
    line = 0x7000 >> 6
    # after the first (L2-table) lookup, the entry is cached locally
    assert line in sim.scheme.table.l1_tables[1]


def test_tx_reads_of_committed_redirections_translate_too():
    sim = sim_with()
    seen = []

    def writer():
        def body():
            yield Write(0x7000, 9)
        yield Tx(body)

    def tx_reader():
        yield Work(4000)

        def body():
            v = yield Read(0x7000)
            seen.append(v)
            yield Write(0x7040, v + 1)
        yield Tx(body)

    res = sim.run([writer, tx_reader])
    assert seen == [9]
    assert res.memory[0x7040] == 10


def test_misspeculation_counted_when_entry_swapped_to_memory():
    # force table overflow so lookups find swapped-out entries in memory
    sim = sim_with(l1_entries=2, l2_entries=2, l2_ways=1)

    def writer():
        def body():
            for i in range(8):
                yield Write(0x8000 + i * 64, i)
        yield Tx(body)

    def reader():
        yield Work(8000)
        for i in range(8):
            yield Read(0x8000 + i * 64)
            yield Work(5)

    res = sim.run([writer, reader])
    stats = res.scheme_stats
    assert stats["table_mem_hits"] >= 1
    assert stats["misspeculations"] >= 1


def test_disabled_summary_still_translates_correctly():
    sim = sim_with(use_summary_signature=False)
    seen = []

    def writer():
        def body():
            yield Write(0x7000, 55)
        yield Tx(body)

    def reader():
        yield Work(4000)
        v = yield Read(0x7000)
        seen.append(v)

    sim.run([writer, reader])
    assert seen == [55]
    assert sim.scheme.summary.filtered == 0
