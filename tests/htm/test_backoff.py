"""Unit tests for the randomized exponential backoff policy."""

import numpy as np

from repro.config import HTMConfig
from repro.htm.backoff import BackoffPolicy


def make(seed=1, **kw):
    return BackoffPolicy(HTMConfig(**kw), np.random.default_rng(seed))


def test_no_aborts_no_backoff():
    assert make().delay(0) == 0


def test_delay_within_window():
    policy = make(backoff_base=32, backoff_cap=4096)
    for n in range(1, 10):
        for _ in range(20):
            d = policy.delay(n)
            window = min(32 << (n - 1), 4096)
            assert max(1, window // 2) <= d <= window


def test_windows_grow_then_cap():
    policy = make(backoff_base=32, backoff_cap=256)
    small = max(policy.delay(1) for _ in range(50))
    capped = max(policy.delay(10) for _ in range(50))
    assert small <= 32
    assert capped <= 256


def test_deterministic_for_seed():
    a = [make(seed=7).delay(3) for _ in range(1)]
    b = [make(seed=7).delay(3) for _ in range(1)]
    assert a == b


def test_jitter_varies():
    policy = make(seed=5, backoff_cap=1 << 20)
    draws = {policy.delay(6) for _ in range(30)}
    assert len(draws) > 1
