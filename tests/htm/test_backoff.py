"""Unit tests for the randomized exponential backoff policy."""

import numpy as np

from repro.config import HTMConfig
from repro.htm.backoff import BackoffPolicy


def make(seed=1, **kw):
    return BackoffPolicy(HTMConfig(**kw), np.random.default_rng(seed))


def test_no_aborts_no_backoff():
    assert make().delay(0) == 0


def test_delay_within_window():
    policy = make(backoff_base=32, backoff_cap=4096)
    for n in range(1, 10):
        for _ in range(20):
            d = policy.delay(n)
            window = min(32 << (n - 1), 4096)
            assert max(1, window // 2) <= d <= window


def test_windows_grow_then_cap():
    policy = make(backoff_base=32, backoff_cap=256)
    small = max(policy.delay(1) for _ in range(50))
    capped = max(policy.delay(10) for _ in range(50))
    assert small <= 32
    assert capped <= 256


def test_deterministic_for_seed():
    a = [make(seed=7).delay(3) for _ in range(1)]
    b = [make(seed=7).delay(3) for _ in range(1)]
    assert a == b


def test_jitter_varies():
    policy = make(seed=5, backoff_cap=1 << 20)
    draws = {policy.delay(6) for _ in range(30)}
    assert len(draws) > 1


# ----------------------------------------------------------------------
# property-style tests (hypothesis)
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    base=st.sampled_from([1, 2, 8, 32, 100]),
    cap=st.sampled_from([16, 256, 4096, 1 << 16]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_delay_always_in_window(n, base, cap, seed):
    policy = make(seed=seed, backoff_base=base, backoff_cap=cap)
    d = policy.delay(n)
    shift = min(n - 1, 62)  # base << huge n would overflow the window calc
    window = min(base << shift if base << shift > 0 else cap, cap)
    assert max(1, window // 2) <= d <= window


@settings(max_examples=100, deadline=None)
@given(n=st.integers(min_value=1, max_value=10**6))
def test_cap_respected_for_huge_abort_counts(n):
    policy = make(backoff_base=32, backoff_cap=4096)
    assert 1 <= policy.delay(n) <= 4096


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    ns=st.lists(st.integers(min_value=0, max_value=20),
                min_size=1, max_size=20),
)
def test_deterministic_sequence_per_seed(seed, ns):
    a = make(seed=seed)
    b = make(seed=seed)
    assert [a.delay(n) for n in ns] == [b.delay(n) for n in ns]


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=0, max_value=100))
def test_zero_aborts_means_zero_delay_only(n):
    d = make(seed=3).delay(n)
    assert (d == 0) == (n == 0)
