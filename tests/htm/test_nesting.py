"""Closed-nesting semantics: merge-on-commit, abort-and-retry."""

import pytest

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.simulator import Simulator

SCHEMES = ["logtm-se", "fastm", "suv"]


def run(threads, scheme="suv", policy="stall", seed=5):
    cfg = SimConfig(n_cores=4, htm=HTMConfig(resolution=policy))
    sim = Simulator(cfg, scheme=scheme, seed=seed)
    return sim.run(threads), sim


@pytest.mark.parametrize("scheme", SCHEMES)
def test_three_level_nesting_commits(scheme):
    def thread():
        def level2():
            yield Write(0x300, 3)
            return 33

        def level1():
            yield Write(0x200, 2)
            v = yield Tx(level2)
            yield Write(0x208, v)
            return 22

        def level0():
            yield Write(0x100, 1)
            v = yield Tx(level1)
            yield Write(0x108, v)

        yield Tx(level0)

    res, _ = run([thread], scheme=scheme)
    assert res.commits == 1
    assert res.memory[0x100] == 1
    assert res.memory[0x200] == 2
    assert res.memory[0x300] == 3
    assert res.memory[0x208] == 33
    assert res.memory[0x108] == 22


@pytest.mark.parametrize("scheme", SCHEMES)
def test_inner_writes_visible_to_outer_after_nested_commit(scheme):
    seen = []

    def thread():
        def inner():
            yield Write(0x400, 7)

        def outer():
            yield Tx(inner)
            v = yield Read(0x400)
            seen.append(v)

        yield Tx(outer)

    run([thread], scheme=scheme)
    assert seen == [7]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_outer_abort_discards_committed_inner(scheme):
    """A nested commit is only tentative: if the parent aborts, the
    child's writes vanish too (closed nesting)."""
    a = 0x9000

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(9000)
        yield Tx(body)

    attempts = []

    def victim():
        def inner():
            yield Write(0x500, 99)

        def outer():
            attempts.append(1)
            yield Tx(inner)
            yield Write(a, 2)   # conflicts with the holder → abort
        yield Work(100)
        yield Tx(outer)

    res, _ = run([holder, victim], scheme=scheme, policy="abort_requester")
    assert len(attempts) >= 2          # the outer was retried
    assert res.memory[0x500] == 99     # and finally committed
    assert res.commits == 2


def test_nested_signatures_merge_into_parent():
    seen_conflict = []

    def writer():
        def inner():
            yield Write(0x600, 5)

        def outer():
            yield Tx(inner)         # inner commits, sigs merge to outer
            yield Work(6000)        # outer stays open, holding 0x600
        yield Tx(outer)

    def prober():
        def body():
            v = yield Read(0x600)   # must stall: 0x600 is still isolated
            seen_conflict.append(v)
        yield Work(400)
        yield Tx(body)

    res, _ = run([writer, prober])
    assert seen_conflict == [5]
    assert res.per_core[1].get("Stalled", 0) > 0


def test_suv_nested_entries_follow_parent_outcome():
    _, sim = run([lambda: iter(())], scheme="suv")  # build a sim for scheme

    def thread():
        def inner():
            yield Write(0x700, 1)

        def outer():
            yield Tx(inner)
            yield Write(0x740, 2)
        yield Tx(outer)

    cfg = SimConfig(n_cores=4)
    sim = Simulator(cfg, scheme="suv", seed=1)
    res = sim.run([thread])
    assert res.memory[0x700] == 1
    # both entries committed to globally-valid state
    from repro.core.redirect_entry import EntryState
    for line in (0x700 >> 6, 0x740 >> 6):
        entry = sim.scheme.table.peek(line)
        assert entry is not None and entry.state is EntryState.VALID
