"""The four-axis policy decomposition: legality, parsing, registry, shims."""

import dataclasses

import pytest

from repro.config import HTMConfig, SimConfig
from repro.errors import IncompatiblePolicyError, UnknownSchemeError
from repro.htm.policy import (
    ARBITRATION_AXIS,
    CANONICAL_AXES,
    CD_AXIS,
    RESOLUTION_AXIS,
    VM_AXIS,
    SchemeComposition,
    compose_scheme,
    iter_scheme_space,
    legal_combinations,
    parse_width,
)
from repro.htm.vm.base import (
    available_schemes,
    get_scheme,
    make_version_manager,
    resolve_scheme_name,
)
from repro.mem.hierarchy import MemoryHierarchy

ALL_COMBOS = list(iter_scheme_space())


def _hierarchy(config: SimConfig) -> MemoryHierarchy:
    return MemoryHierarchy(config)


# -- legality matrix ------------------------------------------------------

def test_space_is_the_full_cross_product():
    assert len(ALL_COMBOS) == (
        len(VM_AXIS) * len(CD_AXIS) * len(RESOLUTION_AXIS)
        * len(ARBITRATION_AXIS)
    )
    assert len(set(ALL_COMBOS)) == len(ALL_COMBOS)


@pytest.mark.parametrize(
    "comp", ALL_COMBOS, ids=[c.name for c in ALL_COMBOS]
)
def test_every_combination_instantiates_or_raises_typed(comp):
    """Legal combos build a working VM; illegal ones explain themselves."""
    config = SimConfig(n_cores=4)
    if comp.is_legal:
        vm = make_version_manager(comp.name, config, _hierarchy(config))
        assert vm.vm_axis == comp.vm
        assert vm.cd_axis == comp.cd
    else:
        with pytest.raises(IncompatiblePolicyError) as err:
            make_version_manager(comp.name, config, _hierarchy(config))
        assert err.value.reason, "illegal combos must carry a physical reason"
        assert err.value.axes == comp.as_dict()


def test_legal_combinations_counts_by_cd_axis():
    legal = legal_combinations()
    by_cd = {cd: [c for c in legal if c.cd == cd] for cd in CD_AXIS}
    # eager: all five VMs (mvsuv included), but arbitrated (lazy-commit)
    # paths never run
    assert len(by_cd["eager"]) == 5 * len(RESOLUTION_AXIS)
    assert all(c.arbitration == "serial" for c in by_cd["eager"])
    # lazy: only invisible-until-commit VMs qualify
    assert {c.vm for c in by_cd["lazy"]} == {"buffer", "redirect"}
    # adaptive: needs an overflow-tolerant eager fallback
    assert {c.vm for c in by_cd["adaptive"]} == {"undo", "flash", "redirect"}
    # mvsuv needs eager detection: snapshots are stamped against the
    # publication sequence, which lazy/adaptive commit-time batching skews
    assert {c.cd for c in legal if c.vm == "mvsuv"} == {"eager"}


# -- composition value ----------------------------------------------------

def test_compose_scheme_normalizes_and_validates():
    assert compose_scheme() == "redirect+eager+stall+serial"
    assert (compose_scheme(vm="Redirect", cd="LAZY")
            == "redirect+lazy+stall+serial")
    assert (compose_scheme(resolution="abort-requester")
            == "redirect+eager+abort_requester+serial")
    with pytest.raises(IncompatiblePolicyError):
        compose_scheme(vm="undo", cd="lazy")


def test_parse_rejects_non_composition_shapes():
    assert SchemeComposition.parse("dyntm+suv") is None
    assert SchemeComposition.parse("suv") is None
    assert SchemeComposition.parse("a+b+c+d+e") is None
    comp = SchemeComposition.parse("undo+eager+stall+serial")
    assert comp is not None and comp.vm == "undo"


def test_from_value_accepts_mapping_and_rejects_unknown_axis():
    comp = SchemeComposition.from_value({"vm": "redirect", "cd": "lazy"})
    assert comp.name == "redirect+lazy+stall+serial"
    with pytest.raises(IncompatiblePolicyError):
        SchemeComposition.from_value({"vm": "redirect", "nope": "x"})


def test_parse_width():
    assert parse_width("serial") == 1
    assert parse_width("width2") == 2
    assert parse_width("width16") == 16
    for bad in ("width1", "width", "widthx", "token"):
        with pytest.raises(IncompatiblePolicyError):
            parse_width(bad)


def test_canonical_axes_cover_every_registered_scheme():
    assert set(CANONICAL_AXES) == set(available_schemes())
    for name, (vm, cd) in CANONICAL_AXES.items():
        config = SimConfig(n_cores=4)
        scheme = make_version_manager(name, config, _hierarchy(config))
        assert (scheme.vm_axis, scheme.cd_axis) == (vm, cd)


# -- registry lookups -----------------------------------------------------

def test_resolve_scheme_name_prefers_registered_aliases():
    # two-token names stay canonical aliases, not compositions
    assert resolve_scheme_name("dyntm+suv") == "dyntm+suv"
    assert resolve_scheme_name("DYNTM_SUV") == "dyntm+suv"
    # four-token names canonicalize through the composition parser
    assert (resolve_scheme_name("Redirect+Lazy+Stall+Serial")
            == "redirect+lazy+stall+serial")


def test_unknown_scheme_error_is_typed_with_suggestions():
    with pytest.raises(UnknownSchemeError) as err:
        resolve_scheme_name("sub")
    assert isinstance(err.value, ValueError)
    assert err.value.name == "sub"
    assert "suv" in err.value.suggestions
    assert "did you mean" in str(err.value)
    assert "logtm-se" in str(err.value)  # lists the registry


def test_get_scheme_builds_composed_factories():
    config = SimConfig(n_cores=4)
    factory = get_scheme("redirect+lazy+stall+serial")
    vm = factory(config, _hierarchy(config))
    assert vm.name == "redirect+lazy+stall+serial"
    with pytest.raises(IncompatiblePolicyError):
        get_scheme("undo+lazy+stall+serial")


def test_vm_package_exports_policy_api():
    import repro.htm.vm as vm

    for name in ("compose_scheme", "get_scheme", "ComposedVM",
                 "ConflictDetection", "ConflictResolution",
                 "CommitArbitration", "SchemeComposition"):
        assert name in vm.__all__
        assert hasattr(vm, name)


# -- the HTMConfig deprecation shim --------------------------------------

def test_htmconfig_policy_is_deprecated_but_maps():
    with pytest.warns(DeprecationWarning, match="resolution"):
        cfg = HTMConfig(policy="abort")
    assert cfg.resolution == "abort_requester"
    assert cfg.policy == ""
    with pytest.warns(DeprecationWarning):
        cfg = HTMConfig(policy="stall")
    assert cfg.resolution == "stall"


def test_htmconfig_replace_does_not_rewarn():
    with pytest.warns(DeprecationWarning):
        cfg = HTMConfig(policy="abort_responder")
    # -W error in the suite turns any stray warning into a failure here
    again = dataclasses.replace(cfg, checkpoint_cycles=8)
    assert again.resolution == "abort_responder"


def test_htmconfig_rejects_conflicts_and_unknowns():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="conflicting"):
            HTMConfig(policy="abort", resolution="stall")
    with pytest.raises(ValueError, match="resolution"):
        HTMConfig(resolution="nope")
    with pytest.raises(ValueError, match="arbitration"):
        HTMConfig(arbitration="width1")


def test_htmconfig_defaults_resolution_to_stall():
    assert HTMConfig().resolution == "stall"
    assert HTMConfig().arbitration == "serial"
    assert HTMConfig(arbitration="width4").arbitration == "width4"
