"""Time-accounting invariants: every simulated cycle of every core lands
in exactly one breakdown component."""

import pytest

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import Barrier, Read, Tx, Work, Write
from repro.simulator import Simulator
from repro.workloads import make_workload


def contended_threads(n=4, rounds=6):
    def make(tid):
        def thread():
            def body():
                v = yield Read(0x4000)
                yield Work(80)
                yield Write(0x4000, v + 1)
            for _ in range(rounds):
                yield Tx(body, site=1)
                yield Work(5)
            yield Barrier(0)
        return thread
    return [make(t) for t in range(n)]


@pytest.mark.parametrize("scheme", ["logtm-se", "fastm", "suv", "dyntm"])
def test_per_core_components_sum_to_finish_time(scheme):
    sim = Simulator(SimConfig(n_cores=4), scheme=scheme, seed=11)
    res = sim.run(contended_threads())
    for core in sim.cores[:4]:
        assert sum(core.comp.values()) == core.finish_time, (
            f"core {core.idx}: {core.comp} vs finish {core.finish_time}"
        )


def test_accounting_holds_with_stagger():
    cfg = SimConfig(n_cores=4, htm=HTMConfig(start_stagger=512))
    sim = Simulator(cfg, scheme="suv", seed=11)
    sim.run(contended_threads())
    for core in sim.cores[:4]:
        assert sum(core.comp.values()) == core.finish_time


def test_accounting_holds_on_real_workload():
    sim = Simulator(SimConfig(n_cores=8), scheme="logtm-se", seed=2)
    program = make_workload("intruder", n_threads=8, seed=2, scale="tiny")
    sim.run(program.threads)
    for core in sim.cores[:8]:
        assert sum(core.comp.values()) == core.finish_time


@pytest.mark.parametrize("scheme", ["logtm-se", "suv"])
def test_wasted_plus_trans_reflect_attempts(scheme):
    sim = Simulator(SimConfig(n_cores=4,
                              htm=HTMConfig(resolution="abort_requester")),
                    scheme=scheme, seed=11)
    res = sim.run(contended_threads())
    bd = res.breakdown.cycles
    if res.aborts:
        assert bd["Wasted"] > 0
    assert bd["Trans"] > 0
    # commits all happened
    assert res.memory[0x4000] == 4 * 6


def test_total_cycles_is_max_core_finish():
    sim = Simulator(SimConfig(n_cores=4), scheme="suv", seed=11)
    res = sim.run(contended_threads())
    assert res.total_cycles == max(c.finish_time for c in sim.cores[:4])
