"""Quantitative isolation-window tests: the paper's central mechanism.

A neighbour that conflicts with a transaction in its end-of-transaction
processing must wait for the *whole* processing window.  These tests
measure that window directly per scheme and check the paper's ordering:
LogTM-SE's abort window grows with the write set; SUV's does not.
"""

import pytest

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.simulator import Simulator

SHARED = 0x9000


def big_abort_run(scheme: str, n_lines: int, seed=3):
    """A transaction with an n-line write set loses to an older holder
    and must roll back; returns its Aborting time."""
    cfg = SimConfig(n_cores=4, htm=HTMConfig(resolution="abort_requester"))
    sim = Simulator(cfg, scheme=scheme, seed=seed)

    def holder():
        def body():
            yield Write(SHARED, 1)
            yield Work(100_000)
        yield Tx(body)

    def victim():
        def body():
            for i in range(n_lines):
                yield Write(0x20000 + i * 64, i)
            yield Write(SHARED, 2)
        yield Work(200)
        yield Tx(body)

    res = sim.run([holder, victim], max_events=20_000_000)
    assert res.aborts >= 1
    return res.breakdown.cycles["Aborting"] / max(res.aborts, 1)


def test_logtm_abort_window_scales_with_write_set():
    trap = HTMConfig().abort_trap_cycles
    small = big_abort_run("logtm-se", 8) - trap
    large = big_abort_run("logtm-se", 64) - trap
    # the software walk restores per logged line: ~8x the records
    assert large > 4 * small


def test_suv_abort_window_is_flat():
    small = big_abort_run("suv", 8)
    large = big_abort_run("suv", 64)
    # flipping 64 L1-table-resident entries costs (almost) the same as 8
    assert large <= 2 * small + 16


def test_fastm_abort_window_is_flat_without_overflow():
    small = big_abort_run("fastm", 8)
    large = big_abort_run("fastm", 64)
    assert large <= 2 * small + 16


def test_scheme_ordering_of_abort_windows():
    sizes = {s: big_abort_run(s, 48) for s in ("logtm-se", "fastm", "suv")}
    assert sizes["suv"] <= sizes["fastm"] <= sizes["logtm-se"]


@pytest.mark.parametrize("scheme,expect_flat",
                         [("logtm-se", False), ("suv", True)])
def test_neighbour_stall_tracks_abort_window(scheme, expect_flat):
    """A third thread touching the victim's data during rollback stalls
    for (roughly) the length of the repair window."""
    cfg = SimConfig(n_cores=4, htm=HTMConfig(resolution="abort_requester"))
    sim = Simulator(cfg, scheme=scheme, seed=4)
    lines = [0x20000 + i * 64 for i in range(64)]

    def holder():
        def body():
            yield Write(SHARED, 1)
            yield Work(60_000)
        yield Tx(body)

    def victim():
        def body():
            for addr in lines:
                yield Write(addr, 7)
            yield Write(SHARED, 2)
        yield Work(200)
        yield Tx(body)

    def prober():
        # repeatedly touch one of the victim's lines, non-transactionally
        for _ in range(60):
            yield Read(lines[0])
            yield Work(400)

    res = sim.run([holder, victim, prober], max_events=20_000_000)
    stalled = res.per_core[2].get("Stalled", 0)
    if expect_flat:
        assert stalled < 6000, f"SUV prober stalled {stalled} cycles"
    # in both cases the run completed and the final data is committed
    assert res.memory[lines[0]] == 7
