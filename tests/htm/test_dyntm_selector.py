"""Unit tests for DynTM's history-based mode selector."""

from repro.config import DynTMConfig, SimConfig
from repro.htm.transaction import TxFrame
from repro.htm.vm.dyntm import DynTM
from repro.mem.hierarchy import MemoryHierarchy


def make_dyntm(eager="fastm", **dyntm_kw):
    cfg = SimConfig(n_cores=4, dyntm=DynTMConfig(**dyntm_kw))
    return DynTM(cfg, MemoryHierarchy(cfg), eager_vm=eager)


def frame_for(site, mode):
    f = TxFrame.create(site, lambda: iter(()), 0, 0, 0,
                       SimConfig().signature, mode=mode)
    return f


def test_starts_eager():
    vm = make_dyntm()
    assert vm.mode_for(0, site=1) == "eager"


def test_eager_aborts_drift_to_lazy():
    vm = make_dyntm()
    f = frame_for(1, "eager")
    vm.note_outcome(0, f, committed=False)
    assert vm.mode_for(0, 1) == "eager"   # counter 1 < threshold 2
    vm.note_outcome(0, f, committed=False)
    assert vm.mode_for(0, 1) == "lazy"


def test_counter_saturates():
    vm = make_dyntm(counter_bits=2)
    f = frame_for(1, "eager")
    for _ in range(10):
        vm.note_outcome(0, f, committed=False)
    assert vm._counters[1] == 3


def test_lazy_overflow_forces_eager():
    vm = make_dyntm()
    vm._counters[1] = 3
    f = frame_for(1, "lazy")
    f.vm["must_abort"] = "overflow"
    vm.note_outcome(0, f, committed=False)
    assert vm._counters[1] == 0
    assert vm.mode_for(0, 1) == "eager"


def test_heavy_lazy_commit_drifts_back():
    vm = make_dyntm()
    vm._counters[1] = 3
    f = frame_for(1, "lazy")
    f.vm["spec_lines"] = set(range(100))
    vm.note_outcome(0, f, committed=True)
    assert vm._counters[1] == 2          # still lazy, but drifting


def test_sites_are_independent():
    vm = make_dyntm()
    f1 = frame_for(1, "eager")
    vm.note_outcome(0, f1, committed=False)
    vm.note_outcome(0, f1, committed=False)
    assert vm.mode_for(0, 1) == "lazy"
    assert vm.mode_for(0, 2) == "eager"


def test_eager_commit_keeps_mode():
    vm = make_dyntm()
    f = frame_for(1, "eager")
    vm.note_outcome(0, f, committed=True)
    assert vm.mode_for(0, 1) == "eager"


def test_suv_variant_shares_version_clock():
    vm = make_dyntm(eager="suv")
    assert vm.line_versions is vm.lazy.line_versions
    assert vm.lazy.publish_by_redirect
    assert not make_dyntm(eager="fastm").lazy.publish_by_redirect
