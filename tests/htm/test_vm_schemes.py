"""Unit tests for the version-management schemes' cost behaviours."""

import pytest

from repro.config import HTMConfig, RedirectConfig, SimConfig
from repro.core.redirect_entry import EntryState
from repro.htm.ops import Read, Tx, Work, Write
from repro.htm.vm.base import make_version_manager
from repro.htm.vm.dyntm import DynTM
from repro.htm.vm.suv import SUV
from repro.mem.hierarchy import MemoryHierarchy
from repro.simulator import Simulator


def cfg(**kw):
    return SimConfig(n_cores=4, **kw)


def run(threads, scheme, config=None, seed=11):
    return Simulator(config or cfg(), scheme=scheme, seed=seed).run(threads)


def writer_thread(base, n_lines, value=7, rounds=1):
    def thread():
        def body():
            for i in range(n_lines):
                yield Write(base + i * 64, value)
        for _ in range(rounds):
            yield Tx(body)
    return thread


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------

def test_factory_known_schemes():
    c = cfg()
    h = MemoryHierarchy(c)
    for name in ["logtm-se", "fastm", "suv", "lazy", "dyntm", "dyntm+suv"]:
        vm = make_version_manager(name, c, h)
        assert vm is not None


def test_factory_rejects_unknown():
    c = cfg()
    with pytest.raises(ValueError):
        make_version_manager("nope", c, MemoryHierarchy(c))


def test_dyntm_names_reflect_eager_vm():
    c = cfg()
    h = MemoryHierarchy(c)
    assert make_version_manager("dyntm", c, h).name == "dyntm+fastm"
    assert make_version_manager("dyntm+suv", c, h).name == "dyntm+suv"


# ---------------------------------------------------------------------------
# LogTM-SE
# ---------------------------------------------------------------------------

def test_logtm_logs_once_per_line():
    sim = Simulator(cfg(), scheme="logtm-se")

    def thread():
        def body():
            yield Write(0x1000, 1)
            yield Write(0x1008, 2)   # same 64B line: no second log record
            yield Write(0x2000, 3)
        yield Tx(body)

    sim.run([thread])
    assert sim.scheme.stats.log_writes == 2
    assert sim.scheme.stats.first_writes == 2
    assert sim.scheme.stats.tx_writes == 3


def test_logtm_abort_restores_per_line():
    sim = Simulator(cfg(htm=HTMConfig(resolution="abort_requester")),
                    scheme="logtm-se")
    a = 0x9000

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(9000)
        yield Tx(body)

    def victim():
        def body():
            for i in range(10):
                yield Write(0x20000 + i * 64, 5)
            yield Write(a, 2)  # conflicts → aborts self
        yield Work(100)
        yield Tx(body)

    res = sim.run([holder, victim])
    assert sim.scheme.stats.log_restores >= 10
    assert res.breakdown.cycles["Aborting"] >= sim.config.htm.abort_trap_cycles


# ---------------------------------------------------------------------------
# FasTM
# ---------------------------------------------------------------------------

def test_fastm_flushes_dirty_line_before_first_tx_store():
    sim = Simulator(cfg(), scheme="fastm")

    def thread():
        yield Write(0x1000, 9)   # non-tx store leaves the line dirty in L1

        def body():
            yield Write(0x1000, 10)
        yield Tx(body)

    sim.run([thread])
    assert sim.scheme.stats.extra["writeback_flushes"] == 1


def test_fastm_overflow_degenerates_to_logging():
    # L1 = 32KB 4-way = 128 sets; write 5 lines into the same set
    sim = Simulator(cfg(), scheme="fastm")
    sets = sim.config.l1.n_sets
    base = 0x40000

    def thread():
        def body():
            for i in range(6):
                yield Write(base + i * sets * 64, i)
        yield Tx(body)

    sim.run([thread])
    assert sim.scheme.stats.cache_overflows >= 1
    assert sim.scheme.stats.log_writes >= 1
    assert sim.scheme.stats.overflowed_txs == 1


def test_fastm_fast_abort_without_overflow_is_constant():
    sim = Simulator(cfg(htm=HTMConfig(resolution="abort_requester")),
                    scheme="fastm")
    a = 0x9000

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(9000)
        yield Tx(body)

    def victim():
        def body():
            for i in range(10):
                yield Write(0x20000 + i * 64, 5)
            yield Write(a, 2)
        yield Work(100)
        yield Tx(body)

    res = sim.run([holder, victim])
    assert res.aborts >= 1
    assert sim.scheme.stats.log_restores == 0  # no software walk needed
    # every abort was the constant-time flash invalidate
    assert res.breakdown.cycles["Aborting"] == res.aborts * sim.scheme.FAST_ABORT_CYCLES


# ---------------------------------------------------------------------------
# SUV
# ---------------------------------------------------------------------------

def test_suv_redirects_every_first_write():
    sim = Simulator(cfg(), scheme="suv")
    res = sim.run([writer_thread(0x10000, 8)])
    assert sim.scheme.stats.extra["redirects"] == 8
    assert res.commits == 1
    # committed entries are globally valid in the table
    entry = sim.scheme.table.peek(0x10000 >> 6)
    assert entry is not None and entry.state is EntryState.VALID


def test_suv_redirect_back_reclaims_entry_and_pool_line():
    sim = Simulator(cfg(), scheme="suv")
    line_addr = 0x10000

    def thread():
        def body():
            yield Write(line_addr, 1)
        yield Tx(body)       # redirects line → pool
        yield Tx(body)       # writes again: redirect-back to the original

    sim.run([thread])
    assert sim.scheme.stats.extra["redirect_backs"] == 1
    # the entry was reclaimed entirely
    assert sim.scheme.table.peek(line_addr >> 6) is None
    assert sim.scheme.pool.live_lines == 0


def test_suv_redirect_back_disabled_keeps_entry():
    c = cfg(redirect=RedirectConfig(redirect_back=False))
    sim = Simulator(c, scheme="suv")
    line_addr = 0x10000

    def thread():
        def body():
            yield Write(line_addr, 1)
        yield Tx(body)
        yield Tx(body)

    sim.run([thread])
    assert sim.scheme.stats.extra["redirect_backs"] == 0
    assert sim.scheme.table.peek(line_addr >> 6) is not None
    # the first pool line was freed, the second is live
    assert sim.scheme.pool.live_lines == 1


def test_suv_abort_frees_pool_and_removes_entries():
    sim = Simulator(cfg(htm=HTMConfig(resolution="abort_requester")), scheme="suv")
    a = 0x9000

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(9000)
        yield Tx(body)

    def victim():
        def body():
            for i in range(10):
                yield Write(0x20000 + i * 64, 5)
            yield Write(a, 2)
        yield Work(100)
        yield Tx(body)

    sim.run([holder, victim])
    # after the victim's abort+retry+commit, exactly its final entries live
    assert sim.scheme.stats.log_restores == 0
    assert sim.scheme.pool.frees >= 10


def test_suv_nontx_access_translates_through_table():
    sim = Simulator(cfg(), scheme="suv")
    seen = []

    def thread():
        def body():
            yield Write(0x10000, 42)
        yield Tx(body)
        v = yield Read(0x10000)   # non-transactional, strong isolation
        seen.append(v)

    sim.run([thread])
    assert seen == [42]
    assert sim.scheme.summary.passed >= 1


def test_suv_summary_filters_unredirected_accesses():
    sim = Simulator(cfg(), scheme="suv")

    def thread():
        v = yield Read(0x77000)
        yield Write(0x78000, v + 1)

    sim.run([thread])
    assert sim.scheme.summary.filtered >= 2
    assert sim.scheme.summary.passed == 0


def test_suv_l1_table_overflow_counted():
    c = cfg(redirect=RedirectConfig(l1_entries=4, l2_entries=64, l2_ways=2))
    sim = Simulator(c, scheme="suv")
    sim.run([writer_thread(0x10000, 16)])
    assert sim.scheme.table.l1_overflows > 0


def test_suv_commit_remote_entries_cost_more():
    # entries demoted to L2/memory make commit longer than L1-resident ones
    c_small = cfg(redirect=RedirectConfig(l1_entries=4))
    c_big = cfg(redirect=RedirectConfig(l1_entries=512))
    r_small = run([writer_thread(0x10000, 64)], "suv", c_small)
    r_big = run([writer_thread(0x10000, 64)], "suv", c_big)
    assert (
        r_small.breakdown.cycles["Committing"]
        > r_big.breakdown.cycles["Committing"]
    )


# ---------------------------------------------------------------------------
# DynTM
# ---------------------------------------------------------------------------

def test_dyntm_starts_eager():
    sim = Simulator(cfg(), scheme="dyntm")
    sim.run([writer_thread(0x10000, 4)])
    assert sim.scheme.stats.extra["eager_attempts"] >= 1
    assert sim.scheme.stats.extra["lazy_attempts"] == 0


def test_dyntm_switches_to_lazy_after_eager_aborts():
    c = cfg()
    sim = Simulator(c, scheme="dyntm", seed=5)
    a = 0x9000

    def contender(delay):
        def thread():
            def body():
                v = yield Read(a)
                yield Work(300)
                yield Write(a, v + 1)
            yield Work(delay)
            for _ in range(8):
                yield Tx(body, site=77)
        return thread

    res = sim.run([contender(0), contender(5), contender(10)])
    assert res.memory[a] == 24
    if res.aborts >= 2:
        assert sim.scheme.stats.extra["lazy_attempts"] > 0


def test_dyntm_suv_lazy_commit_cheaper_than_fastm_lazy_commit():
    # force lazy mode by pre-seeding the selector counters
    def prog():
        return [writer_thread(0x10000, 32, rounds=2)]

    results = {}
    for scheme in ("dyntm", "dyntm+suv"):
        sim = Simulator(cfg(), scheme=scheme, seed=3)
        sim.scheme._counters[0] = 3  # site 0 → lazy
        res = sim.run(prog())
        results[scheme] = res.breakdown.cycles["Committing"]
        assert sim.scheme.stats.extra["lazy_attempts"] >= 1
    assert results["dyntm+suv"] < results["dyntm"]


def test_lazy_overflow_forces_eager_retry():
    sim = Simulator(cfg(), scheme="dyntm", seed=3)
    sets = sim.config.l1.n_sets
    base = 0x40000
    sim.scheme._counters[0] = 3  # start lazy

    def thread():
        def body():
            for i in range(6):
                yield Write(base + i * sets * 64, i)
        yield Tx(body)

    res = sim.run([thread])
    assert res.commits == 1
    assert sim.scheme.lazy.stats.extra["lazy_overflows"] >= 1
    assert sim.scheme._counters[0] == 0  # selector reset to eager
