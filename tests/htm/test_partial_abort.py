"""Partial abort of nested transactions (LogTM-Nested semantics)."""

import pytest

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.simulator import Simulator


def run(threads, scheme="suv", seed=5):
    cfg = SimConfig(n_cores=4, htm=HTMConfig(resolution="abort_requester"))
    sim = Simulator(cfg, scheme=scheme, seed=seed)
    return sim.run(threads), sim


@pytest.mark.parametrize("scheme", ["logtm-se", "fastm", "suv"])
def test_inner_conflict_partially_aborts(scheme):
    """Only the inner level re-executes when the inner body conflicts;
    the outer level's work is preserved."""
    a = 0x9000
    outer_runs, inner_runs = [], []

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(9000)
        yield Tx(body)

    def nested():
        def inner():
            inner_runs.append(1)
            yield Write(a, 2)   # conflicts until the holder commits

        def outer():
            outer_runs.append(1)
            yield Write(0x5000, 42)
            yield Tx(inner)
            yield Write(0x5040, 43)

        yield Work(100)
        yield Tx(outer)

    res, _ = run([holder, nested], scheme=scheme)
    assert res.commits == 2
    assert len(inner_runs) >= 2, "inner never retried"
    assert len(outer_runs) == 1, "outer was re-executed despite partial abort"
    assert res.memory[0x5000] == 42
    assert res.memory[0x5040] == 43
    assert res.memory[a] == 2


def test_partial_abort_preserves_outer_write_buffer():
    a = 0x9000
    seen = []

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(9000)
        yield Tx(body)

    def nested():
        def inner():
            yield Write(a, 5)

        def outer():
            yield Write(0x6000, 7)
            yield Tx(inner)
            v = yield Read(0x6000)   # outer's own write must survive
            seen.append(v)

        yield Work(100)
        yield Tx(outer)

    run([holder, nested])
    assert all(v == 7 for v in seen)


def test_top_level_abort_requester_still_full():
    a = 0x9000
    runs = []

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(6000)
        yield Tx(body)

    def flat():
        def body():
            runs.append(1)
            yield Write(a, 2)
        yield Work(100)
        yield Tx(body)

    res, _ = run([holder, flat])
    assert res.commits == 2
    assert len(runs) >= 2
    assert res.memory[a] == 2
