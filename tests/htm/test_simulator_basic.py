"""Engine integration tests: single-thread semantics of the simulator."""

import pytest

from repro.config import SimConfig
from repro.htm.ops import Barrier, Read, Tx, Work, Write
from repro.simulator import Simulator

SCHEMES = ["logtm-se", "fastm", "suv", "lazy", "dyntm", "dyntm+suv"]


def small_config(**kw):
    return SimConfig(n_cores=4, **kw)


def run_threads(threads, scheme="suv", config=None, seed=7):
    sim = Simulator(config or small_config(), scheme=scheme, seed=seed)
    return sim.run(threads)


def test_empty_thread_finishes():
    def thread():
        return
        yield  # pragma: no cover

    res = run_threads([thread])
    assert res.total_cycles == 0
    assert res.commits == 0


def test_work_charges_notrans():
    def thread():
        yield Work(123)

    res = run_threads([thread])
    assert res.total_cycles == 123
    assert res.breakdown.cycles["NoTrans"] == 123


def test_nontx_write_then_read_roundtrip():
    seen = []

    def thread():
        yield Write(0x100, 77)
        v = yield Read(0x100)
        seen.append(v)

    res = run_threads([thread])
    assert seen == [77]
    assert res.memory[0x100] == 77
    assert res.breakdown.cycles["NoTrans"] > 0


@pytest.mark.parametrize("scheme", SCHEMES)
def test_committed_tx_publishes(scheme):
    def thread():
        def body():
            v = yield Read(0x200)
            yield Write(0x200, v + 5)
        yield Tx(body, site=1)

    res = run_threads([thread], scheme=scheme)
    assert res.commits == 1
    assert res.aborts == 0
    assert res.memory[0x200] == 5
    assert res.breakdown.cycles["Trans"] > 0


@pytest.mark.parametrize("scheme", SCHEMES)
def test_read_your_own_write(scheme):
    seen = []

    def thread():
        def body():
            yield Write(0x300, 9)
            v = yield Read(0x300)
            seen.append(v)
        yield Tx(body)

    run_threads([thread], scheme=scheme)
    assert seen == [9]


def test_tx_return_value_is_sent_back():
    got = []

    def thread():
        def body():
            yield Write(0x10, 1)
            return 42
        out = yield Tx(body)
        got.append(out)

    run_threads([thread])
    assert got == [42]


@pytest.mark.parametrize("scheme", ["logtm-se", "fastm", "suv"])
def test_nested_commit_merges_into_parent(scheme):
    def thread():
        def inner():
            yield Write(0x48, 2)

        def outer():
            yield Write(0x40, 1)
            yield Tx(inner)
            yield Write(0x50, 3)

        yield Tx(outer)

    res = run_threads([thread], scheme=scheme)
    assert res.commits == 1  # only outermost commits count
    assert res.memory[0x40] == 1
    assert res.memory[0x48] == 2
    assert res.memory[0x50] == 3


def test_barrier_synchronizes_two_threads():
    order = []

    def t0():
        yield Work(10)
        order.append(("t0", "pre"))
        yield Barrier(0)
        order.append(("t0", "post"))

    def t1():
        yield Work(500)
        order.append(("t1", "pre"))
        yield Barrier(0)
        order.append(("t1", "post"))

    res = run_threads([t0, t1])
    pres = [e for e in order if e[1] == "pre"]
    posts = [e for e in order if e[1] == "post"]
    assert order.index(pres[-1]) < order.index(posts[0])
    assert res.breakdown.cycles["Barrier"] > 0


def test_barrier_inside_tx_rejected():
    def thread():
        def body():
            yield Barrier(0)
        yield Tx(body)

    with pytest.raises(Exception):
        run_threads([thread])


def test_more_threads_than_cores_are_multiplexed():
    def t():
        yield Work(1)

    res = run_threads([t] * 5, config=small_config())
    assert res.n_threads == 5
    assert res.total_cycles >= 1


def test_deterministic_given_seed():
    def thread():
        def body():
            v = yield Read(0x80)
            yield Write(0x80, v + 1)
        for _ in range(5):
            yield Tx(body)
            yield Work(13)

    r1 = run_threads([thread, thread], seed=3)
    r2 = run_threads([thread, thread], seed=3)
    assert r1.total_cycles == r2.total_cycles
    assert r1.breakdown.as_dict() == r2.breakdown.as_dict()


def test_component_sum_matches_finish_time_single_thread():
    def thread():
        yield Work(50)

        def body():
            yield Write(0x900, 1)
            yield Work(30)
        yield Tx(body)
        yield Work(20)

    res = run_threads([thread])
    # with no contention every cycle lands in exactly one component
    assert res.breakdown.total == res.total_cycles
