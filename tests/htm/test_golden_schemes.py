"""Golden-equivalence pins for the six canonical scheme names.

The digests in ``tests/data/golden_schemes.json`` were captured on the
monolithic-scheme implementation immediately *before* the policy-axis
refactor.  Every canonical name must keep producing bit-identical
per-seed results: the refactor recomposed the simulator's conflict
resolution and commit arbitration out of policy objects, and these pins
prove the recomposition is an identity for the pre-existing schemes.

If a deliberate behavioural change ever invalidates them, regenerate
with the recipe in this file's ``_digest`` (and say so in the commit).
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.htm.vm.base import available_schemes
from repro.runner import ExperimentSpec, execute_spec

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_schemes.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: (workload, scale, seed, cores) pins; small enough to run in tier 1
PINS = [("ssca2", "tiny", 3, 4), ("synthetic", "tiny", 7, 4)]


def _digest(spec: ExperimentSpec) -> str:
    res = execute_spec(spec).to_dict()
    payload = {k: res[k] for k in GOLDEN["fields"]}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@pytest.mark.parametrize("workload,scale,seed,cores", PINS)
@pytest.mark.parametrize("scheme", available_schemes())
def test_canonical_scheme_results_are_bit_identical(
    workload, scale, seed, cores, scheme
):
    key = f"{workload}/{scheme}/{scale}/seed{seed}/cores{cores}"
    assert key in GOLDEN["pins"], f"no golden pin for {key}"
    spec = ExperimentSpec(
        workload=workload, scheme=scheme, scale=scale, seed=seed, cores=cores
    )
    assert _digest(spec) == GOLDEN["pins"][key], (
        f"{key} diverged from its pre-refactor pin: the policy-axis "
        "decomposition must keep canonical schemes bit-identical"
    )


def test_every_golden_pin_is_exercised():
    exercised = {
        f"{workload}/{scheme}/{scale}/seed{seed}/cores{cores}"
        for workload, scale, seed, cores in PINS
        for scheme in available_schemes()
    }
    assert exercised == set(GOLDEN["pins"])
