"""The greedy / karma / polite contention managers, end to end.

The headline is starvation-freedom by *policy* rather than by
versioning: ``mvsuv`` rescues the huge ``starve`` reader with snapshot
reads, but ``greedy`` (Guerraoui–Herlihy–Pochon timestamp seniority)
rescues it on plain SUV by making the oldest transaction unbeatable —
the doomed-reader loop that ``abort_requester`` exhibits disappears
without touching version management.  The rest pins seed-determinism
(a contention manager that consults wall-clock or object identity
would break replayability), livelock-freedom, legality bookkeeping and
the oracle across all three managers.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm.policy import (
    ARBITRATION_AXIS,
    CD_AXIS,
    RESOLUTION_AXIS,
    VM_AXIS,
    iter_scheme_space,
    legal_combinations,
)
from repro.runner import ExperimentSpec, execute_spec
from repro.trace import TX_ABORT, TX_COMMIT, Tracer

NEW_MANAGERS = ("polite", "greedy", "karma")

# pinned doom-loop scenario: with stagger=0 the tid tie-break makes the
# reader the oldest transaction, and this much writer traffic dooms it
# 5+ times under abort_requester (the requester always wins, and every
# writer's commit is a request against the reader's read set)
DOOM = dict(
    workload="starve",
    scheme="suv",
    scale="tiny",
    seed=2,
    cores=16,
    stagger=0,
    workload_kwargs=(
        ("reader_slots", 48), ("tx_per_writer", 16),
        ("writes_per_tx", 3), ("work_per_access", 30),
    ),
    check=True,  # atomicity oracle armed on every run
)


def run_doom(resolution: str):
    tracer = Tracer(events=True)
    spec = ExperimentSpec(resolution=resolution, **DOOM)
    result = execute_spec(spec, trace=tracer)
    reader_events = {
        kind: sum(
            1 for e in tracer.iter_events()
            if e["kind"] == kind and e.get("site") == 1
        )
        for kind in (TX_ABORT, TX_COMMIT)
    }
    return result, reader_events


def test_axis_registers_the_new_managers():
    for name in NEW_MANAGERS:
        assert name in RESOLUTION_AXIS


def test_legal_space_is_140_of_315():
    # 5 VMs × 3 CDs × 7 resolutions × 3 arbitrations = 315 combinations;
    # eager is serial-only (5×7), lazy admits buffer/redirect (2×7×3),
    # adaptive admits undo/flash/redirect (3×7×3) → (5 + 6 + 9) × 7
    assert len(VM_AXIS) * len(CD_AXIS) * len(RESOLUTION_AXIS) \
        * len(ARBITRATION_AXIS) == 315
    assert len(list(iter_scheme_space())) == 315
    assert len(legal_combinations()) == 140


def test_new_managers_compose_across_every_legal_vm_cd():
    legal = legal_combinations()
    for name in NEW_MANAGERS:
        with_it = {(c.vm, c.cd) for c in legal if c.resolution == name}
        with_stall = {(c.vm, c.cd) for c in legal if c.resolution == "stall"}
        # drop-in: exactly the (vm, cd) pairs stall is legal with
        assert with_it == with_stall


@pytest.mark.parametrize("typo,meant", [
    ("greedey", "greedy"), ("gredy", "greedy"),
    ("carma", "karma"), ("kharma", "karma"),
    ("polit", "polite"), ("politee", "polite"),
])
def test_typos_get_near_miss_suggestions(typo, meant):
    from repro.errors import UnknownSchemeError
    from repro.htm.policy import make_resolution

    with pytest.raises(UnknownSchemeError) as err:
        make_resolution(typo)
    assert meant in err.value.suggestions
    assert "did you mean" in str(err.value)


def test_abort_requester_dooms_the_reader_into_a_loop():
    result, reader = run_doom("abort_requester")
    assert reader[TX_ABORT] >= 5, (
        "the pinned scenario must exhibit the doom loop; "
        f"got {reader[TX_ABORT]} reader aborts"
    )
    assert reader[TX_COMMIT] == 1


def test_greedy_commits_the_doomed_reader_without_the_loop():
    result, reader = run_doom("greedy")
    assert reader[TX_ABORT] == 0, (
        "greedy seniority must make the oldest reader unbeatable"
    )
    assert reader[TX_COMMIT] == 1
    assert result.oracle is not None  # the oracle actually ran


@pytest.mark.parametrize("resolution", NEW_MANAGERS)
def test_oracle_and_verifier_pass_under_each_manager(resolution):
    result, reader = run_doom(resolution)
    assert reader[TX_COMMIT] == 1  # no manager loses the reader
    assert result.commits >= 1 + 15 * 16  # reader + all writer txs


@pytest.mark.parametrize("resolution", ("polite", "greedy"))
def test_managers_beat_abort_requester_for_the_reader(resolution):
    # karma is deliberately absent: published Karma lets a stream of
    # small writers out-wait a big reader (every stall-retry earns the
    # requester karma until it attacks), so it bounds but does not
    # minimize the reader's aborts — see the oracle test above
    _, base = run_doom("abort_requester")
    _, managed = run_doom(resolution)
    assert managed[TX_ABORT] < base[TX_ABORT]


# ----------------------------------------------------------------------
# property-style tests (hypothesis)
# ----------------------------------------------------------------------


def run_starve(resolution: str, seed: int, tracer: Tracer | None = None):
    spec = ExperimentSpec(
        workload="starve", scheme="suv", scale="tiny", seed=seed,
        cores=8, stagger=0, resolution=resolution, check=True,
    )
    return execute_spec(spec, trace=tracer)


@settings(max_examples=8, deadline=None)
@given(
    resolution=st.sampled_from(NEW_MANAGERS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_managers_are_seed_deterministic(resolution, seed):
    a = run_starve(resolution, seed)
    b = run_starve(resolution, seed)
    assert (a.total_cycles, a.commits, a.aborts, a.tx_attempts) \
        == (b.total_cycles, b.commits, b.aborts, b.tx_attempts)
    assert a.memory == b.memory


@settings(max_examples=8, deadline=None)
@given(
    resolution=st.sampled_from(("greedy", "karma")),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_every_transaction_eventually_commits(resolution, seed):
    # livelock-freedom: the run terminates (no max_events blowup), the
    # functional verifier accepts the memory image, and every site that
    # began a transaction also committed one — nothing starves forever
    tracer = Tracer(events=True)
    result = run_starve(resolution, seed, tracer=tracer)
    began = {e.get("site") for e in tracer.iter_events()
             if e["kind"] == "tx_begin"}
    committed = {e.get("site") for e in tracer.iter_events()
                 if e["kind"] == TX_COMMIT}
    assert began == committed
    assert result.commits == result.tx_attempts - result.aborts


def test_greedy_reader_priority_is_monotone_under_more_writers():
    # seniority must hold as contention grows: the oldest reader never
    # aborts no matter how much traffic arrives behind it
    for tx_per_writer in (4, 8, 16):
        tracer = Tracer(events=True)
        spec = dataclasses.replace(
            ExperimentSpec(resolution="greedy", **DOOM),
            workload_kwargs=(
                ("reader_slots", 48), ("tx_per_writer", tx_per_writer),
                ("writes_per_tx", 3), ("work_per_access", 30),
            ),
        )
        execute_spec(spec, trace=tracer)
        reader_aborts = sum(
            1 for e in tracer.iter_events()
            if e["kind"] == TX_ABORT and e.get("site") == 1
        )
        assert reader_aborts == 0, f"tx_per_writer={tx_per_writer}"
