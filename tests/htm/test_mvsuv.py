"""Behavioural tests for the multiversioned SUV scheme (``mvsuv``).

The headline property is starvation-freedom: a huge read-only
transaction that plain SUV dooms over and over (its read set conflicts
with every writer commit) runs wait-free under mvsuv — it snapshots the
version chains, stays invisible to conflict detection, and commits
first try.  The rest covers the snapshot-grant policy (declared and
detected), the demotion paths (violation, chain exhaustion), the
isolation-window collapse, and oracle-armed runs across workloads and
seeds.
"""

import pytest

from repro.config import HTMConfig, RedirectConfig, SimConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.runner import ExperimentSpec, execute_spec
from repro.simulator import Simulator
from repro.trace import TX_ABORT, Tracer
from repro.workloads import make_workload

A = 0x1000
B = 0x2000


def _starve_config() -> SimConfig:
    # abort_responder lets every small writer doom the huge reader: the
    # harshest resolution for plain SUV's reader, a no-op for snapshots
    return SimConfig(n_cores=4, htm=HTMConfig(resolution="abort_responder"))


def _run_starve(scheme: str, **redirect: int):
    config = _starve_config()
    if redirect:
        config = config.with_(redirect=RedirectConfig(**redirect))
    program = make_workload("starve", n_threads=4, seed=1, scale="tiny")
    tracer = Tracer(events=True)
    sim = Simulator(config, scheme=scheme, seed=1, oracle=True, trace=tracer)
    result = sim.run(program.threads)
    sim.oracle.verify()
    program.verify(result.memory)
    reader_aborts = sum(
        1 for event in tracer.iter_events()
        if event["kind"] == TX_ABORT and event.get("site") == 1
    )
    return result, tracer, reader_aborts


def test_huge_reader_is_starved_under_suv_but_not_mvsuv():
    _, _, suv_aborts = _run_starve("suv")
    result, tracer, mv_aborts = _run_starve("mvsuv")
    assert suv_aborts >= 3, "the stress must actually starve plain SUV"
    # the acceptance bar: >= 90% fewer reader aborts at the same config
    assert mv_aborts <= 0.1 * suv_aborts
    stats = result.scheme_stats
    assert stats["snapshot_txs"] >= 1
    assert stats["snapshot_commits"] >= 1
    # the reader's attempt closes no isolation window at all
    assert tracer.snapshot_windows >= 1


def test_snapshot_windows_collapse_to_zero_isolation():
    _, tracer, _ = _run_starve("mvsuv")
    isolation = tracer.phase_breakdown()["isolation"]
    assert isolation["snapshot_windows"] == tracer.snapshot_windows
    assert isolation["snapshot_isolation_cycles"] == 0
    assert isolation["snapshot_lifetime_cycles"] > 0


def _run_threads(threads, scheme="mvsuv", **redirect: int):
    config = SimConfig(n_cores=4)
    if redirect:
        config = config.with_(redirect=RedirectConfig(**redirect))
    sim = Simulator(config, scheme=scheme, seed=1, oracle=True)
    result = sim.run(threads)
    sim.oracle.verify()
    return result, sim.scheme


def test_declared_read_only_gets_a_snapshot():
    def reader():
        def body():
            yield Read(A)
        yield Tx(body, site=1, read_only=True)

    result, scheme = _run_threads([reader])
    stats = scheme.scheme_stats()
    assert stats["snapshot_txs"] == 1
    assert stats["snapshot_commits"] == 1
    assert result.commits == 1 and result.aborts == 0


def test_read_only_site_is_detected_without_declaration():
    def reader():
        def body():
            yield Read(A)
        # two undeclared transactions at one site: the first runs eager
        # and proves the site never writes, the second gets the snapshot
        yield Tx(body, site=7)
        yield Tx(body, site=7)

    _, scheme = _run_threads([reader])
    assert scheme.scheme_stats()["snapshot_txs"] == 1


def test_writing_site_is_never_granted_a_snapshot():
    def writer():
        def body():
            value = yield Read(A)
            yield Write(A, value + 1)
        yield Tx(body, site=2)
        yield Tx(body, site=2)

    result, scheme = _run_threads([writer])
    assert scheme.scheme_stats()["snapshot_txs"] == 0
    assert result.memory.get(A, 0) == 2


def test_snapshot_violation_demotes_the_site_and_still_commits():
    def liar():
        def body():
            value = yield Read(A)
            yield Write(A, value + 1)   # violates the declaration
        yield Tx(body, site=3, read_only=True)
        yield Tx(body, site=3, read_only=True)

    result, scheme = _run_threads([liar])
    stats = scheme.scheme_stats()
    assert stats["snapshot_violations"] == 1
    assert stats["snapshot_demoted_sites"] == 1
    # the retry runs eager; both transactions' writes land
    assert result.memory.get(A, 0) == 2
    # the demoted site gets no second snapshot
    assert stats["snapshot_txs"] == 1


def test_chain_exhaustion_degrades_to_plain_suv():
    def reader():
        def body():
            yield Read(B)
            yield Work(4000)   # let the writer publish past versions_k
            yield Read(A)
        yield Tx(body, site=1, read_only=True)

    def writer():
        for _ in range(4):
            def body():
                value = yield Read(A)
                yield Write(A, value + 1)
            yield Tx(body, site=2)
            yield Work(50)

    result, scheme = _run_threads([reader, writer], versions_k=1)
    stats = scheme.scheme_stats()
    assert stats["snapshot_exhaustions"] >= 1
    assert stats["snapshot_demoted_sites"] >= 1
    # degradation is graceful: the reader retried eagerly and committed
    assert result.commits == 5 and result.memory.get(A, 0) == 4


def test_version_gc_respects_a_capped_pool():
    # 2 pages x 8 lines: version records and write redirects fight for
    # 16 pool lines, so GC must sacrifice stale versions to keep going
    result, tracer, _ = _run_starve(
        "mvsuv", pool_page_bytes=512, pool_max_pages=2, versions_k=2,
    )
    stats = result.scheme_stats
    assert stats["pool_high_water"] <= 16
    assert stats["version_evictions"] + stats["versions_lost"] >= 1
    assert stats["versions_high_water"] >= 1


@pytest.mark.parametrize("workload", ["starve", "ssca2", "synthetic"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_oracle_armed_mvsuv_across_workloads_and_seeds(workload, seed):
    spec = ExperimentSpec(
        workload=workload, scheme="mvsuv", scale="tiny",
        seed=seed, cores=4, check=True,
    )
    result = execute_spec(spec)
    assert result.oracle["passed"], result.oracle["failures"]
