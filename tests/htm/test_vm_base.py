"""Unit tests for the VersionManager base plumbing."""

import pytest

from repro.config import SimConfig
from repro.htm.transaction import TxFrame
from repro.htm.vm.base import (
    LOG_REGION_BASE,
    VMStats,
    VersionManager,
    make_version_manager,
)
from repro.mem.hierarchy import MemoryHierarchy


def make(scheme="logtm-se", cores=4):
    cfg = SimConfig(n_cores=cores)
    return make_version_manager(scheme, cfg, MemoryHierarchy(cfg))


def frame():
    return TxFrame.create(1, lambda: iter(()), 0, 0, 0, SimConfig().signature)


def test_vmstats_as_dict_merges_extra():
    s = VMStats()
    s.tx_writes = 3
    s.extra["custom"] = 7
    d = s.as_dict()
    assert d["tx_writes"] == 3 and d["custom"] == 7


def test_log_regions_are_per_core_disjoint():
    vm = make()
    bases = vm._log_base
    assert len(set(bases)) == len(bases)
    assert all(b >= LOG_REGION_BASE >> 6 for b in bases)


def test_log_append_advances_cursor_and_costs_cycles():
    vm = make()
    before = vm._log_cursor[0]
    latency = vm._log_append(0)
    assert vm._log_cursor[0] == before + 1
    assert latency > 0
    assert vm.stats.log_writes == 1


def test_log_reset_rewinds_but_not_below_base():
    vm = make()
    vm._log_append(1)
    vm._log_append(1)
    vm._log_reset(1, 2)
    assert vm._log_cursor[1] == vm._log_base[1]
    vm._log_reset(1, 50)
    assert vm._log_cursor[1] == vm._log_base[1]


def test_log_walk_restores_in_reverse():
    vm = make()
    lines = [100, 200, 300]
    for _ in lines:
        vm._log_append(0)
    latency = vm._log_walk_restore(0, lines)
    assert vm.stats.log_restores == 3
    assert latency > 0


def test_default_hooks_are_neutral():
    vm = make("suv")
    f = frame()
    assert vm.on_begin(0, f) == 0
    assert vm.nontx_translate(0, 12345)[1] == 12345 or True  # may redirect
    assert vm.validate(0, f) is True
    assert vm.mode_for(0, 1) == "eager"
    assert vm.uses_local_writes() is False


def test_post_write_counts_overflowed_written_lines():
    from repro.mem.hierarchy import AccessResult

    vm = make()
    f = frame()
    res_none = AccessResult(1, True, "l1")
    vm.post_write(0, f, 10, res_none)
    # the physical line 10 is now in the frame's written set; evicting
    # it counts as a cache overflow
    res_evict = AccessResult(1, False, "mem", [], [10])
    vm.post_write(0, f, 11, res_evict)
    assert vm.stats.cache_overflows == 1
    assert vm.stats.overflowed_txs == 1
    # further overflows in the same frame don't recount the tx
    res_evict2 = AccessResult(1, False, "mem", [], [11])
    vm.post_write(0, f, 12, res_evict2)
    assert vm.stats.overflowed_txs == 1
