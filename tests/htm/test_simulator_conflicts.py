"""Engine integration tests: conflicts, stalls, aborts, pathologies."""

import pytest

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.simulator import Simulator


def small_config(**kw):
    return SimConfig(n_cores=4, **kw)


def run_threads(threads, scheme="suv", config=None, seed=7, max_events=2_000_000):
    sim = Simulator(config or small_config(), scheme=scheme, seed=seed)
    return sim.run(threads, max_events=max_events)


def counter_thread(addr, rounds, work=50):
    """Increment a shared counter in a transaction, `rounds` times."""

    def thread():
        def body():
            v = yield Read(addr)
            yield Work(work)
            yield Write(addr, v + 1)
        for _ in range(rounds):
            yield Tx(body, site=1)
            yield Work(10)

    return thread


@pytest.mark.parametrize("scheme", ["logtm-se", "fastm", "suv", "dyntm",
                                    "dyntm+suv", "lazy"])
def test_shared_counter_is_exact_under_contention(scheme):
    # the canonical atomicity test: N threads x R increments
    addr = 0x4000
    threads = [counter_thread(addr, 8) for _ in range(4)]
    res = run_threads(threads, scheme=scheme)
    assert res.memory[addr] == 4 * 8
    assert res.commits == 4 * 8


def test_conflicting_txs_stall_or_abort():
    addr = 0x4000
    threads = [counter_thread(addr, 6, work=200) for _ in range(4)]
    res = run_threads(threads, scheme="logtm-se")
    bd = res.breakdown.cycles
    assert bd["Stalled"] > 0 or bd["Wasted"] > 0
    assert res.tx_attempts >= res.commits


def test_disjoint_txs_do_not_conflict():
    def make(addr):
        def thread():
            def body():
                v = yield Read(addr)
                yield Write(addr, v + 1)
            for _ in range(5):
                yield Tx(body)
        return thread

    # well-separated lines
    threads = [make(0x1000 + i * 0x10000) for i in range(4)]
    res = run_threads(threads, scheme="suv")
    assert res.aborts == 0
    assert res.breakdown.cycles["Stalled"] == 0


def test_write_write_deadlock_is_broken():
    # T0: lock A then B; T1: lock B then A — a classic wait cycle
    a, b = 0x1000, 0x2000

    def t0():
        def body():
            yield Write(a, 1)
            yield Work(300)
            yield Write(b, 1)
        yield Tx(body)

    def t1():
        def body():
            yield Write(b, 2)
            yield Work(300)
            yield Write(a, 2)
        yield Tx(body)

    res = run_threads([t0, t1], scheme="logtm-se")
    assert res.commits == 2
    assert res.aborts >= 1  # the cycle was broken by aborting someone
    # both transactions eventually applied atomically: memory consistent
    assert {res.memory[a], res.memory[b]} <= {1, 2}


def test_aborted_tx_work_counts_as_wasted():
    a = 0x1000

    def winner():
        def body():
            yield Write(a, 1)
            yield Work(2000)
        yield Tx(body)

    def loser():
        def body():
            yield Work(100)
            yield Write(a, 2)
            yield Work(400)
        yield Work(50)   # let the winner grab the line first
        yield Tx(body)

    res = run_threads(
        [winner, loser], scheme="logtm-se",
        config=small_config(htm=HTMConfig(resolution="abort_requester")),
    )
    assert res.aborts >= 1
    assert res.breakdown.cycles["Wasted"] > 0
    assert res.breakdown.cycles["Backoff"] > 0


def test_strong_isolation_nontx_access_waits():
    a = 0x1000
    seen = []

    def tx_thread():
        def body():
            yield Write(a, 1)
            yield Work(1000)
            yield Write(a, 2)
        yield Tx(body)

    def nontx_thread():
        yield Work(50)  # arrive mid-transaction
        v = yield Read(a)
        seen.append(v)

    res = run_threads([tx_thread, nontx_thread], scheme="suv")
    # the non-transactional read never observes the uncommitted value 1
    assert seen == [2]
    stalled = res.per_core[1].get("Stalled", 0)
    assert stalled > 0


@pytest.mark.parametrize("scheme", ["logtm-se", "fastm", "suv"])
def test_abort_discards_speculative_state(scheme):
    a, marker = 0x1000, 0x5000

    def t0():
        def body():
            yield Write(a, 111)
            yield Work(800)
        yield Tx(body)

    def t1():
        def body():
            yield Work(50)
            yield Write(a, 222)
        yield Work(20)
        yield Tx(body)
        yield Write(marker, 1)

    res = run_threads(
        [t0, t1], scheme=scheme,
        config=small_config(htm=HTMConfig(resolution="abort_requester")),
    )
    # whichever order things resolved, the final value is a committed one
    assert res.memory[a] in (111, 222)
    assert res.memory[marker] == 1


def test_repair_pathology_logtm_aborting_time():
    """LogTM-SE abort pays a software log walk; SUV aborts in ~constant."""
    lines = [0x10000 + i * 64 for i in range(64)]
    a = 0x1000

    def big_writer():
        def body():
            yield Write(a, 1)
            for addr in lines:
                yield Write(addr, 7)
            # now conflict with the other thread and lose
            yield Work(500)
        yield Tx(body)

    def aggressor():
        def body():
            yield Work(10)
            yield Write(a, 2)
        yield Work(120)
        yield Tx(body)

    cfg = small_config(htm=HTMConfig(resolution="stall"))

    def run(scheme):
        # seed chosen arbitrarily; deterministic comparison
        return run_threads([big_writer, aggressor], scheme=scheme, config=cfg)

    r_log = run("logtm-se")
    r_suv = run("suv")
    # both must be correct
    assert r_log.memory[lines[0]] == r_suv.memory[lines[0]] == 7
    if r_log.aborts and r_suv.aborts:
        assert (
            r_log.breakdown.cycles["Aborting"]
            > 5 * r_suv.breakdown.cycles["Aborting"]
        )


def test_stall_policy_conflicting_reader_waits_for_writer():
    a = 0x1000
    seen = []

    def writer():
        def body():
            yield Write(a, 5)
            yield Work(600)
        yield Tx(body)

    def reader():
        def body():
            v = yield Read(a)
            seen.append(v)
        yield Work(30)
        yield Tx(body)

    res = run_threads([writer, reader], scheme="suv")
    assert seen == [5]  # reader stalled until the writer committed
    assert res.per_core[1].get("Stalled", 0) > 0


def test_lazy_tx_invisible_until_commit_then_wins():
    a = 0x1000

    def lazy_t():
        def body():
            yield Write(a, 1)
            yield Work(100)
        yield Tx(body)

    def lazy_u():
        def body():
            v = yield Read(a)
            yield Work(400)
            yield Write(a, v + 10)
        yield Tx(body)

    res = run_threads([lazy_t, lazy_u], scheme="lazy")
    assert res.commits == 2
    # u read a stale value, failed validation or was doomed, retried
    assert res.memory[a] == 11


def test_event_budget_guard_raises():
    def spinner():
        def body():
            yield Work(1)
        while True:
            yield Tx(body)

    with pytest.raises(RuntimeError):
        run_threads([spinner], max_events=500)
