"""Tests for the decorator-based version-manager registry."""

import pytest

from repro.config import SimConfig
from repro.htm.vm import base
from repro.htm.vm.base import (
    available_schemes,
    make_version_manager,
    register_scheme,
)


def test_builtin_schemes_registered_in_canonical_order():
    assert available_schemes() == (
        "logtm-se", "fastm", "suv", "lazy", "dyntm", "dyntm+suv", "mvsuv"
    )


def test_aliases_resolve_to_canonical_scheme():
    from repro.mem.hierarchy import MemoryHierarchy

    config = SimConfig(n_cores=2)
    hierarchy = MemoryHierarchy(config)
    canonical = make_version_manager("logtm-se", config, hierarchy)
    for alias in ("logtmse", "logtm", "LogTM-SE", "logtm_se"):
        vm = make_version_manager(alias, config, hierarchy)
        assert type(vm) is type(canonical)


def test_unknown_scheme_lists_available():
    with pytest.raises(ValueError, match="logtm-se"):
        make_version_manager("nosuch", SimConfig(n_cores=2), None)


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_scheme("suv")(lambda config, hierarchy: None)


def test_custom_scheme_registration():
    @register_scheme("test-null", "testnull")
    def make_null(config, hierarchy):
        return ("null-vm", config.n_cores)

    try:
        assert "test-null" in available_schemes()
        vm = make_version_manager("testnull", SimConfig(n_cores=2), None)
        assert vm == ("null-vm", 2)
    finally:
        base._SCHEME_REGISTRY.pop("test-null", None)
        base._SCHEME_ALIASES.pop("testnull", None)
