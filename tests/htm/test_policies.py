"""Conflict-resolution policies: stall, abort_requester, abort_responder."""

import pytest

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.simulator import Simulator


def run(threads, policy, scheme="suv", seed=6):
    cfg = SimConfig(n_cores=4, htm=HTMConfig(resolution=policy))
    sim = Simulator(cfg, scheme=scheme, seed=seed)
    return sim.run(threads, max_events=10_000_000)


def holder_and_challenger():
    a = 0x9000

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(5000)
        yield Tx(body, site=1)

    def challenger():
        def body():
            v = yield Read(a)
            yield Write(a, v + 10)
        yield Work(150)
        yield Tx(body, site=2)

    return a, [holder, challenger]


@pytest.mark.parametrize("policy",
                         ["stall", "abort_requester", "abort_responder"])
def test_all_policies_produce_correct_results(policy):
    a, threads = holder_and_challenger()
    res = run(threads, policy)
    # serializable outcome either way: holder's write then challenger's
    # RMW, or challenger first (1 + 10) then holder overwrites (1)
    assert res.memory[a] in (11, 1)
    assert res.commits == 2


def test_abort_responder_aborts_the_holder():
    a, threads = holder_and_challenger()
    res = run(threads, "abort_responder")
    assert res.aborts >= 1
    # the challenger ran through: it read the pre-transaction value 0
    # after the holder's abort, so memory ends at 1 (holder retried last)
    # or 11 (holder retried first); both committed
    assert res.commits == 2


def test_abort_responder_vs_stall_shifts_time():
    a, threads = holder_and_challenger()
    r_stall = run(threads, "stall")
    r_resp = run(threads, "abort_responder")
    # responder-abort converts requester waiting into holder wasted work
    assert (r_resp.breakdown.cycles["Wasted"]
            >= r_stall.breakdown.cycles["Wasted"])


def test_abort_responder_spares_committing_holder():
    """A holder already publishing cannot be aborted; the requester
    waits out the commit instead."""
    a = 0x9000
    seen = []

    def holder():
        def body():
            yield Write(a, 5)
        yield Tx(body, site=1)

    def challenger():
        def body():
            v = yield Read(a)
            seen.append(v)
        yield Work(2)
        yield Tx(body, site=2)

    res = run([holder, challenger], "abort_responder")
    assert res.commits == 2
    assert seen[-1] in (0, 5)


@pytest.mark.parametrize("policy",
                         ["stall", "abort_requester", "abort_responder"])
def test_counter_exact_under_each_policy(policy):
    addr = 0x4000

    def make():
        def thread():
            def body():
                v = yield Read(addr)
                yield Work(40)
                yield Write(addr, v + 1)
            for _ in range(5):
                yield Tx(body, site=1)
        return thread

    res = run([make() for _ in range(4)], policy)
    assert res.memory[addr] == 20
