"""Thread suspension / multiplexing (paper Section IV-C): more threads
than cores, mid-transaction suspension with armed summary signatures."""

import pytest

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import Barrier, Read, Tx, Work, Write
from repro.simulator import Simulator


def cfg(cores=2, **htm_kw):
    return SimConfig(n_cores=cores, htm=HTMConfig(**htm_kw))


def counter_thread(addr, rounds=4, work=30):
    def thread():
        def body():
            v = yield Read(addr)
            yield Work(work)
            yield Write(addr, v + 1)
        for _ in range(rounds):
            yield Tx(body, site=1)
            yield Work(10)
    return thread


@pytest.mark.parametrize("scheme", ["logtm-se", "fastm", "suv", "dyntm"])
def test_six_threads_on_two_cores_stay_atomic(scheme):
    addr = 0x4000
    threads = [counter_thread(addr) for _ in range(6)]
    sim = Simulator(cfg(cores=2), scheme=scheme, seed=4)
    res = sim.run(threads, max_events=30_000_000)
    assert res.memory[addr] == 6 * 4
    assert res.n_threads == 6
    assert res.context_switches > 0


def test_time_slice_preempts_long_thread():
    order = []

    def long_thread():
        for i in range(40):
            yield Work(500)
        order.append("long")

    def short_thread():
        yield Work(100)
        order.append("short")

    # one core, tiny slice: the short thread must finish long before the
    # long one despite being queued behind it
    sim = Simulator(cfg(cores=1, time_slice=1000), scheme="suv", seed=1)
    res = sim.run([long_thread, short_thread])
    assert order == ["short", "long"]
    assert res.context_switches >= 2


def test_suspended_tx_keeps_isolation():
    """A transaction suspended mid-flight must still block conflicting
    accesses (the armed summary signature of Section IV-C)."""
    a = 0x1000
    seen = []

    def tx_thread():
        def body():
            yield Write(a, 1)
            for _ in range(30):
                yield Work(400)   # long enough to be preempted
            yield Write(a, 2)
        yield Tx(body)

    def reader_thread():
        yield Work(50)
        v = yield Read(a)        # non-tx: strong isolation
        seen.append(v)

    def filler():
        for _ in range(50):
            yield Work(200)

    sim = Simulator(cfg(cores=2, time_slice=800), scheme="suv", seed=2)
    res = sim.run([tx_thread, reader_thread, filler], max_events=30_000_000)
    # the reader never sees the uncommitted 1
    assert seen == [2]
    assert sim.context_switches > 0


def test_barriers_work_across_multiplexed_threads():
    hits = []

    def make(tid):
        def thread():
            yield Work(10 * (tid + 1))
            hits.append(("pre", tid))
            yield Barrier(0)
            hits.append(("post", tid))
        return thread

    sim = Simulator(cfg(cores=2), scheme="suv", seed=3)
    sim.run([make(t) for t in range(5)])
    pres = [i for i, h in enumerate(hits) if h[0] == "pre"]
    posts = [i for i, h in enumerate(hits) if h[0] == "post"]
    assert max(pres) < min(posts)
    assert len(posts) == 5


def test_multiplexed_workload_end_to_end():
    from repro.workloads import make_workload

    program = make_workload("intruder", n_threads=8, seed=2, scale="tiny")
    sim = Simulator(cfg(cores=4), scheme="suv", seed=2)
    res = sim.run(program.threads, max_events=50_000_000)
    program.verify(res.memory)
    assert res.context_switches > 0


def test_multiplexed_genome_with_barriers():
    from repro.workloads import make_workload

    program = make_workload("genome", n_threads=6, seed=2, scale="tiny")
    sim = Simulator(cfg(cores=3), scheme="logtm-se", seed=2)
    res = sim.run(program.threads, max_events=50_000_000)
    program.verify(res.memory)


def test_context_switch_cost_charged():
    def spin():
        for _ in range(10):
            yield Work(300)

    sim = Simulator(cfg(cores=1, time_slice=500, context_switch_cycles=77),
                    scheme="suv", seed=1)
    res = sim.run([spin, spin])
    assert res.context_switches >= 2
    # switches show up as NoTrans overhead beyond the pure work
    assert res.breakdown.cycles["NoTrans"] >= 2 * 10 * 300 + 77
