"""Edge cases of the engine: result helpers, guards, policies, races."""

import pytest

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.simulator import Simulator


def cfg(**kw):
    return SimConfig(n_cores=4, **kw)


def test_simresult_helpers():
    def thread():
        def body():
            yield Write(0x100, 1)
        yield Tx(body)

    a = Simulator(cfg(), scheme="suv").run([thread])
    b = Simulator(cfg(), scheme="logtm-se").run([thread])
    assert a.abort_ratio == 0.0
    assert a.speedup_over(b) == b.total_cycles / a.total_cycles


def test_max_time_guard():
    def thread():
        while True:
            yield Work(1000)

    with pytest.raises(RuntimeError, match="time budget"):
        Simulator(cfg(), scheme="suv").run([thread], max_time=10_000)


def test_unknown_op_rejected():
    def thread():
        yield "not an op"

    with pytest.raises(TypeError):
        Simulator(cfg(), scheme="suv").run([thread])


def test_negative_work_rejected():
    def thread():
        yield Work(-1)

    with pytest.raises(ValueError):
        Simulator(cfg(), scheme="suv").run([thread])


def test_abort_requester_policy_nontx_still_stalls():
    """Strong isolation under abort_requester: the non-transactional
    access cannot abort anyone, so it waits."""
    seen = []

    def tx_thread():
        def body():
            yield Write(0x1000, 5)
            yield Work(800)
            yield Write(0x1000, 6)
        yield Tx(body)

    def nontx_thread():
        yield Work(40)
        v = yield Read(0x1000)
        seen.append(v)

    sim = Simulator(cfg(htm=HTMConfig(resolution="abort_requester")),
                    scheme="logtm-se", seed=2)
    sim.run([tx_thread, nontx_thread])
    assert seen == [6]


def test_stall_retry_timer_makes_progress():
    """Even with a long-running holder, the periodic retry keeps the
    requester live and it completes after the holder ends."""
    def holder():
        def body():
            yield Write(0x2000, 1)
            yield Work(5000)
        yield Tx(body)

    def requester():
        def body():
            v = yield Read(0x2000)
            yield Write(0x2000, v + 1)
        yield Work(100)
        yield Tx(body)

    res = Simulator(cfg(htm=HTMConfig(stall_retry_period=25)),
                    scheme="suv", seed=2).run([holder, requester])
    assert res.memory[0x2000] == 2


def test_three_way_deadlock_cycle_broken():
    a, b, c = 0x1000, 0x2000, 0x3000

    def make(first, second):
        def thread():
            def body():
                yield Write(first, 1)
                yield Work(400)
                yield Write(second, 1)
            yield Tx(body)
        return thread

    res = Simulator(cfg(), scheme="suv", seed=3).run(
        [make(a, b), make(b, c), make(c, a)]
    )
    assert res.commits == 3
    assert res.aborts >= 1


def test_mixed_tx_and_nontx_threads():
    def tx_thread():
        def body():
            v = yield Read(0x4000)
            yield Write(0x4000, v + 1)
        for _ in range(4):
            yield Tx(body)

    def plain_thread():
        for i in range(4):
            yield Write(0x5000 + i * 64, i)
            yield Work(30)

    res = Simulator(cfg(), scheme="suv", seed=1).run([tx_thread, plain_thread])
    assert res.memory[0x4000] == 4
    assert res.memory[0x5000] == 0 or 0x5000 in res.memory


def test_fewer_threads_than_cores():
    def thread():
        yield Work(10)

    res = Simulator(cfg(), scheme="suv").run([thread])
    assert res.total_cycles == 10


def test_zero_threads():
    res = Simulator(cfg(), scheme="suv").run([])
    assert res.total_cycles == 0 and res.commits == 0


def test_tx_with_no_memory_ops():
    def thread():
        def body():
            yield Work(25)
        yield Tx(body)

    res = Simulator(cfg(), scheme="suv").run([thread])
    assert res.commits == 1
    assert res.breakdown.cycles["Trans"] >= 25


def test_write_then_read_same_line_different_words():
    seen = []

    def thread():
        def body():
            yield Write(0x100, 1)       # word 0 of the line
            v = yield Read(0x108)       # word 1: untouched, reads 0
            seen.append(v)
        yield Tx(body)

    Simulator(cfg(), scheme="suv").run([thread])
    assert seen == [0]


def test_consecutive_transactions_reuse_state():
    def thread():
        def body():
            v = yield Read(0x200)
            yield Write(0x200, v + 1)
        for _ in range(10):
            yield Tx(body)

    sim = Simulator(cfg(), scheme="suv", seed=4)
    res = sim.run([thread])
    assert res.memory[0x200] == 10
    # redirect-back kept the table from growing: at most one live entry
    assert sim.scheme.pool.live_lines <= 1
