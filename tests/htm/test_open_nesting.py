"""Open-nested transactions (paper §IV-C extension)."""

import pytest

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import OpenTx, Read, Tx, Work, Write
from repro.simulator import Simulator


def run(threads, scheme="suv", policy="stall", seed=8):
    cfg = SimConfig(n_cores=4, htm=HTMConfig(resolution=policy))
    sim = Simulator(cfg, scheme=scheme, seed=seed)
    return sim.run(threads, max_events=10_000_000)


def test_open_commit_publishes_before_parent_ends():
    """Another thread reads the open-nested result while the parent is
    still running — the isolation-release the paper motivates."""
    log_addr, data_addr = 0x1000, 0x2000
    seen = []

    def worker():
        def log_append():
            n = yield Read(log_addr)
            yield Write(log_addr, n + 1)

        def outer():
            yield OpenTx(log_append, site=9)
            yield Work(4000)               # parent keeps running
            yield Write(data_addr, 1)

        yield Tx(outer)

    def observer():
        yield Work(600)
        v = yield Read(log_addr)           # non-transactional read
        seen.append(v)

    res = run([worker, observer])
    assert res.commits == 2  # open child + outer
    assert seen == [1], "open-nested publication was not visible early"
    assert res.memory[data_addr] == 1


def test_open_commit_frees_conflicting_transaction():
    """A transaction conflicting only with the open child proceeds as
    soon as the child commits, long before the parent ends."""
    counter = 0x1000

    def worker():
        def bump():
            n = yield Read(counter)
            yield Write(counter, n + 1)

        def outer():
            yield OpenTx(bump, site=9)
            yield Work(6000)

        yield Tx(outer)

    def contender():
        def body():
            n = yield Read(counter)
            yield Write(counter, n + 100)
        yield Work(300)
        yield Tx(body)

    res = run([worker, contender])
    assert res.memory[counter] == 101
    # the contender did not wait out the parent's 6000-cycle tail
    assert res.per_core[1].get("Stalled", 0) < 3000


@pytest.mark.parametrize("scheme", ["logtm-se", "fastm", "suv"])
def test_parent_abort_runs_compensation(scheme):
    """If the parent aborts after the open child committed, the
    registered compensating action undoes the published effect."""
    a, counter = 0x9000, 0x1000

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(9000)
        yield Tx(body)

    def worker():
        def bump():
            n = yield Read(counter)
            yield Write(counter, n + 1)

        def unbump():
            n = yield Read(counter)
            yield Write(counter, n - 1)

        def outer():
            yield OpenTx(bump, compensate=unbump, site=9)
            yield Write(a, 2)          # conflicts → parent aborts
        yield Work(150)
        yield Tx(outer)

    res = run([holder, worker], scheme=scheme, policy="abort_requester")
    assert res.aborts >= 1
    # net effect: exactly one bump survives despite parent retries
    assert res.memory[counter] == 1
    assert res.memory[a] == 2


def test_compensations_survive_multiple_retries():
    a, counter = 0x9000, 0x1000

    def holder():
        def body():
            yield Write(a, 1)
            yield Work(20000)
        yield Tx(body)

    def worker():
        def bump():
            n = yield Read(counter)
            yield Write(counter, n + 1)

        def unbump():
            n = yield Read(counter)
            yield Write(counter, n - 1)

        def outer():
            yield OpenTx(bump, compensate=unbump, site=9)
            yield Write(a, 2)
        yield Work(150)
        yield Tx(outer)

    res = run([holder, worker], policy="abort_requester")
    assert res.memory[counter] == 1


def test_open_tx_requires_enclosing_tx():
    def thread():
        def body():
            yield Write(0x10, 1)
        yield OpenTx(body)

    with pytest.raises(RuntimeError, match="enclosing"):
        run([thread])


def test_open_tx_without_compensation_is_fire_and_forget():
    counter = 0x1000

    def worker():
        def bump():
            n = yield Read(counter)
            yield Write(counter, n + 1)

        def outer():
            yield OpenTx(bump, site=9)
            yield Work(50)
        yield Tx(outer)

    res = run([worker])
    assert res.memory[counter] == 1
