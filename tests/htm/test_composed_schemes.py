"""Composed four-axis schemes: canonical equivalence and novel hybrids."""

import pytest

from repro.errors import IncompatiblePolicyError
from repro.runner import ExperimentSpec, RunMatrix, execute_spec

#: canonical name ↔ its four-axis spelling (stall + serial = the
#: HTMConfig defaults every canonical scheme runs under)
EQUIVALENTS = [
    ("logtm-se", "undo+eager+stall+serial"),
    ("fastm", "flash+eager+stall+serial"),
    ("suv", "redirect+eager+stall+serial"),
    ("lazy", "buffer+eager+stall+serial"),
    ("dyntm", "flash+adaptive+stall+serial"),
    ("dyntm+suv", "redirect+adaptive+stall+serial"),
]

#: the two headline hybrids the decomposition unlocks, plus a bounded-
#: width commit pipe — none expressible before this refactor
HYBRIDS = [
    "redirect+lazy+stall+serial",     # SUV-VM + lazy conflict detection
    "undo+eager+timestamp+serial",    # eager undo + age-based resolution
    "redirect+lazy+timestamp+width2",  # overlapped validating commits
]


def _run(scheme, workload="ssca2", seed=3, **kw):
    spec = ExperimentSpec(
        workload=workload, scheme=scheme, scale="tiny", seed=seed, cores=4,
        **kw,
    )
    return execute_spec(spec)


def _fidelity(res):
    return (res.total_cycles, res.commits, res.aborts, res.memory,
            res.breakdown.as_dict(), res.per_core)


@pytest.mark.parametrize("canonical,composed", EQUIVALENTS)
def test_composed_spelling_is_cycle_identical_to_canonical(
    canonical, composed
):
    for workload, seed in (("ssca2", 3), ("synthetic", 7)):
        a = _run(canonical, workload=workload, seed=seed)
        b = _run(composed, workload=workload, seed=seed)
        assert _fidelity(a) == _fidelity(b), (canonical, workload)
        assert a.scheme_stats == b.scheme_stats


@pytest.mark.parametrize("scheme", HYBRIDS)
@pytest.mark.parametrize("workload", ["ssca2", "synthetic"])
def test_novel_hybrids_run_oracle_clean(scheme, workload):
    res = _run(scheme, workload=workload, check=True)
    assert res.oracle is not None and res.oracle["passed"]
    assert res.commits > 0
    assert res.policy_axes["vm"] == scheme.split("+")[0]
    assert res.policy_axes["cd"] == scheme.split("+")[1]


def test_hybrids_are_deterministic_per_seed():
    for scheme in HYBRIDS:
        assert (_fidelity(_run(scheme, seed=5))
                == _fidelity(_run(scheme, seed=5)))


def test_suv_lazy_hybrid_validates_and_publishes():
    res = _run("redirect+lazy+stall+serial", workload="synthetic", seed=7)
    stats = res.scheme_stats
    assert stats["published_lines"] > 0
    # lazy detection means doomed work shows up as validation failures
    # and aborts rather than eager stalls at access time
    assert res.aborts > 0
    assert res.policy_axes == {
        "vm": "redirect", "cd": "lazy",
        "resolution": "stall", "arbitration": "serial",
    }


def test_width_arbitration_changes_timing_but_not_results():
    serial = _run("redirect+lazy+stall+serial", workload="synthetic", seed=7)
    wide = _run("redirect+lazy+stall+width4", workload="synthetic", seed=7)
    assert serial.memory == wide.memory  # same functional outcome
    assert serial.commits == wide.commits
    assert wide.policy_axes["arbitration"] == "width4"


def test_spec_accepts_axes_mapping():
    spec = ExperimentSpec(
        "ssca2",
        scheme={"vm": "redirect", "cd": "lazy"},
        scale="tiny", cores=4,
    )
    assert spec.scheme == "redirect+lazy+stall+serial"
    named = ExperimentSpec(
        "ssca2", scheme="redirect+lazy+stall+serial", scale="tiny", cores=4
    )
    assert spec.spec_hash() == named.spec_hash()
    with pytest.raises(IncompatiblePolicyError):
        ExperimentSpec("ssca2", scheme={"vm": "undo", "cd": "lazy"})


def test_matrix_sweeps_axes_and_skips_illegal_combos():
    matrix = RunMatrix(
        workloads=("ssca2",),
        vms=("undo", "redirect", "buffer"),
        cds=("eager", "lazy"),
        scales=("tiny",),
        cores=(4,),
    )
    schemes = [spec.scheme for spec in matrix.specs()]
    # undo+lazy and flash+lazy are physically impossible and skipped
    assert schemes == [
        "undo+eager+stall+serial",
        "redirect+eager+stall+serial",
        "redirect+lazy+stall+serial",
        "buffer+eager+stall+serial",
        "buffer+lazy+stall+serial",
    ]
    with pytest.raises(IncompatiblePolicyError):
        RunMatrix(workloads=("ssca2",), vms=("undo",), cds=("lazy",)).specs()


def test_canonical_scheme_honours_config_resolution_and_arbitration():
    # the resolution/arbitration axes reach canonical schemes through
    # HTMConfig, so specs can sweep them without composed names
    res = _run("suv", resolution="timestamp")
    assert res.policy_axes["resolution"] == "timestamp"
    lazy = _run("lazy", arbitration="width2")
    assert lazy.policy_axes["arbitration"] == "width2"
    assert lazy.commits > 0
