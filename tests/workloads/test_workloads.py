"""Functional tests: every workload computes its exact result under
every version-management scheme (atomicity/isolation end-to-end)."""

import pytest

from repro.config import SimConfig
from repro.simulator import Simulator
from repro.workloads import HIGH_CONTENTION, WORKLOAD_NAMES, make_workload

ALL_SCHEMES = ["logtm-se", "fastm", "suv", "dyntm", "dyntm+suv"]


def run_and_verify(name, scheme, n_threads=8, seed=2, **kw):
    program = make_workload(name, n_threads=n_threads, seed=seed,
                            scale="tiny", **kw)
    sim = Simulator(SimConfig(n_cores=max(n_threads, 4)), scheme=scheme,
                    seed=seed)
    result = sim.run(program.threads, max_events=30_000_000)
    program.verify(result.memory)
    return result


@pytest.mark.parametrize("name", WORKLOAD_NAMES + ("synthetic",))
def test_workload_correct_under_suv(name):
    res = run_and_verify(name, "suv")
    assert res.commits > 0


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_correct_under_logtm(name):
    run_and_verify(name, "logtm-se")


@pytest.mark.parametrize("name", ["genome", "intruder", "labyrinth", "yada"])
def test_high_contention_workloads_under_remaining_schemes(name):
    for scheme in ("fastm", "dyntm", "dyntm+suv"):
        run_and_verify(name, scheme)


@pytest.mark.parametrize("name", ["kmeans", "vacation", "ssca2", "bayes"])
def test_low_contention_workloads_under_fastm(name):
    run_and_verify(name, "fastm")


def test_registry_rejects_unknown():
    with pytest.raises(ValueError):
        make_workload("quicksort")
    with pytest.raises(ValueError):
        make_workload("genome", scale="huge")


def test_registry_contention_classes():
    assert set(HIGH_CONTENTION) == {
        "bayes", "genome", "intruder", "labyrinth", "yada"
    }
    for name in WORKLOAD_NAMES:
        prog = make_workload(name, n_threads=2, scale="tiny")
        # starve is a deliberate reader-starvation stress, high by design
        expected = (
            "high" if name in HIGH_CONTENTION or name == "starve" else "low"
        )
        assert prog.contention == expected


def test_workloads_are_deterministic():
    a = run_and_verify("intruder", "suv", seed=5)
    b = run_and_verify("intruder", "suv", seed=5)
    assert a.total_cycles == b.total_cycles
    assert a.memory == b.memory


def test_seed_changes_program():
    a = make_workload("vacation", n_threads=2, seed=1, scale="tiny")
    b = make_workload("vacation", n_threads=2, seed=2, scale="tiny")
    assert a.params == b.params  # same shape ...
    # ... different content: run both and compare memory images
    ra = Simulator(SimConfig(n_cores=4), scheme="suv").run(a.threads)
    rb = Simulator(SimConfig(n_cores=4), scheme="suv").run(b.threads)
    assert ra.memory != rb.memory


def test_single_thread_runs_too():
    run_and_verify("genome", "suv", n_threads=1)


def test_contention_produces_aborts_or_stalls():
    res = run_and_verify("intruder", "logtm-se", n_threads=8)
    bd = res.breakdown.cycles
    assert bd["Stalled"] + bd["Wasted"] + bd["Backoff"] > 0


def test_pure_factories_memoized():
    # ssca2/synthetic Programs are read-only at run time, so the registry
    # hands back the same built object for identical build parameters
    a = make_workload("ssca2", n_threads=4, seed=3, scale="tiny")
    b = make_workload("ssca2", n_threads=4, seed=3, scale="tiny")
    assert a is b
    assert make_workload("ssca2", n_threads=4, seed=4, scale="tiny") is not a
    assert make_workload("synthetic", n_threads=4, seed=3, scale="tiny") is \
        make_workload("synthetic", n_threads=4, seed=3, scale="tiny")


def test_impure_factories_rebuilt_each_call():
    # labyrinth mutates captured state while running; sharing one Program
    # across runs would leak results between experiments
    a = make_workload("labyrinth", n_threads=4, seed=3, scale="tiny")
    b = make_workload("labyrinth", n_threads=4, seed=3, scale="tiny")
    assert a is not b
