"""The verifiers must actually detect corruption — a verifier that
passes on garbage would make every end-to-end test vacuous."""

import pytest

from repro.config import SimConfig
from repro.simulator import Simulator
from repro.workloads import WORKLOAD_NAMES, make_workload


def run(name, seed=2):
    program = make_workload(name, n_threads=4, seed=seed, scale="tiny")
    sim = Simulator(SimConfig(n_cores=4), scheme="suv", seed=seed)
    res = sim.run(program.threads, max_events=30_000_000)
    return program, res


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_verifier_detects_corruption(name):
    program, res = run(name)
    program.verify(res.memory)          # sanity: clean run passes

    # corrupt a word the verifier inspects: flip every defined value and
    # demand that at least one corruption is caught
    addrs = sorted(res.memory)
    step = max(1, len(addrs) // 80)
    caught = 0
    for addr in addrs[::step]:
        corrupted = dict(res.memory)
        corrupted[addr] = corrupted[addr] + 1
        try:
            program.verify(corrupted)
        except AssertionError:
            caught += 1
    assert caught > 0, f"{name}: verifier never noticed corruption"


@pytest.mark.parametrize("name", ["genome", "kmeans", "ssca2"])
def test_verifier_detects_lost_update(name):
    """Dropping one committed write must be detected (the classic
    atomicity-violation symptom)."""
    program, res = run(name)
    addrs = sorted(res.memory)
    step = max(1, len(addrs) // 80)
    failures = 0
    for addr in addrs[::step]:
        corrupted = dict(res.memory)
        del corrupted[addr]
        try:
            program.verify(corrupted)
        except AssertionError:
            failures += 1
    assert failures > 0
