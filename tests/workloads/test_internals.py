"""Unit tests for workload-internal pure functions and invariants."""

import numpy as np
import pytest

from repro.workloads.intruder import ATTACK_SIGNATURES, _contains_signature
from repro.workloads.registry import _SCALES
from repro.workloads import WORKLOAD_NAMES, make_workload


# -- intruder's signature matcher ---------------------------------------

def test_matcher_finds_planted_signature():
    sig = ATTACK_SIGNATURES[0]
    payload = [1, 2, *sig, 9]
    assert _contains_signature(payload)


def test_matcher_rejects_clean_payload():
    assert not _contains_signature([1, 2, 3, 4, 5])


def test_matcher_handles_boundaries():
    sig = list(ATTACK_SIGNATURES[1])
    assert _contains_signature(sig)                 # exact
    assert _contains_signature([0] + sig)           # at end
    assert not _contains_signature(sig[:1])         # too short


# -- registry scales -----------------------------------------------------

def test_every_workload_has_three_scales():
    for name in WORKLOAD_NAMES + ("synthetic",):
        assert set(_SCALES[name]) == {"tiny", "small", "full"}


def test_overrides_reach_factories():
    prog = make_workload("genome", n_threads=2, scale="tiny", n_buckets=8)
    assert prog.params["n_buckets"] == 8


def test_params_recorded():
    prog = make_workload("labyrinth", n_threads=2, scale="tiny")
    assert prog.params["dim"] == (8, 8, 2)


# -- genome overlap encoding ----------------------------------------------

def test_genome_links_are_k_symbol_overlaps():
    """Run a tiny genome and spot-check the verifier's overlap logic by
    recomputing overlaps from the program parameters."""
    from repro.config import SimConfig
    from repro.simulator import Simulator

    prog = make_workload("genome", n_threads=4, seed=9, scale="tiny")
    res = Simulator(SimConfig(n_cores=4), scheme="suv", seed=9).run(
        prog.threads
    )
    prog.verify(res.memory)  # includes the overlap check
    assert prog.params["overlap"] == prog.params["segment_length"] - 1


# -- vacation task mix ----------------------------------------------------

def test_vacation_mix_contains_all_action_types():
    import repro.workloads.vacation as v

    rng_seen = set()
    prog = make_workload("vacation", n_threads=2, seed=5, scale="small",
                         user_fraction=0.5)
    assert prog.params["user_fraction"] == 0.5


def test_vacation_roundtrip_slots():
    from repro.workloads.vacation import make_vacation

    # encode/decode are internal; exercise end-to-end instead
    from repro.config import SimConfig
    from repro.simulator import Simulator

    prog = make_vacation(n_threads=4, seed=3, n_relations=32, n_tasks=40,
                         n_customers=16, user_fraction=0.6)
    res = Simulator(SimConfig(n_cores=4), scheme="logtm-se", seed=3).run(
        prog.threads
    )
    prog.verify(res.memory)


# -- kmeans golden model ---------------------------------------------------

def test_kmeans_reference_counts_sum_to_points():
    prog = make_workload("kmeans", n_threads=2, scale="tiny")
    # run once; the verifier compares against the sequential reference
    from repro.config import SimConfig
    from repro.simulator import Simulator

    res = Simulator(SimConfig(n_cores=4), scheme="fastm", seed=1).run(
        prog.threads
    )
    prog.verify(res.memory)


# -- yada termination -------------------------------------------------------

def test_yada_quality_improves_monotonically():
    from repro.workloads.yada import GOOD_QUALITY, make_yada

    prog = make_yada(n_threads=4, seed=7, n_initial=16)
    from repro.config import SimConfig
    from repro.simulator import Simulator

    res = Simulator(SimConfig(n_cores=4), scheme="suv", seed=7).run(
        prog.threads
    )
    prog.verify(res.memory)  # asserts no live bad triangles remain
