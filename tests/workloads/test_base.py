"""Unit tests for the workload building blocks."""

import pytest

from repro.config import LINE_BYTES
from repro.workloads.base import AddressSpace, Program, mem_get


def test_regions_are_line_aligned_and_disjoint():
    space = AddressSpace()
    a = space.alloc("a", 3)
    b = space.alloc("b", 5)
    assert a % LINE_BYTES == 0 and b % LINE_BYTES == 0
    assert b >= a + 3 * 8
    # no overlap even at line granularity
    assert (a >> 6) != (b >> 6) or 3 * 8 <= LINE_BYTES


def test_duplicate_region_rejected():
    space = AddressSpace()
    space.alloc("x", 1)
    with pytest.raises(ValueError):
        space.alloc("x", 1)


def test_padded_regions_one_word_per_line():
    space = AddressSpace()
    base = space.alloc("hot", 4, pad_lines=True)
    addrs = [space.word(base, i, padded=True) for i in range(4)]
    lines = {a >> 6 for a in addrs}
    assert len(lines) == 4


def test_word_addressing():
    space = AddressSpace()
    base = space.alloc("arr", 10)
    assert space.word(base, 0) == base
    assert space.word(base, 3) == base + 24


def test_space_below_reserved_regions():
    space = AddressSpace()
    space.alloc("big", 1 << 20)
    assert space._next < (1 << 40)  # stays clear of the redirect pool


def test_program_verify_delegates():
    hit = []
    prog = Program("p", threads=[], verifier=lambda m: hit.append(m))
    prog.verify({1: 2})
    assert hit == [{1: 2}]
    Program("q", threads=[]).verify({})  # no verifier: no-op


def test_mem_get_defaults_zero():
    assert mem_get({}, 123) == 0
    assert mem_get({123: 7}, 123) == 7


def test_n_threads():
    prog = Program("p", threads=[lambda: iter(())] * 3)
    assert prog.n_threads == 3
