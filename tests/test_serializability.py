"""Property-based end-to-end test: under every version-management
scheme, randomly-generated concurrent transactional programs produce
results identical to *some* serial execution.

For commutative increment workloads the serial result is unique, so we
can check it exactly; for read-dependent transfers we check the global
conservation invariant instead.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import HTMConfig, SimConfig
from repro.htm.ops import Read, Tx, Work, Write
from repro.simulator import Simulator

SCHEMES = ["logtm-se", "fastm", "suv", "dyntm", "dyntm+suv", "lazy"]


@st.composite
def increment_plan(draw):
    n_threads = draw(st.integers(2, 4))
    n_words = draw(st.integers(1, 6))
    plan = []
    for _ in range(n_threads):
        txs = draw(
            st.lists(
                st.lists(st.integers(0, n_words - 1), min_size=1, max_size=4),
                min_size=1, max_size=4,
            )
        )
        plan.append(txs)
    return n_words, plan


@given(increment_plan(), st.sampled_from(SCHEMES), st.integers(0, 3))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_increments_are_atomic(plan_data, scheme, seed):
    n_words, plan = plan_data
    base = 0x8000
    expected = {}
    for txs in plan:
        for tx in txs:
            for w in tx:
                expected[w] = expected.get(w, 0) + 1

    def make_thread(txs):
        def thread():
            for tx in txs:
                def body(tx=tx):
                    for w in tx:
                        v = yield Read(base + w * 8)
                        yield Work(7)
                        yield Write(base + w * 8, v + 1)
                yield Tx(body, site=1)
        return thread

    cfg = SimConfig(n_cores=4)
    sim = Simulator(cfg, scheme=scheme, seed=seed)
    res = sim.run([make_thread(txs) for txs in plan])
    for w, count in expected.items():
        assert res.memory.get(base + w * 8, 0) == count


@given(st.integers(0, 5), st.sampled_from(SCHEMES))
@settings(max_examples=24, deadline=None)
def test_transfers_conserve_total(seed, scheme):
    """Random money transfers between 8 accounts: the total is invariant
    and no account observes a torn (partially-applied) transfer."""
    import numpy as np

    rng = np.random.default_rng(seed)
    n_accounts, initial = 8, 100
    base = 0x8000
    moves = [
        (int(rng.integers(n_accounts)), int(rng.integers(n_accounts)),
         int(rng.integers(1, 20)))
        for _ in range(24)
    ]

    def make_thread(tid):
        my_moves = moves[tid::3]

        def thread():
            if tid == 0:
                for a in range(n_accounts):
                    yield Write(base + a * 8, initial)
            from repro.htm.ops import Barrier
            yield Barrier(0)
            for src, dst, amount in my_moves:
                def body(src=src, dst=dst, amount=amount):
                    s = yield Read(base + src * 8)
                    if s < amount:
                        return
                    yield Work(11)
                    yield Write(base + src * 8, s - amount)
                    d = yield Read(base + dst * 8)
                    yield Write(base + dst * 8, d + amount)
                yield Tx(body, site=2)
        return thread

    sim = Simulator(SimConfig(n_cores=4), scheme=scheme, seed=seed)
    res = sim.run([make_thread(t) for t in range(3)])
    total = sum(res.memory.get(base + a * 8, 0) for a in range(n_accounts))
    assert total == n_accounts * initial
    assert all(res.memory.get(base + a * 8, 0) >= 0 for a in range(n_accounts))


@given(increment_plan(), st.sampled_from(["logtm-se", "suv", "dyntm"]),
       st.integers(0, 3))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_increments_atomic_under_multiplexing(plan_data, scheme, seed):
    """The same atomicity property with twice as many threads as cores
    and a tiny time slice (mid-transaction suspension everywhere)."""
    n_words, plan = plan_data
    base = 0x8000
    expected = {}
    for txs in plan:
        for tx in txs:
            for w in tx:
                expected[w] = expected.get(w, 0) + 1

    def make_thread(txs):
        def thread():
            for tx in txs:
                def body(tx=tx):
                    for w in tx:
                        v = yield Read(base + w * 8)
                        yield Work(7)
                        yield Write(base + w * 8, v + 1)
                yield Tx(body, site=1)
        return thread

    threads = [make_thread(txs) for txs in plan] * 2  # duplicate the plan
    cfg = SimConfig(n_cores=2, htm=HTMConfig(time_slice=300))
    res = Simulator(cfg, scheme=scheme, seed=seed).run(
        threads, max_events=30_000_000
    )
    for w, count in expected.items():
        assert res.memory.get(base + w * 8, 0) == 2 * count
