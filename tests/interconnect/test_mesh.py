"""Unit tests for the mesh interconnect model."""

import pytest

from repro.config import MeshConfig
from repro.interconnect.mesh import Mesh


@pytest.fixture
def mesh():
    return Mesh(16, MeshConfig())


def test_16_cores_form_4x4(mesh):
    assert mesh.side == 4
    assert mesh.core_position(0) == (0, 0)
    assert mesh.core_position(5) == (1, 1)
    assert mesh.core_position(15) == (3, 3)


def test_hop_latency_is_wire_plus_route(mesh):
    # Table III: 2-cycle wire + 1-cycle route
    assert mesh.config.hop_latency == 3
    assert mesh.latency((0, 0), (0, 1)) == 3
    assert mesh.latency((0, 0), (3, 3)) == 6 * 3


def test_core_to_core_is_symmetric(mesh):
    for a in range(16):
        for b in range(16):
            assert mesh.core_to_core(a, b) == mesh.core_to_core(b, a)


def test_self_latency_zero(mesh):
    assert mesh.core_to_core(3, 3) == 0


def test_banks_interleave_lines(mesh):
    assert mesh.bank_of_line(0) == 0
    assert mesh.bank_of_line(1) == 1
    assert mesh.bank_of_line(5) == 1
    assert {mesh.bank_of_line(i) for i in range(8)} == {0, 1, 2, 3}


def test_banks_sit_at_corners(mesh):
    assert mesh._bank_nodes == [(0, 0), (0, 3), (3, 0), (3, 3)]


def test_corner_core_reaches_local_bank_free(mesh):
    # core 0 at (0,0), bank 0 at (0,0): lines mapping to bank 0 are local
    assert mesh.core_to_bank(0, 0) == 0


def test_non_square_core_count_rounds_up():
    m = Mesh(8, MeshConfig())
    assert m.side == 3
    assert m.core_position(7) == (2, 1)


def test_core_out_of_range_rejected(mesh):
    with pytest.raises(ValueError):
        mesh.core_position(16)


def test_avg_core_to_bank_between_min_and_max(mesh):
    avg = mesh.avg_core_to_bank(0)
    lats = [mesh.core_to_bank(c, 0) for c in range(16)]
    assert min(lats) <= avg <= max(lats)
