"""Tests for the CACTI-lite model against the paper's Table VII."""

import pytest

from repro.hwcost.cacti import CactiLite, TableEstimate

PAPER_TABLE_VII = {
    90: (1.382, 0.403, 0.434, 0.951),
    65: (0.995, 0.239, 0.260, 0.589),
    45: (0.588, 0.150, 0.163, 0.282),
    32: (0.412, 0.072, 0.078, 0.143),
}


@pytest.fixture
def cacti():
    return CactiLite()


@pytest.mark.parametrize("node", [90, 65, 45, 32])
def test_reference_geometry_matches_table_vii(cacti, node):
    t, rd, wr, area = PAPER_TABLE_VII[node]
    est = cacti.estimate(node)
    assert est.access_time_ns == pytest.approx(t, abs=1e-3)
    assert est.read_energy_nj == pytest.approx(rd, abs=1e-3)
    assert est.write_energy_nj == pytest.approx(wr, abs=1e-3)
    assert est.area_mm2 == pytest.approx(area, abs=1e-3)


def test_table_vii_listing_covers_all_nodes(cacti):
    rows = cacti.table_vii()
    assert [r.tech_nm for r in rows] == [90, 65, 45, 32]


def test_unsupported_node_rejected(cacti):
    with pytest.raises(ValueError):
        cacti.estimate(22)


def test_one_cycle_access_at_45nm_1_2ghz(cacti):
    # the paper: "an access ... can be finished in 1 cycle with the 45nm
    # CMOS process at 1.2 GHz"
    est = cacti.estimate(45)
    assert est.cycles_at(1.2) == 1
    # but not at 90 nm (1.382 ns > 0.833 ns period)
    assert cacti.estimate(90).cycles_at(1.2) == 2


def test_smaller_tables_are_faster_and_smaller(cacti):
    big = cacti.estimate(45, entries=512)
    small = cacti.estimate(45, entries=64)
    assert small.access_time_ns < big.access_time_ns
    assert small.area_mm2 < big.area_mm2
    assert small.read_energy_nj < big.read_energy_nj


def test_suv_corrected_is_below_half(cacti):
    # the paper argues the real 22-bit-entry table costs less than half
    # the 64-bit CACTI estimate
    for node in (90, 65, 45, 32):
        full = cacti.estimate(node)
        corrected = cacti.suv_corrected(node)
        assert corrected.area_mm2 < 0.5 * full.area_mm2
        assert corrected.read_energy_nj < 0.55 * full.read_energy_nj


def test_monotone_across_nodes(cacti):
    rows = cacti.table_vii()
    times = [r.access_time_ns for r in rows]
    areas = [r.area_mm2 for r in rows]
    assert times == sorted(times, reverse=True)
    assert areas == sorted(areas, reverse=True)
