"""Tests for the Section V-C storage/energy/area arithmetic."""

import pytest

from repro.config import RedirectConfig, SimConfig
from repro.hwcost.storage import (
    cmp_energy_bound_joules,
    cmp_table_area_mm2,
    per_core_storage_bytes,
    per_core_storage_fraction_of_l1,
    suv_overhead_report,
)


def test_per_core_storage_is_1_875_kb():
    # (2 Kb + 2 Kb + 22 b * 512) / 8 = 1.875 KB
    assert per_core_storage_bytes() == pytest.approx(1.875 * 1024)


def test_fraction_of_l1_is_5_86_percent():
    assert per_core_storage_fraction_of_l1() == pytest.approx(0.0586, abs=5e-4)


def test_energy_bound_below_3_joules():
    # 0.5 * (0.150 + 0.163) nJ * 16 cores * 1.2 GHz ≈ 3 J
    e = cmp_energy_bound_joules()
    assert e == pytest.approx(3.0, rel=0.01)
    # ~1.2% of the Rock processor's 250 W
    assert e / 250 == pytest.approx(0.012, abs=2e-3)


def test_area_matches_paper():
    # 0.5 * 16 * 0.282 = 2.256 mm², ~0.6% of Rock's 396 mm²
    a = cmp_table_area_mm2()
    assert a == pytest.approx(2.256, abs=1e-3)
    assert a / 396 == pytest.approx(0.006, abs=1e-3)


def test_report_has_all_figures():
    rep = suv_overhead_report()
    assert rep["per_core_kb"] == pytest.approx(1.875)
    assert rep["fraction_of_l1"] == pytest.approx(0.0586, abs=5e-4)
    assert rep["cmp_energy_joules_per_s"] < 3.01
    assert rep["cmp_area_mm2"] == pytest.approx(2.256, abs=1e-3)
    assert rep["area_fraction_of_rock"] < 0.01
    assert rep["energy_fraction_of_rock_tdp"] < 0.02


def test_storage_scales_with_config():
    small = RedirectConfig(l1_entries=128)
    assert per_core_storage_bytes(small) < per_core_storage_bytes()


def test_energy_scales_with_cores():
    big = SimConfig(n_cores=32)
    assert cmp_energy_bound_joules(big) > cmp_energy_bound_joules()
