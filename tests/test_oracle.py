"""Tests for the atomicity oracle (serial replay + quiescence)."""

import pytest

from repro.config import SimConfig
from repro.errors import OracleViolation
from repro.htm.vm.base import available_schemes
from repro.oracle import OracleRecorder, check_run
from repro.simulator import Simulator
from repro.workloads import make_workload


def run_checked(scheme="suv", workload="synthetic", seed=5, cores=4):
    program = make_workload(workload, n_threads=cores, seed=seed, scale="tiny")
    sim = Simulator(SimConfig(n_cores=cores), scheme=scheme, seed=seed,
                    oracle=True)
    result = sim.run(program.threads)
    return sim, result, program


# ----------------------------------------------------------------------
# happy path: every scheme passes on a real run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", sorted(available_schemes()))
def test_all_schemes_pass(scheme):
    sim, res, program = run_checked(scheme=scheme)
    report = sim.oracle.verify()
    assert report["passed"]
    assert report["failures"] == []
    assert report["entries"] > 0
    assert report["outer_commits"] == sim.tx_attempts - report["outer_aborts"]
    program.verify(res.memory)


def test_report_counts_reads():
    sim, _, _ = run_checked()
    report = sim.oracle.verify()
    assert report["reads_checked"] > 0
    assert report["relaxed_reads"] is False


def test_check_run_helper():
    sim, _, _ = run_checked()
    assert check_run(sim)["passed"]


def test_check_run_requires_recorder():
    program = make_workload("synthetic", n_threads=2, seed=1, scale="tiny")
    sim = Simulator(SimConfig(n_cores=2), scheme="suv", seed=1)
    sim.run(program.threads)
    with pytest.raises(ValueError, match="without an oracle"):
        check_run(sim)


def test_verify_requires_attach():
    with pytest.raises(ValueError, match="never attached"):
        OracleRecorder().verify()


# ----------------------------------------------------------------------
# the oracle actually catches fabricated violations
# ----------------------------------------------------------------------
def test_detects_lost_update():
    sim, _, _ = run_checked()
    # corrupt final memory behind the oracle's back: a lost update
    addr = next(iter(sim.memory.snapshot()))
    sim.memory.store(addr, sim.memory.load(addr) + 999)
    with pytest.raises(OracleViolation) as exc:
        sim.oracle.verify()
    report = exc.value.report
    assert not report["passed"]
    assert any("final state diverged" in f for f in report["failures"])


def test_detects_dirty_read():
    sim, _, _ = run_checked()
    # fabricate a committed transaction that read a value no serial
    # order can produce (as if it observed an aborted write)
    sim.oracle.log.insert(0, {
        "kind": "tx", "core": 0, "site": "fake", "cycle": 1,
        "ops": [("r", 0xdead0, 12345)],
    })
    report = sim.oracle.verify(raise_on_failure=False)
    assert not report["passed"]
    assert any("serial replay diverged" in f for f in report["failures"])


def test_detects_resurrected_write():
    sim, _, _ = run_checked()
    # a write that never reached memory: replay produces it, memory lacks it
    sim.oracle.log.append({
        "kind": "tx", "core": 0, "site": "fake", "cycle": 10**9,
        "ops": [("w", 0xbeef00, 7)],
    })
    report = sim.oracle.verify(raise_on_failure=False)
    assert any("final state diverged at 0xbeef00" in f
               for f in report["failures"])


def test_detects_counter_mismatch():
    sim, _, _ = run_checked()
    sim.commits += 1
    report = sim.oracle.verify(raise_on_failure=False)
    assert any("commit accounting" in f for f in report["failures"])
    sim.commits -= 1
    sim.tx_attempts += 2
    report = sim.oracle.verify(raise_on_failure=False)
    assert any("attempt accounting" in f for f in report["failures"])


def test_detects_leaked_pool_line():
    sim, _, _ = run_checked(scheme="suv")
    # allocate a line after the run: live but referenced by no entry
    sim.scheme.pool.allocate_line()
    report = sim.oracle.verify(raise_on_failure=False)
    assert any("leak" in f for f in report["failures"])


def test_detects_pool_ledger_break():
    sim, _, _ = run_checked(scheme="suv")
    sim.scheme.pool.allocations += 5
    report = sim.oracle.verify(raise_on_failure=False)
    assert any("ledger" in f for f in report["failures"])


def test_failures_capped():
    sim, _, _ = run_checked()
    for i in range(100):
        sim.oracle.log.append({
            "kind": "tx", "core": 0, "site": "fake", "cycle": 10**9,
            "ops": [("w", 0xf0000 + i * 64, 1)],
        })
    report = sim.oracle.verify(raise_on_failure=False)
    assert len(report["failures"]) == 25


def test_read_your_own_writes_not_flagged():
    rec = OracleRecorder()

    class _FakeMem:
        @staticmethod
        def snapshot():
            return {0x40: 2}

    class _FakeSim:
        memory = _FakeMem()
        tx_attempts = 1
        commits = 1
        aborts = 0

        class scheme:
            pass

    rec.attach(_FakeSim())
    rec.outer_commits = 1
    rec.log.append({
        "kind": "tx", "core": 0, "site": "s", "cycle": 1,
        "ops": [("w", 0x40, 2), ("r", 0x40, 2)],  # reads its own write
    })
    assert rec.verify()["passed"]


# ----------------------------------------------------------------------
# oracle + runner integration
# ----------------------------------------------------------------------
def test_execute_spec_attaches_report():
    from repro.runner import ExperimentSpec, execute_spec

    spec = ExperimentSpec("synthetic", scheme="suv", cores=4,
                          scale="tiny", seed=5, check=True)
    result = execute_spec(spec)
    assert result.oracle is not None
    assert result.oracle["passed"]


def test_oracle_report_survives_json():
    from repro.simulator import SimResult

    sim, res, _ = run_checked()
    res.oracle = sim.oracle.verify()
    again = SimResult.from_json(res.to_json())
    assert again.oracle == res.oracle
