"""Unit tests for the ASCII chart renderers."""

import pytest

from repro.stats.breakdown import Breakdown
from repro.stats.charts import breakdown_chart, line_plot, stacked_bar


def bd(**kw):
    b = Breakdown()
    for k, v in kw.items():
        b.add(k, v)
    return b


def test_stacked_bar_width_matches_share():
    b = bd(Trans=50, Stalled=50)
    bar = stacked_bar(b, baseline_total=100, width=60)
    assert len(bar) == 60
    assert bar.count("#") == 30 and bar.count("s") == 30


def test_stacked_bar_shorter_than_baseline():
    b = bd(Trans=25)
    bar = stacked_bar(b, baseline_total=100, width=40)
    assert len(bar) == 10


def test_stacked_bar_rejects_bad_baseline():
    with pytest.raises(ValueError):
        stacked_bar(bd(Trans=1), 0)


def test_breakdown_chart_normalizes():
    chart = breakdown_chart({"L": bd(Trans=100), "S": bd(Trans=25)})
    lines = chart.splitlines()
    assert "1.00" in lines[0] and "0.25" in lines[1]
    assert "legend" in lines[-1]


def test_breakdown_chart_empty():
    assert breakdown_chart({}) == "(no results)"


def test_line_plot_contains_extremes():
    plot = line_plot([(1, 10.0), (2, 20.0), (4, 15.0)], title="t")
    assert plot.splitlines()[0] == "t"
    assert "20" in plot and "10" in plot
    assert plot.count("*") == 3


def test_line_plot_flat_series():
    plot = line_plot([(1, 5.0), (2, 5.0)])
    assert plot.count("*") >= 1


def test_line_plot_empty():
    assert line_plot([]) == "(no data)"


def test_charts_from_live_results_smoke():
    """End-to-end: simulate two schemes, render every chart type."""
    from repro.config import SimConfig
    from repro.htm.ops import Tx, Write
    from repro.simulator import Simulator

    def thread():
        def body():
            yield Write(0x100, 5)
        yield Tx(body)

    results = {
        scheme: Simulator(SimConfig(n_cores=2), scheme=scheme).run([thread])
        for scheme in ("logtm-se", "suv")
    }
    chart = breakdown_chart({k: r.breakdown for k, r in results.items()})
    assert "logtm-se" in chart and "suv" in chart and "legend" in chart
    series = [(i, float(r.total_cycles))
              for i, r in enumerate(results.values())]
    assert "*" in line_plot(series, title="cycles")
    for res in results.values():
        bar = stacked_bar(res.breakdown,
                          baseline_total=max(r.total for r in
                                             (x.breakdown for x in
                                              results.values())))
        assert bar
