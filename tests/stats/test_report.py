"""Unit tests for the ASCII table renderers."""

from repro.stats.breakdown import Breakdown
from repro.stats.report import format_breakdown_table, format_table


def test_format_table_alignment():
    out = format_table(["a", "long-header"], [[1, 2], [333, 4]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(l) == len(lines[0]) for l in lines[1:])


def test_format_table_title():
    out = format_table(["x"], [[1]], title="hello")
    assert out.splitlines()[0] == "hello"


def test_format_table_floats_rounded():
    out = format_table(["v"], [[0.123456]])
    assert "0.123" in out and "0.123456" not in out


def test_format_table_empty_rows():
    out = format_table(["only", "headers"], [])
    assert "only" in out


def test_breakdown_table_normalizes_to_first():
    a, b = Breakdown(), Breakdown()
    a.add("Trans", 100)
    b.add("Trans", 50)
    out = format_breakdown_table({"base": a, "half": b})
    assert "0.500" in out
    assert "1.000" in out


def test_breakdown_table_explicit_baseline():
    a, b = Breakdown(), Breakdown()
    a.add("Trans", 100)
    b.add("Trans", 50)
    out = format_breakdown_table({"a": a, "b": b}, baseline="b")
    assert "2.000" in out


def test_breakdown_table_empty():
    assert format_breakdown_table({}) == "(no results)"
