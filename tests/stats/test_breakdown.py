"""Unit tests for the execution-time breakdown."""

import pytest

from repro.stats.breakdown import COMPONENTS, Breakdown


def test_components_match_paper():
    assert COMPONENTS == (
        "NoTrans", "Trans", "Barrier", "Backoff", "Stalled", "Wasted",
        "Aborting", "Committing",
    )


def test_add_and_total():
    bd = Breakdown()
    bd.add("Trans", 100)
    bd.add("Stalled", 50)
    assert bd.total == 150
    assert bd.cycles["Trans"] == 100


def test_unknown_component_rejected():
    with pytest.raises(KeyError):
        Breakdown().add("Mystery", 1)


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        Breakdown().add("Trans", -5)


def test_overhead_excludes_useful_components():
    bd = Breakdown()
    bd.add("NoTrans", 10)
    bd.add("Trans", 20)
    bd.add("Barrier", 5)
    bd.add("Wasted", 7)
    bd.add("Aborting", 3)
    assert bd.overhead == 10


def test_fraction():
    bd = Breakdown()
    bd.add("Trans", 75)
    bd.add("Stalled", 25)
    assert bd.fraction("Trans") == 0.75
    assert Breakdown().fraction("Trans") == 0.0


def test_normalized_to_baseline():
    bd = Breakdown()
    bd.add("Trans", 50)
    norm = bd.normalized_to(200)
    assert norm["Trans"] == 0.25
    with pytest.raises(ValueError):
        bd.normalized_to(0)


def test_merge():
    a, b = Breakdown(), Breakdown()
    a.add("Trans", 1)
    b.add("Trans", 2)
    b.add("Backoff", 3)
    a.merge(b)
    assert a.cycles["Trans"] == 3 and a.cycles["Backoff"] == 3


def test_repr_mentions_nonzero_components():
    bd = Breakdown()
    bd.add("Wasted", 9)
    assert "Wasted=9" in repr(bd)
    assert repr(Breakdown()) == "Breakdown(empty)"
