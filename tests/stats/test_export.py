"""Tests for the JSON exporter."""

import json

from repro.config import SimConfig
from repro.htm.ops import Tx, Write
from repro.simulator import Simulator
from repro.stats.export import result_to_dict, results_to_json


def small_result(**sim_kwargs):
    def thread():
        def body():
            yield Write(0x100, 5)
        yield Tx(body)

    return Simulator(
        SimConfig(n_cores=2), scheme="suv", **sim_kwargs
    ).run([thread])


def test_result_roundtrips_through_json():
    res = small_result()
    blob = json.loads(results_to_json({"suv": res}))
    assert blob["suv"]["commits"] == 1
    assert blob["suv"]["breakdown"]["Trans"] > 0
    assert blob["suv"]["scheme"] == "suv"


def test_memory_excluded_by_default():
    d = result_to_dict(small_result())
    assert "memory" not in d


def test_memory_included_on_request():
    d = result_to_dict(small_result(), include_memory=True)
    assert d["memory"][str(0x100)] == 5


def test_stats_are_floats():
    d = result_to_dict(small_result())
    assert all(isinstance(v, float) for v in d["scheme_stats"].values())


def test_simresult_json_roundtrip():
    from repro.simulator import SimResult

    res = small_result()
    again = SimResult.from_json(res.to_json())
    assert again.total_cycles == res.total_cycles
    assert again.commits == res.commits and again.aborts == res.aborts
    assert again.breakdown.as_dict() == res.breakdown.as_dict()
    assert again.scheme_stats == {k: float(v)
                                  for k, v in res.scheme_stats.items()}
    assert again.memory == res.memory
    assert again.per_core == res.per_core
    # serialization is canonical: a round-trip is a fixed point
    assert again.to_json() == SimResult.from_json(again.to_json()).to_json()


def test_phase_breakdown_exported():
    d = result_to_dict(small_result(trace=True))
    iso = d["phase_breakdown"]["isolation"]
    assert iso["windows"] == 1 and iso["committed"] == 1
    assert d["phase_breakdown"]["events"]["recorded"] > 0
    # the export is pure JSON
    assert json.loads(json.dumps(d))["phase_breakdown"] == d["phase_breakdown"]


def test_phase_breakdown_roundtrips_with_result():
    from repro.simulator import SimResult

    res = small_result(trace=True)
    again = SimResult.from_json(res.to_json())
    assert again.phase_breakdown == res.phase_breakdown
    assert again.phase_breakdown["latency"]["commit"]["count"] == 1


def test_legacy_result_json_defaults_to_empty_phase_breakdown():
    from repro.simulator import SimResult

    res = small_result()
    blob = json.loads(res.to_json())
    blob.pop("phase_breakdown", None)
    again = SimResult.from_json(json.dumps(blob))
    assert again.phase_breakdown == {}
