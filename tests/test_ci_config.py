"""CI configuration invariants, enforced from the test suite.

The workflows can't run here, but their load-bearing properties are
plain text: exact action pins (one version per action, registered in
the setup-repro composite), concurrency cancellation, artifact uploads
that survive failed gates, the Python matrix, and the study jobs.
Textual assertions keep a drive-by workflow edit from silently
unpinning an action or dropping the determinism gate.
"""

import re
from pathlib import Path

GITHUB = Path(__file__).resolve().parent.parent / ".github"
CI = GITHUB / "workflows" / "ci.yml"
NIGHTLY = GITHUB / "workflows" / "nightly-study.yml"
SETUP = GITHUB / "actions" / "setup-repro" / "action.yml"

#: exact semver tag, e.g. ``actions/checkout@v4.2.2``
EXACT = re.compile(r"^v\d+\.\d+\.\d+$")
USES = re.compile(r"uses:\s*(\S+)")


def all_yaml_files():
    return sorted(GITHUB.rglob("*.yml"))


def action_refs():
    """Every third-party ``uses:`` reference across all CI yaml."""
    refs = []
    for path in all_yaml_files():
        for line in path.read_text().splitlines():
            match = USES.search(line)
            if match and not match.group(1).startswith("./"):
                refs.append((path.name, match.group(1)))
    return refs


def test_every_action_is_pinned_to_an_exact_version():
    assert action_refs(), "no action references found — wrong path?"
    for filename, ref in action_refs():
        name, _, version = ref.partition("@")
        assert EXACT.match(version), (
            f"{filename}: {ref} is not pinned to an exact version "
            f"(expected {name}@vX.Y.Z)"
        )


def test_each_action_has_exactly_one_version_everywhere():
    by_action: dict[str, set[str]] = {}
    for _filename, ref in action_refs():
        name, _, version = ref.partition("@")
        by_action.setdefault(name, set()).add(version)
    drifted = {n: sorted(v) for n, v in by_action.items() if len(v) > 1}
    assert not drifted, f"action versions drifted across workflows: {drifted}"


def test_setup_repro_composite_is_the_pin_registry():
    # the composite's description must list every pinned action at the
    # version the workflows actually use — one human-auditable place
    registry = SETUP.read_text()
    pins = {ref.partition("@")[0]: ref.partition("@")[2]
            for _filename, ref in action_refs()}
    for name, version in sorted(pins.items()):
        short = name.split("/")[-1]
        assert re.search(rf"{short}\s+{re.escape(version)}", registry), (
            f"setup-repro registry is missing {name} {version}"
        )


def test_ci_cancels_superseded_runs():
    text = CI.read_text()
    assert "concurrency:" in text
    assert "cancel-in-progress: true" in text


def test_ci_python_matrix_includes_313():
    matrix = re.search(r"python-version:\s*\[([^\]]+)\]", CI.read_text())
    assert matrix, "tests job lost its python-version matrix"
    versions = [v.strip().strip('"') for v in matrix.group(1).split(",")]
    assert versions == ["3.11", "3.12", "3.13"]


def test_artifact_uploads_survive_failed_gates():
    # every upload-artifact step needs `if: always()` — a failing gate
    # is exactly when the artifact matters
    for path in (CI, NIGHTLY):
        steps = path.read_text().split("- name:")
        for step in steps:
            if "upload-artifact" in step:
                assert "if: always()" in step, (
                    f"{path.name}: an upload-artifact step is missing "
                    "`if: always()`"
                )


def test_ci_has_the_study_smoke_determinism_gate():
    text = CI.read_text()
    assert "study-smoke:" in text
    assert "study --workloads starve,ssca2" in text
    assert "study compare" in text


def test_nightly_study_is_scheduled_and_dispatchable():
    text = NIGHTLY.read_text()
    assert "schedule:" in text and re.search(r"cron:\s*\"", text)
    assert "workflow_dispatch:" in text
    assert "python -m repro study" in text
    assert "--resume" in text  # crash-safe: journal-backed campaign
