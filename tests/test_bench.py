"""Tests for the host-performance benchmark and its regression gate."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    FIDELITY_KEYS,
    bench_specs,
    compare,
    load_bench,
    run_bench,
    write_bench,
)
from repro.cli import main


@pytest.fixture(scope="module")
def bench_doc():
    # synthetic-only keeps the module fast; the pinned matrix itself is
    # covered by bench_specs() assertions below
    doc = run_bench(scale="tiny", calibration=False)
    return doc


def fake_doc(entries):
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "scale": "tiny",
        "calibration_s": None,
        "provenance": {},
        "entries": entries,
    }


def entry(label="a", cycles=100, wall=1.0, **extra):
    row = {
        "label": label,
        "total_cycles": cycles,
        "commits": 10,
        "aborts": 2,
        "wall_s": wall,
        "phase_breakdown": {"isolation": {"windows": 12}},
    }
    row.update(extra)
    return row


def test_pinned_matrix_shape():
    specs = bench_specs()
    assert len(specs) == 6
    assert {s.scheme for s in specs} == {"logtm-se", "fastm", "suv"}
    assert all(s.seed == 3 and s.cores == 4 and s.scale == "tiny"
               for s in specs)


def test_bench_document_schema(bench_doc):
    assert bench_doc["schema_version"] == BENCH_SCHEMA_VERSION
    assert bench_doc["provenance"]["python"]
    assert len(bench_doc["entries"]) == 6
    for e in bench_doc["entries"]:
        for key in FIDELITY_KEYS:
            assert key in e
        assert e["wall_s"] > 0
        assert e["events_per_s"] > 0
        assert e["txs_per_s"] > 0
        assert e["phase_breakdown"]["isolation"]["windows"] > 0


def test_bench_write_load_roundtrip(bench_doc, tmp_path):
    path = write_bench(bench_doc, tmp_path, date="2026-01-01")
    assert path.name == "BENCH_2026-01-01.json"
    assert load_bench(path) == bench_doc


def test_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({"schema_version": 999, "entries": []}))
    with pytest.raises(ValueError, match="schema_version"):
        load_bench(path)


def test_compare_identical_passes():
    doc = fake_doc([entry()])
    assert compare(doc, doc) == []


def test_compare_flags_2x_wall_regression():
    base = fake_doc([entry(wall=1.0)])
    slow = fake_doc([entry(wall=2.0)])
    problems = compare(base, slow)
    assert len(problems) == 1 and "wall time regressed" in problems[0]
    # faster is never a problem
    assert compare(slow, base) == []


def test_compare_wall_threshold_configurable():
    base = fake_doc([entry(wall=1.0)])
    slower = fake_doc([entry(wall=1.4)])
    assert compare(base, slower, wall_threshold=0.5) == []
    assert compare(base, slower, wall_threshold=0.25) != []


def test_compare_fidelity_is_exact():
    base = fake_doc([entry(cycles=100)])
    drift = fake_doc([entry(cycles=101)])
    problems = compare(base, drift)
    assert any("total_cycles" in p for p in problems)


def test_compare_flags_isolation_accounting_drift():
    base = fake_doc([entry()])
    cur = fake_doc([entry()])
    cur["entries"][0]["phase_breakdown"]["isolation"]["windows"] = 13
    problems = compare(base, cur)
    assert any("isolation-window" in p for p in problems)


def test_compare_flags_missing_entries():
    base = fake_doc([entry("a"), entry("b")])
    cur = fake_doc([entry("a"), entry("c")])
    problems = compare(base, cur)
    assert any("b: missing from current" in p for p in problems)
    assert any("c: missing from baseline" in p for p in problems)


def test_compare_normalizes_by_calibration():
    base = fake_doc([entry(wall=1.0)])
    base["calibration_s"] = 0.1
    # twice the raw wall time on a host twice as slow: not a regression
    cur = fake_doc([entry(wall=2.0)])
    cur["calibration_s"] = 0.2
    assert compare(base, cur) == []


def test_cli_compare_bench_gate(bench_doc, tmp_path):
    base = write_bench(bench_doc, tmp_path, date="base")
    ok = json.loads(base.read_text())
    cur = write_bench(ok, tmp_path, date="same")
    assert main(["compare-bench", str(base), str(cur)]) == 0

    slow = json.loads(base.read_text())
    for e in slow["entries"]:
        e["wall_s"] *= 2.0
    slow_path = tmp_path / "BENCH_slow.json"
    slow_path.write_text(json.dumps(slow))
    assert main(["compare-bench", str(base), str(slow_path)]) == 1
    assert main(["compare-bench", str(base), str(slow_path),
                 "--wall-threshold", "1.5"]) == 0


def test_cli_bench_writes_file(tmp_path, capsys):
    rc = main(["bench", "--scale", "tiny", "--out", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    files = list(tmp_path.glob("BENCH_*.json"))
    assert len(files) == 1
    assert "Isolation windows" in out
    doc = load_bench(files[0])
    assert doc["provenance"]["python"]
