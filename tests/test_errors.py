"""Tests for the structured error hierarchy."""

import pytest

from repro.config import SimConfig
from repro.core.preserved_pool import PreservedPool
from repro.errors import (
    BudgetExhausted,
    CampaignJournalError,
    DeadlockError,
    InvariantViolation,
    OracleViolation,
    PoolExhausted,
    ReproError,
    RetryBudgetExhausted,
    SimulationError,
    TransactionError,
    format_wait_graph,
)
from repro.htm.ops import Barrier, Work
from repro.simulator import Simulator


# ----------------------------------------------------------------------
# hierarchy: typed errors stay catchable the old way
# ----------------------------------------------------------------------
def test_simulation_errors_are_runtime_errors():
    for cls in (SimulationError, TransactionError, DeadlockError,
                BudgetExhausted):
        assert issubclass(cls, RuntimeError)
        assert issubclass(cls, ReproError)


def test_assertion_flavoured_errors():
    assert issubclass(InvariantViolation, AssertionError)
    assert issubclass(OracleViolation, AssertionError)
    assert issubclass(PoolExhausted, RuntimeError)


def test_campaign_errors_are_runtime_errors():
    for cls in (RetryBudgetExhausted, CampaignJournalError):
        assert issubclass(cls, RuntimeError)
        assert issubclass(cls, ReproError)


def test_retry_budget_exhausted_renders_context():
    err = RetryBudgetExhausted(
        "retry budget exhausted", spec_label="ssca2/suv/s3",
        attempts=3, last_error="RuntimeError: boom",
    )
    assert "ssca2/suv/s3" in str(err)
    assert "attempts=3" in str(err)
    assert "RuntimeError: boom" in str(err)
    assert err.attempts == 3 and err.last_error == "RuntimeError: boom"


def test_campaign_journal_error_carries_path():
    err = CampaignJournalError("corrupt record", path="/tmp/c.journal")
    assert "journal=/tmp/c.journal" in str(err)
    assert err.path == "/tmp/c.journal"


# ----------------------------------------------------------------------
# context rendering
# ----------------------------------------------------------------------
def test_context_rendered_into_message():
    err = SimulationError("boom", cycle=120, core=3, site=7)
    assert "cycle=120" in str(err)
    assert "core=3" in str(err)
    assert err.cycle == 120
    assert err.core == 3


def test_none_context_dropped():
    err = SimulationError("boom", cycle=None, core=1)
    assert "cycle" not in str(err)
    assert err.cycle is None


def test_pool_exhausted_carries_fields():
    err = PoolExhausted("full", max_pages=2, live_lines=17)
    assert err.max_pages == 2
    assert err.live_lines == 17


def test_oracle_violation_embeds_failures():
    err = OracleViolation("failed", report={
        "passed": False,
        "failures": ["lost update at 0x40", "leaked pool line"],
    })
    assert "lost update at 0x40" in str(err)
    assert err.report["passed"] is False


def test_format_wait_graph():
    text = format_wait_graph([
        {"core": 0, "status": "stalled", "tid": 0, "site": 3,
         "waiting_on": 1},
        {"core": None, "status": "parked", "tid": 2, "parked": True,
         "park_reason": "barrier 0"},
    ])
    assert "core 0: stalled" in text
    assert "-> core 1" in text
    assert "barrier 0" in text


# ----------------------------------------------------------------------
# the simulator raises them for real
# ----------------------------------------------------------------------
def test_barrier_mismatch_raises_deadlock_with_graph():
    def waiter():
        yield Barrier(0)

    def defector():
        yield Work(10)
        yield Barrier(1)  # waits on a different barrier forever

    sim = Simulator(SimConfig(n_cores=2), scheme="suv", seed=1)
    with pytest.raises(DeadlockError) as exc:
        sim.run([waiter, defector])
    err = exc.value
    assert err.wait_graph  # the dump rode along
    assert "wait-for graph" in str(err)
    assert err.context["laggards"]


def test_pool_cap_raises_typed_error_outside_tx():
    pool = PreservedPool(1 << 40, page_bytes=128, max_pages=1)
    for _ in range(128 // 64):
        pool.allocate_line()
    with pytest.raises(PoolExhausted) as exc:
        pool.allocate_line()
    assert exc.value.max_pages == 1
    assert exc.value.live_lines == 2
