"""Tests for the literature-data constants (Tables I and VI)."""

from repro.data import ABORT_RATIO_STUDIES, PROCESSORS, ROCK


def test_table_one_has_nine_studies():
    assert len(ABORT_RATIO_STUDIES) == 9


def test_abort_ratios_are_fractions():
    for s in ABORT_RATIO_STUDIES:
        assert 0 < s.abort_ratio_max < 1


def test_high_abort_studies_present():
    by_name = {s.study: s for s in ABORT_RATIO_STUDIES}
    assert by_name["LiteTM"].abort_ratio_max == 0.794
    assert by_name["SBCR-HTM"].abort_ratio_max == 0.759
    assert by_name["LogTM"].abort_ratio_max == 0.15


def test_table_six_processors():
    assert len(PROCESSORS) == 3
    assert ROCK.cores == 16 and ROCK.tdp_w == 250 and ROCK.area_mm2 == 396
    names = [p.name for p in PROCESSORS]
    assert "UltraSPARC T1" in names and "UltraSPARC T2" in names
