"""Property tests for the mvsuv version chain.

A reference model keeps the *full* committed history of one line
(every publication's post-state), so the three chain-read verdicts can
be checked exactly under arbitrary interleavings of publications,
global GC, and lost-version notes:

* ``("chain", v)`` must equal the newest committed value at or before
  the snapshot;
* ``("memory", None)`` is a proof that current memory still holds the
  snapshot value — so the model's current value must equal the model's
  snapshot value;
* ``("exhausted", None)`` makes no value claim, but may only happen
  when the line's trimmed floor actually passed the snapshot.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.version_chain import VersionChain

import pytest

LINE = 0x40
ADDRS = tuple(LINE + 8 * i for i in range(4))


class ChainModel:
    """Full-history reference the bounded chain is checked against."""

    def __init__(self, versions_k: int):
        self.chain = VersionChain(versions_k)
        self.k = versions_k
        self.seq = 0
        self.current: dict[int, int] = {}           # committed memory
        self.history: dict[int, list[tuple[int, int]]] = {}
        self.next_pin = 0
        self.pins_given: set[int] = set()
        self.pins_freed: set[int] = set()
        self.next_value = 1

    def value_at(self, addr: int, snap: int) -> int:
        """Newest committed value of ``addr`` at publication ``snap``."""
        value = 0
        for seq, committed in self.history.get(addr, ()):
            if seq > snap:
                break
            value = committed
        return value

    # -- operations ----------------------------------------------------
    def publish(self, which: list[int], lost: bool) -> None:
        self.seq += 1
        pre = {ADDRS[i]: self.current.get(ADDRS[i], 0) for i in which}
        if lost:
            self.pins_freed.update(self.chain.note_lost(LINE, self.seq))
        else:
            pin = self.next_pin
            self.next_pin += 1
            self.pins_given.add(pin)
            self.pins_freed.update(
                self.chain.record(LINE, self.seq, self.seq, pre, pin)
            )
        for i in which:
            value = self.next_value
            self.next_value += 1
            self.current[ADDRS[i]] = value
            self.history.setdefault(ADDRS[i], []).append((self.seq, value))

    def gc(self, n: int) -> None:
        self.pins_freed.update(self.chain.evict_oldest(n))

    # -- invariants ----------------------------------------------------
    def check_structure(self) -> None:
        records = self.chain.chain_of(LINE)
        assert len(records) <= self.k
        seqs = [rec.seq for rec in records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        floor = self.chain.floor_of(LINE)
        assert all(rec.seq > floor for rec in records)
        # pin conservation: every pin ever handed out is either still
        # retained by a record or was reported freed — never both
        live = self.chain.pool_lines()
        assert live.isdisjoint(self.pins_freed)
        assert live | self.pins_freed == self.pins_given

    def check_reads(self) -> None:
        for addr in ADDRS:
            for snap in range(self.seq + 1):
                verdict, value = self.chain.read(LINE, addr, snap)
                expected = self.value_at(addr, snap)
                if verdict == "chain":
                    assert value == expected
                elif verdict == "memory":
                    assert self.current.get(addr, 0) == expected
                else:
                    assert verdict == "exhausted"
                    assert self.chain.floor_of(LINE) > snap
        # the newest snapshot never exhausts: nothing newer was trimmed
        verdict, _ = self.chain.read(LINE, ADDRS[0], self.seq)
        assert verdict != "exhausted"


_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("publish"),
            st.lists(st.integers(0, len(ADDRS) - 1), min_size=1,
                     max_size=len(ADDRS), unique=True),
            st.booleans(),
        ),
        st.tuples(st.just("gc"), st.integers(1, 4)),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(versions_k=st.integers(1, 5), ops=_OPS)
def test_chain_reads_match_full_history_model(versions_k, ops):
    model = ChainModel(versions_k)
    for op in ops:
        if op[0] == "publish":
            model.publish(op[1], op[2])
        else:
            model.gc(op[1])
        model.check_structure()
    model.check_reads()


@settings(max_examples=100, deadline=None)
@given(versions_k=st.integers(1, 4),
       n_publications=st.integers(1, 12))
def test_overflow_keeps_newest_k_and_raises_floor(versions_k, n_publications):
    model = ChainModel(versions_k)
    for _ in range(n_publications):
        model.publish([0], lost=False)
    records = model.chain.chain_of(LINE)
    assert len(records) == min(versions_k, n_publications)
    assert [rec.seq for rec in records] == list(
        range(n_publications - len(records) + 1, n_publications + 1)
    )
    if n_publications > versions_k:
        assert model.chain.floor_of(LINE) == n_publications - versions_k
    model.check_structure()
    model.check_reads()


def test_record_rejects_non_increasing_seq():
    chain = VersionChain(4)
    chain.record(LINE, 3, 3, {LINE: 0}, None)
    with pytest.raises(ValueError, match="must increase"):
        chain.record(LINE, 3, 4, {LINE: 1}, None)


def test_versions_k_must_be_positive():
    with pytest.raises(ValueError, match="versions_k"):
        VersionChain(0)


def test_note_lost_drops_stale_records_and_frees_pins():
    chain = VersionChain(4)
    chain.record(LINE, 1, 1, {LINE: 0}, 100)
    chain.record(LINE, 2, 2, {LINE: 1}, 101)
    chain.record(LINE, 3, 3, {LINE: 2}, 102)
    freed = chain.note_lost(LINE, 2)
    assert sorted(freed) == [100, 101]
    assert chain.floor_of(LINE) == 2
    assert [rec.seq for rec in chain.chain_of(LINE)] == [3]
    assert chain.read(LINE, LINE, 1) == ("exhausted", None)
    assert chain.read(LINE, LINE, 2) == ("chain", 2)
