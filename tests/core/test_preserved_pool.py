"""Unit tests for the preserved redirect pool."""

import pytest

from repro.config import LINE_BYTES
from repro.core.preserved_pool import PreservedPool


def make_pool(page_bytes=8192, base=1 << 40):
    return PreservedPool(base, page_bytes)


def test_base_must_be_page_aligned():
    with pytest.raises(ValueError):
        PreservedPool((1 << 40) + 64, 8192)


def test_page_must_hold_whole_lines():
    with pytest.raises(ValueError):
        PreservedPool(1 << 40, 100)


def test_lines_are_sequential_from_base():
    pool = make_pool()
    a = pool.allocate_line()
    b = pool.allocate_line()
    assert a == (1 << 40) // LINE_BYTES
    assert b == a + 1


def test_page_allocated_on_demand():
    pool = make_pool(page_bytes=8192)
    per_page = 8192 // LINE_BYTES
    assert pool.pages_allocated == 0
    for _ in range(per_page):
        pool.allocate_line()
    assert pool.pages_allocated == 1
    pool.allocate_line()
    assert pool.pages_allocated == 2


def test_freed_lines_are_recycled_without_new_pages():
    pool = make_pool()
    a = pool.allocate_line()
    pages = pool.pages_allocated
    pool.free_line(a)
    assert pool.allocate_line() == a
    assert pool.pages_allocated == pages


def test_free_rejects_foreign_lines():
    pool = make_pool()
    with pytest.raises(ValueError):
        pool.free_line(123)


def test_contains_line():
    pool = make_pool()
    a = pool.allocate_line()
    assert pool.contains_line(a)
    assert not pool.contains_line(a + 1000)


def test_tlb_index_and_offset_roundtrip():
    pool = make_pool(page_bytes=8192)
    per_page = 8192 // LINE_BYTES
    lines = [pool.allocate_line() for _ in range(per_page + 3)]
    assert pool.tlb_index_of(lines[0]) == 0
    assert pool.tlb_index_of(lines[per_page]) == 1
    assert pool.page_offset_of(lines[0]) == 0
    assert pool.page_offset_of(lines[per_page + 2]) == 2
    # in-page offset fits the 7-bit field of the Figure 3 encoding
    assert all(pool.page_offset_of(ln) < (1 << 7) for ln in lines)


def test_live_lines_accounting():
    pool = make_pool()
    a = pool.allocate_line()
    b = pool.allocate_line()
    assert pool.live_lines == 2
    pool.free_line(a)
    assert pool.live_lines == 1
    assert pool.allocations == 2 and pool.frees == 1


# ----------------------------------------------------------------------
# bounded pool (robustness harness)
# ----------------------------------------------------------------------
def test_unbounded_by_default():
    pool = make_pool(page_bytes=128)
    for _ in range(100):  # many pages, no cap
        pool.allocate_line()
    assert pool.pages_allocated == 100 * LINE_BYTES // 128
    assert pool.exhaustions == 0


def test_cap_raises_typed_exhaustion():
    from repro.errors import PoolExhausted

    pool = PreservedPool(1 << 40, page_bytes=128, max_pages=2)
    per_page = 128 // LINE_BYTES
    for _ in range(2 * per_page):
        pool.allocate_line()
    with pytest.raises(PoolExhausted) as exc:
        pool.allocate_line()
    assert exc.value.max_pages == 2
    assert exc.value.live_lines == 2 * per_page
    assert pool.exhaustions == 1


def test_cap_recycles_freed_lines():
    from repro.errors import PoolExhausted

    pool = PreservedPool(1 << 40, page_bytes=128, max_pages=1)
    per_page = 128 // LINE_BYTES
    lines = [pool.allocate_line() for _ in range(per_page)]
    with pytest.raises(PoolExhausted):
        pool.allocate_line()
    pool.free_line(lines[0])
    assert pool.allocate_line() == lines[0]  # recycled, no new page
    assert pool.pages_allocated == 1


def test_cap_installable_mid_run():
    # the pool_cap fault freezes the pool at its current size
    pool = make_pool(page_bytes=128)
    pool.allocate_line()
    pool.max_pages = max(1, pool.pages_allocated)
    per_page = 128 // LINE_BYTES
    from repro.errors import PoolExhausted

    for _ in range(per_page - 1):
        pool.allocate_line()
    with pytest.raises(PoolExhausted):
        pool.allocate_line()


def test_double_free_rejected():
    pool = make_pool()
    a = pool.allocate_line()
    pool.free_line(a)
    with pytest.raises(ValueError, match="double free"):
        pool.free_line(a)


def test_contains_line_false_after_free():
    pool = make_pool()
    a = pool.allocate_line()
    pool.free_line(a)
    assert not pool.contains_line(a)


def test_high_water_tracks_peak():
    pool = make_pool()
    lines = [pool.allocate_line() for _ in range(5)]
    for ln in lines:
        pool.free_line(ln)
    assert pool.live_lines == 0
    assert pool.high_water == 5
    pool.allocate_line()
    assert pool.high_water == 5  # peak, not current
