"""Placement behaviour of the two-level redirect table."""

from repro.config import RedirectConfig
from repro.core.redirect_entry import EntryState, RedirectEntry
from repro.core.redirect_table import RedirectTable


def table(l1=4, l2=8, ways=2, cores=3):
    return RedirectTable(cores, RedirectConfig(
        l1_entries=l1, l2_entries=l2, l2_ways=ways))


def valid(orig):
    return RedirectEntry(orig, orig + 5000, state=EntryState.VALID)


def test_insert_homes_in_l2_and_caches_in_l1():
    t = table()
    t.insert(0, valid(1))
    # visible to every core (L2 home), zero-latency only for core 0
    assert t.lookup(0, 1).level == "l1"
    assert t.lookup(1, 1).level == "l2"
    # and promoted: the second lookup by core 1 is an L1 hit
    assert t.lookup(1, 1).level == "l1"


def test_l1_eviction_does_not_lose_the_entry():
    t = table(l1=2)
    for i in range(5):
        t.insert(0, valid(i))
    for i in range(5):
        assert t.lookup(1, i).entry is not None


def test_memory_swap_back_rehomes_in_l2():
    t = table(l1=1, l2=1, ways=1)
    for i in range(3):
        t.insert(0, valid(i))
    assert t.memory_entries >= 1
    target = next(iter(t._mem))
    assert t.lookup(2, target).level == "mem"
    # after the software swap-in, the entry is back in hardware
    res = t.lookup(1, target)
    assert res.level in ("l1", "l2")


def test_iter_valid_lines_deduplicates():
    t = table()
    t.insert(0, valid(7))
    t.lookup(1, 7)   # cached in core 1's L1 too
    t.lookup(2, 7)
    lines = list(t.iter_valid_lines())
    assert lines.count(7) == 1


def test_iter_valid_lines_skips_transient_and_invalid():
    t = table()
    t.insert(0, valid(1))
    t.insert(0, RedirectEntry(2, 5002, state=EntryState.LOCAL_VALID, owner=0))
    dead = RedirectEntry(3, 5003, state=EntryState.INVALID)
    t.l1_tables[0].put(dead)
    assert set(t.iter_valid_lines()) == {1}


def test_stats_shape():
    t = table()
    t.insert(0, valid(9))
    t.lookup(0, 9)
    t.lookup(1, 10)
    s = t.stats()
    assert s["l1_hits"] == 1
    assert s["full_misses"] == 1
    assert 0 <= s["l1_miss_rate"] <= 1


# ----------------------------------------------------------------------
# Table III latencies along the L1 -> L2 -> memory spill path
# ----------------------------------------------------------------------
def test_l1_hit_is_zero_latency():
    cfg = RedirectConfig()
    t = RedirectTable(2, cfg)
    t.insert(0, valid(1))
    res = t.lookup(0, 1)
    assert res.level == "l1"
    assert res.latency == cfg.l1_latency == 0


def test_l2_hit_pays_l2_latency():
    cfg = RedirectConfig()
    t = RedirectTable(2, cfg)
    t.insert(0, valid(1))
    res = t.lookup(1, 1)  # core 1 has no L1 copy yet
    assert res.level == "l2"
    assert res.latency == cfg.l1_latency + cfg.l2_latency == 10


def test_mem_hit_pays_memory_plus_software():
    cfg = RedirectConfig(l1_entries=1, l2_entries=1, l2_ways=1)
    t = RedirectTable(3, cfg)
    for i in range(3):
        t.insert(0, valid(i))
    target = next(iter(t._mem))
    res = t.lookup(2, target)
    assert res.level == "mem"
    assert res.latency == (
        cfg.l1_latency + cfg.l2_latency
        + cfg.memory_latency + cfg.software_overhead
    )
    # Table III numbers: 0 + 10 + 150 + 40
    assert res.latency == 200


def test_full_miss_pays_the_probe_but_finds_nothing():
    cfg = RedirectConfig()
    t = RedirectTable(1, cfg)
    res = t.lookup(0, 999)
    assert res.entry is None
    assert res.level == "none"
    assert res.latency == cfg.l1_latency + cfg.l2_latency


# ----------------------------------------------------------------------
# squeeze() — the table_squeeze fault
# ----------------------------------------------------------------------
def test_squeeze_l1_demotes_to_l2():
    t = table(l1=4, cores=1)
    for i in range(4):
        t.insert(0, valid(i))
    before = t.stats()["l1_overflows"]
    demoted, spilled = t.squeeze(l1_entries=2)
    assert demoted == 2 and spilled == 0
    assert len(t.l1_tables[0]) == 2
    assert t.stats()["l1_overflows"] == before + 2
    # no entry lost: all four still resolvable
    for i in range(4):
        assert t.lookup(0, i).entry is not None


def test_squeeze_l2_spills_to_memory():
    t = table(l1=1, l2=8, ways=8, cores=1)
    for i in range(8):
        t.insert(0, valid(i * 8))  # same L2 set (orig % n_sets)
    demoted, spilled = t.squeeze(l2_ways=2)
    assert spilled > 0
    assert t.memory_entries == spilled
    assert t.stats()["l2_overflows"] >= spilled
    for i in range(8):
        assert t.lookup(0, i * 8).entry is not None


def test_squeeze_floors_at_one():
    t = table(l1=4, cores=1)
    t.insert(0, valid(1))
    t.squeeze(l1_entries=0, l2_ways=0)
    assert t.l1_tables[0].capacity == 1
    assert t.l2_table.ways == 1


def test_squeeze_then_growth_uses_new_capacity():
    t = table(l1=4, cores=1)
    t.squeeze(l1_entries=2)
    for i in range(4):
        t.insert(0, valid(i))
    assert len(t.l1_tables[0]) == 2  # new inserts respect the squeeze


# ----------------------------------------------------------------------
# iter_entries — the oracle's full-table walk
# ----------------------------------------------------------------------
def test_iter_entries_covers_all_levels_once():
    t = table(l1=1, l2=1, ways=1, cores=2)
    for i in range(3):
        t.insert(0, valid(i))
    t.lookup(1, 0)  # replicate something into core 1's L1
    entries = list(t.iter_entries())
    assert len(entries) == len({id(e) for e in entries})  # deduplicated
    assert {e.orig_line for e in entries} == {0, 1, 2}    # complete
