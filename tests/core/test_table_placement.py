"""Placement behaviour of the two-level redirect table."""

from repro.config import RedirectConfig
from repro.core.redirect_entry import EntryState, RedirectEntry
from repro.core.redirect_table import RedirectTable


def table(l1=4, l2=8, ways=2, cores=3):
    return RedirectTable(cores, RedirectConfig(
        l1_entries=l1, l2_entries=l2, l2_ways=ways))


def valid(orig):
    return RedirectEntry(orig, orig + 5000, state=EntryState.VALID)


def test_insert_homes_in_l2_and_caches_in_l1():
    t = table()
    t.insert(0, valid(1))
    # visible to every core (L2 home), zero-latency only for core 0
    assert t.lookup(0, 1).level == "l1"
    assert t.lookup(1, 1).level == "l2"
    # and promoted: the second lookup by core 1 is an L1 hit
    assert t.lookup(1, 1).level == "l1"


def test_l1_eviction_does_not_lose_the_entry():
    t = table(l1=2)
    for i in range(5):
        t.insert(0, valid(i))
    for i in range(5):
        assert t.lookup(1, i).entry is not None


def test_memory_swap_back_rehomes_in_l2():
    t = table(l1=1, l2=1, ways=1)
    for i in range(3):
        t.insert(0, valid(i))
    assert t.memory_entries >= 1
    target = next(iter(t._mem))
    assert t.lookup(2, target).level == "mem"
    # after the software swap-in, the entry is back in hardware
    res = t.lookup(1, target)
    assert res.level in ("l1", "l2")


def test_iter_valid_lines_deduplicates():
    t = table()
    t.insert(0, valid(7))
    t.lookup(1, 7)   # cached in core 1's L1 too
    t.lookup(2, 7)
    lines = list(t.iter_valid_lines())
    assert lines.count(7) == 1


def test_iter_valid_lines_skips_transient_and_invalid():
    t = table()
    t.insert(0, valid(1))
    t.insert(0, RedirectEntry(2, 5002, state=EntryState.LOCAL_VALID, owner=0))
    dead = RedirectEntry(3, 5003, state=EntryState.INVALID)
    t.l1_tables[0].put(dead)
    assert set(t.iter_valid_lines()) == {1}


def test_stats_shape():
    t = table()
    t.insert(0, valid(9))
    t.lookup(0, 9)
    t.lookup(1, 10)
    s = t.stats()
    assert s["l1_hits"] == 1
    assert s["full_misses"] == 1
    assert 0 <= s["l1_miss_rate"] <= 1
