"""Property tests for SUV's core invariants: pool/table bookkeeping
stays consistent under arbitrary interleavings of redirect,
redirect-back, commit and abort."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RedirectConfig
from repro.core.preserved_pool import PreservedPool
from repro.core.redirect_entry import EntryState, RedirectEntry
from repro.core.redirect_table import RedirectTable


class SUVModel:
    """A miniature driver exercising the table+pool state machine the
    way the SUV version manager does, with a reference set alongside."""

    def __init__(self, l1_entries=8, l2_entries=32):
        cfg = RedirectConfig(l1_entries=l1_entries, l2_entries=l2_entries,
                             l2_ways=2)
        self.table = RedirectTable(2, cfg)
        self.pool = PreservedPool(cfg.pool_base, cfg.pool_page_bytes)
        self.open: list[tuple[str, RedirectEntry]] = []  # current tx actions
        self.committed: dict[int, int] = {}  # line -> redirected line

    def write(self, line: int, core: int = 0) -> None:
        if any(e.orig_line == line for _, e in self.open):
            return
        entry = self.table.peek(line)
        if entry is not None and entry.state is EntryState.VALID:
            entry.state = EntryState.LOCAL_INVALID
            entry.owner = core
            self.open.append(("back", entry))
        elif entry is None or entry.is_free:
            new = RedirectEntry(line, self.pool.allocate_line(),
                                EntryState.LOCAL_VALID, owner=core)
            self.table.insert(core, new)
            self.open.append(("new", new))

    def commit(self) -> None:
        for kind, entry in self.open:
            entry.on_commit()
            if kind == "new":
                self.committed[entry.orig_line] = entry.redirected_line
            else:
                self.table.remove(entry.orig_line)
                self.pool.free_line(entry.redirected_line)
                self.committed.pop(entry.orig_line, None)
        self.open.clear()

    def abort(self) -> None:
        for kind, entry in self.open:
            entry.on_abort()
            if kind == "new":
                self.table.remove(entry.orig_line)
                self.pool.free_line(entry.redirected_line)
        self.open.clear()

    def check(self) -> None:
        # every committed mapping is reachable and VALID; pool live-line
        # count matches exactly the committed mappings
        assert self.pool.live_lines == len(self.committed)
        for line, target in self.committed.items():
            entry = self.table.peek(line)
            assert entry is not None, f"lost entry for line {line}"
            assert entry.state is EntryState.VALID
            assert entry.redirected_line == target
        # no transient entries outside an open transaction
        for t in self.table.l1_tables:
            for e in t.values():
                assert not e.state.is_transient


@given(
    st.lists(
        st.tuples(
            st.lists(st.integers(0, 30), min_size=1, max_size=6),  # lines
            st.booleans(),                                          # commit?
        ),
        min_size=1, max_size=30,
    )
)
@settings(max_examples=120, deadline=None)
def test_table_pool_invariants_hold(txs):
    model = SUVModel()
    for lines, do_commit in txs:
        for line in lines:
            model.write(line)
        if do_commit:
            model.commit()
        else:
            model.abort()
        model.check()


@given(st.lists(st.integers(0, 15), min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_alternating_redirect_and_back_never_leaks(lines):
    """Writing the same lines across many committing transactions must
    keep pool occupancy bounded by the number of distinct lines (the
    Section IV-A claim that redirect-back prevents perpetual growth)."""
    model = SUVModel()
    for line in lines:
        model.write(line)
        model.commit()
    assert model.pool.live_lines <= len(set(lines))
    model.check()
