"""Unit tests for the redirect summary filter."""

from repro.config import RedirectConfig
from repro.core.summary import RedirectSummaryFilter


def make_filter(**kw):
    return RedirectSummaryFilter(RedirectConfig(**kw))


def test_unredirected_lines_are_filtered():
    f = make_filter()
    assert not f.might_be_redirected(42)
    assert f.filtered == 1 and f.passed == 0


def test_redirected_lines_pass_to_lookup():
    f = make_filter()
    f.add(42)
    assert f.might_be_redirected(42)
    assert f.passed == 1


def test_remove_restores_filtering():
    f = make_filter()
    f.add(42)
    f.remove(42)
    assert not f.might_be_redirected(42)


def test_disabled_filter_always_passes():
    f = make_filter(use_summary_signature=False)
    assert f.might_be_redirected(42)
    assert f.passed == 1 and f.filtered == 0


def test_filter_rate():
    f = make_filter()
    f.add(1)
    f.might_be_redirected(1)
    f.might_be_redirected(2)
    assert f.filter_rate == 0.5


def test_false_positive_counter():
    f = make_filter()
    f.note_false_positive()
    assert f.stats()["false_positives"] == 1


def test_stats_keys():
    f = make_filter()
    assert set(f.stats()) == {
        "filtered", "passed", "false_positives", "forced_positives",
        "filter_rate", "popcount", "rebuilds",
    }


def test_rebuild_clears_stale_bits():
    f = make_filter()
    f.rebuild_threshold = 4
    # churn: add/remove disjoint lines until the threshold trips
    for i in range(4):
        f.add(1000 + i)
        f.remove(1000 + i)
    assert f.maybe_rebuild(live_lines=[42])
    assert f.stats()["rebuilds"] == 1
    assert f.might_be_redirected(42)
    assert not f.might_be_redirected(1000)


def test_rebuild_waits_for_threshold():
    f = make_filter()
    f.rebuild_threshold = 100
    f.add(1)
    f.remove(1)
    assert not f.maybe_rebuild(live_lines=[])
