"""Unit tests for the two-level redirect table."""

import pytest

from repro.config import RedirectConfig
from repro.core.redirect_entry import EntryState, RedirectEntry
from repro.core.redirect_table import RedirectTable


def small_table(l1_entries=4, l2_entries=16, l2_ways=2, n_cores=2):
    cfg = RedirectConfig(
        l1_entries=l1_entries, l2_entries=l2_entries, l2_ways=l2_ways
    )
    return RedirectTable(n_cores, cfg)


def entry(orig, redir=None, state=EntryState.VALID):
    return RedirectEntry(orig, redir if redir is not None else orig + 10_000,
                         state=state)


def test_lookup_miss_costs_l2_probe():
    t = small_table()
    res = t.lookup(0, 42)
    assert res.entry is None and res.level == "none"
    assert res.latency == t.config.l1_latency + t.config.l2_latency
    assert t.full_misses == 1


def test_insert_then_l1_hit_is_zero_latency():
    t = small_table()
    t.insert(0, entry(42))
    res = t.lookup(0, 42)
    assert res.entry is not None and res.level == "l1"
    assert res.latency == 0
    assert t.l1_hits == 1


def test_other_core_misses_l1_finds_l2_copy():
    t = small_table(l1_entries=1)
    t.insert(0, entry(42))
    t.insert(0, entry(43))  # evicts 42 from core 0's L1 into L2
    res = t.lookup(1, 42)
    assert res.level == "l2"
    assert res.latency == t.config.l2_latency
    # entry promoted into core 1's L1 now
    assert t.lookup(1, 42).level == "l1"


def test_l1_overflow_demotes_to_l2():
    t = small_table(l1_entries=2)
    for i in range(3):
        t.insert(0, entry(i))
    assert t.l1_overflows == 1
    assert t.lookup(1, 0).level == "l2"


def test_l2_overflow_spills_to_memory():
    # l1=1, l2 one set of 1 way → third entry spills to memory
    t = small_table(l1_entries=1, l2_entries=1, l2_ways=1)
    t.insert(0, entry(0))
    t.insert(0, entry(1))
    t.insert(0, entry(2))
    assert t.l2_overflows >= 1
    assert t.memory_entries >= 1


def test_memory_lookup_pays_software_cost():
    t = small_table(l1_entries=1, l2_entries=1, l2_ways=1)
    for i in range(3):
        t.insert(0, entry(i))
    # entry 0 should now live in memory
    target = next(iter(t._mem))
    res = t.lookup(1, target)
    assert res.level == "mem"
    cfg = t.config
    assert res.latency == (
        cfg.l1_latency + cfg.l2_latency + cfg.memory_latency
        + cfg.software_overhead
    )
    # promoted back into hardware afterwards
    assert t.memory_entries == 0 or target not in t._mem


def test_free_entries_are_dropped_not_spilled():
    t = small_table(l1_entries=1)
    dead = entry(5, state=EntryState.INVALID)
    t.insert(0, dead)
    t.insert(0, entry(6))
    assert t.l1_overflows == 0
    assert t.lookup(1, 5).entry is None


def test_remove_purges_all_levels():
    t = small_table(l1_entries=1, l2_entries=1, l2_ways=1)
    for i in range(3):
        t.insert(0, entry(i))
    for i in range(3):
        t.remove(i)
    assert t.hardware_occupancy == 0 and t.memory_entries == 0
    for i in range(3):
        assert t.lookup(0, i).entry is None


def test_peek_finds_entries_without_stats():
    t = small_table()
    e = entry(7)
    t.insert(1, e)
    assert t.peek(7) is e
    assert t.l1_hits == 0 and t.l1_misses == 0


def test_shared_entry_object_across_levels_is_coherent():
    # an entry cached in a core's L1 table and the L2 table is the same
    # object: a state flip is visible everywhere (behavioural MSI)
    t = small_table(l1_entries=1)
    e = entry(42, state=EntryState.LOCAL_VALID)
    e.owner = 0
    t.insert(0, e)
    t.insert(0, entry(43))  # demote 42's entry to L2
    e.on_commit()
    found = t.lookup(1, 42).entry
    assert found is e and found.state is EntryState.VALID


def test_miss_rate_statistic():
    t = small_table()
    t.insert(0, entry(1))
    t.lookup(0, 1)
    t.lookup(0, 2)
    assert t.l1_miss_rate == pytest.approx(0.5)
    assert t.stats()["l1_miss_rate"] == pytest.approx(0.5)


def test_l2_ways_must_divide():
    with pytest.raises(ValueError):
        small_table(l2_entries=10, l2_ways=3)
