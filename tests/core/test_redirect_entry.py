"""Unit + property tests for redirect entries (paper Table II)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.redirect_entry import EntryState, RedirectEntry


def test_four_states_cover_both_bits():
    combos = {(s.global_bit, s.valid_bit) for s in EntryState}
    assert combos == {(0, 0), (0, 1), (1, 0), (1, 1)}


def test_transient_iff_bits_differ():
    assert EntryState.LOCAL_VALID.is_transient
    assert EntryState.LOCAL_INVALID.is_transient
    assert not EntryState.VALID.is_transient
    assert not EntryState.INVALID.is_transient


def test_commit_rule_matches_paper():
    # "global 0→1 if valid=1, global 1→0 if valid=0"
    assert EntryState.LOCAL_VALID.committed() is EntryState.VALID
    assert EntryState.LOCAL_INVALID.committed() is EntryState.INVALID
    # stable states are untouched
    assert EntryState.VALID.committed() is EntryState.VALID
    assert EntryState.INVALID.committed() is EntryState.INVALID


def test_abort_rule_matches_paper():
    # "valid 0→1 if global=1, valid 1→0 if global=0"
    assert EntryState.LOCAL_VALID.aborted() is EntryState.INVALID
    assert EntryState.LOCAL_INVALID.aborted() is EntryState.VALID
    assert EntryState.VALID.aborted() is EntryState.VALID
    assert EntryState.INVALID.aborted() is EntryState.INVALID


@given(st.sampled_from(list(EntryState)))
def test_commit_and_abort_always_yield_stable_states(state):
    assert not state.committed().is_transient
    assert not state.aborted().is_transient


def test_new_redirection_lifecycle_commit():
    e = RedirectEntry(orig_line=10, redirected_line=0x8000 >> 6, owner=3)
    assert e.state is EntryState.LOCAL_VALID
    assert e.active_for(3)        # the owner follows the new mapping
    assert not e.active_for(5)    # others do not, until commit
    assert not e.active_for(None)
    e.on_commit()
    assert e.state is EntryState.VALID
    assert e.owner is None
    assert e.active_for(5) and e.active_for(None)


def test_new_redirection_lifecycle_abort():
    e = RedirectEntry(orig_line=10, redirected_line=0x200, owner=3)
    e.on_abort()
    assert e.state is EntryState.INVALID
    assert e.is_free
    assert not e.active_for(3) and not e.active_for(None)


def test_redirect_back_lifecycle_commit():
    # a committed redirection gets suspended by a new transaction
    e = RedirectEntry(10, 0x200, state=EntryState.VALID)
    e.state = EntryState.LOCAL_INVALID
    e.owner = 7
    assert not e.active_for(7)    # owner writes to the original address
    assert e.active_for(2)        # isolation: others still see the old map
    e.on_commit()
    assert e.state is EntryState.INVALID and e.is_free


def test_redirect_back_lifecycle_abort():
    e = RedirectEntry(10, 0x200, state=EntryState.LOCAL_INVALID, owner=7)
    e.on_abort()
    assert e.state is EntryState.VALID  # old mapping restored
    assert e.active_for(7)


def test_first_level_entry_is_22_bits():
    assert RedirectEntry.first_level_entry_bits() == 22


def test_encode_first_level_fits_in_22_bits():
    e = RedirectEntry(0x1000040 >> 6, 0x8080 >> 6, state=EntryState.VALID)
    word = e.encode_first_level(tlb_index=5)
    assert 0 <= word < (1 << 22)


def test_encode_state_bits_position():
    e = RedirectEntry(0, 0, state=EntryState.VALID)
    word = e.encode_first_level(tlb_index=0)
    state_bits = (word >> 13) & 0b11   # above 6 tlb + 7 offset bits
    assert state_bits == 0b11
    e.state = EntryState.LOCAL_INVALID
    assert ((e.encode_first_level() >> 13) & 0b11) == 0b10
