"""Seed-determinism guarantees the perf work must not break.

Every host-side optimization (kernel fast paths, memoized hashes,
warm worker pools, Program memoization) is only admissible if the
*simulated* outcome is bit-identical: same spec + same seed must give
the same ``SimResult.to_json()`` on every run, for every scheme.
"""

import json

import pytest

from repro.htm.vm.base import available_schemes
from repro.runner.executor import execute_spec
from repro.runner.spec import ExperimentSpec


def _spec(scheme: str) -> ExperimentSpec:
    return ExperimentSpec(
        workload="ssca2", scheme=scheme, scale="tiny", seed=3, cores=4
    )


@pytest.mark.parametrize("scheme", available_schemes())
def test_same_seed_same_result_across_runs(scheme):
    first = json.loads(execute_spec(_spec(scheme)).to_json())
    second = json.loads(execute_spec(_spec(scheme)).to_json())
    assert first == second


def test_different_seeds_diverge():
    # sanity check that the comparison above is not vacuous: the seed
    # actually reaches the workload
    base = _spec("suv")
    other = ExperimentSpec(
        workload="ssca2", scheme="suv", scale="tiny", seed=4, cores=4
    )
    a = json.loads(execute_spec(base).to_json())
    b = json.loads(execute_spec(other).to_json())
    assert a != b
