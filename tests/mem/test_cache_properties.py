"""Property tests for the cache and hierarchy substrates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, SimConfig
from repro.mem.cache import CacheLineState as S
from repro.mem.cache import SetAssocCache
from repro.mem.hierarchy import MemoryHierarchy


@given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_cache_never_exceeds_capacity(lines):
    cache = SetAssocCache(CacheConfig(size_bytes=8 * 4 * 64, ways=4, latency=1))
    for line in lines:
        cache.insert(line, S.EXCLUSIVE)
        assert cache.occupancy <= cache.n_sets * cache.ways
        # per-set bound too (sets are allocated lazily on first touch)
        for cset in cache._sets:
            assert cset is None or len(cset) <= cache.ways


@given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_most_recent_line_always_resident(lines):
    cache = SetAssocCache(CacheConfig(size_bytes=4 * 2 * 64, ways=2, latency=1))
    for line in lines:
        cache.insert(line, S.EXCLUSIVE)
        assert cache.peek(line) is not None


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 40), st.booleans()),
        min_size=1, max_size=120,
    )
)
@settings(max_examples=40, deadline=None)
def test_mesi_single_writer_multiple_readers(ops):
    """After any access sequence: at most one M/E holder per line, and
    an M/E holder excludes all other holders (the MESI invariant)."""
    hier = MemoryHierarchy(SimConfig(n_cores=4))
    for core, line, is_write in ops:
        if is_write:
            hier.write(core, line)
        else:
            hier.read(core, line)
        # inspect every line's holder states
        holders: dict[int, list[tuple[int, S]]] = {}
        for c in range(4):
            for ln in hier.l1s[c].resident_lines():
                entry = hier.l1s[c].peek(ln)
                holders.setdefault(ln, []).append((c, entry.state))
        for ln, hs in holders.items():
            exclusive = [c for c, stt in hs if stt in (S.MODIFIED, S.EXCLUSIVE)]
            if exclusive:
                assert len(hs) == 1, f"line {ln}: M/E with sharers: {hs}"


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 40), st.booleans()),
        min_size=1, max_size=120,
    )
)
@settings(max_examples=40, deadline=None)
def test_directory_agrees_with_caches(ops):
    hier = MemoryHierarchy(SimConfig(n_cores=4))
    for core, line, is_write in ops:
        (hier.write if is_write else hier.read)(core, line)
    for c in range(4):
        for ln in hier.l1s[c].resident_lines():
            assert c in hier.directory.holders(ln), (
                f"core {c} holds line {ln} unknown to the directory"
            )


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 60), st.booleans()),
        min_size=1, max_size=100,
    )
)
@settings(max_examples=40, deadline=None)
def test_access_latencies_are_positive_and_bounded(ops):
    cfg = SimConfig(n_cores=4)
    hier = MemoryHierarchy(cfg)
    worst = (cfg.l1.latency + 40 + cfg.directory.latency
             + cfg.l2.latency + cfg.memory.latency + 100)
    for core, line, is_write in ops:
        res = (hier.write if is_write else hier.read)(core, line)
        assert 0 < res.latency <= worst
