"""Unit tests for the sharer directory."""

from repro.config import DirectoryConfig
from repro.mem.directory import Directory


def make_dir():
    return Directory(DirectoryConfig(), n_cores=4)


def test_untracked_line_has_no_holders():
    d = make_dir()
    assert d.holders(100) == set()
    assert d.owner_of(100) is None


def test_record_owner_clears_sharers():
    d = make_dir()
    d.record_shared(1, 0)
    d.record_shared(1, 2)
    d.record_owner(1, 3)
    assert d.owner_of(1) == 3
    assert d.holders(1) == {3}


def test_record_shared_demotes_previous_owner():
    d = make_dir()
    d.record_owner(1, 0)
    d.record_shared(1, 1)
    assert d.owner_of(1) is None
    assert d.holders(1) == {0, 1}


def test_drop_removes_core_and_garbage_collects():
    d = make_dir()
    d.record_shared(5, 0)
    d.record_shared(5, 1)
    d.drop(5, 0)
    assert d.holders(5) == {1}
    d.drop(5, 1)
    assert d.tracked_lines == 0


def test_drop_owner():
    d = make_dir()
    d.record_owner(9, 2)
    d.drop(9, 2)
    assert d.owner_of(9) is None
    assert d.holders(9) == set()


def test_latency_from_config():
    d = make_dir()
    assert d.latency == 6


def test_self_reshared_owner():
    d = make_dir()
    d.record_owner(4, 1)
    d.record_shared(4, 1)
    assert d.owner_of(4) is None
    assert d.holders(4) == {1}
