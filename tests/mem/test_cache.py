"""Unit tests for the set-associative cache."""

import pytest

from repro.config import CacheConfig
from repro.mem.cache import CacheLineState as S
from repro.mem.cache import SetAssocCache


def small_cache(ways=2, sets=4):
    return SetAssocCache(
        CacheConfig(size_bytes=ways * sets * 64, ways=ways, latency=1)
    )


def test_geometry_from_config():
    c = SetAssocCache(CacheConfig(size_bytes=32 << 10, ways=4, latency=1))
    assert c.n_sets == 128
    assert c.ways == 4


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, ways=3, latency=1)


def test_miss_then_hit():
    c = small_cache()
    assert c.lookup(10) is None
    c.insert(10, S.EXCLUSIVE)
    entry = c.lookup(10)
    assert entry is not None and entry.state is S.EXCLUSIVE
    assert c.hits == 1 and c.misses == 1


def test_lru_eviction_within_set():
    c = small_cache(ways=2, sets=4)
    # lines 0, 4, 8 all map to set 0
    c.insert(0, S.EXCLUSIVE)
    c.insert(4, S.EXCLUSIVE)
    c.lookup(0)  # make 4 the LRU
    victim = c.insert(8, S.EXCLUSIVE)
    assert victim is not None and victim.line == 4
    assert c.peek(0) is not None and c.peek(8) is not None


def test_speculative_lines_survive_eviction_while_normal_victims_exist():
    c = small_cache(ways=2, sets=1)
    c.insert(0, S.MODIFIED, dirty=True, speculative=True)
    c.insert(1, S.EXCLUSIVE)
    victim = c.insert(2, S.EXCLUSIVE)
    assert victim.line == 1  # the speculative line 0 was pinned
    assert c.peek(0).speculative


def test_speculative_overflow_when_set_is_all_speculative():
    c = small_cache(ways=2, sets=1)
    c.insert(0, S.MODIFIED, speculative=True)
    c.insert(1, S.MODIFIED, speculative=True)
    victim = c.insert(2, S.MODIFIED, speculative=True)
    assert victim is not None and victim.speculative


def test_insert_existing_updates_in_place():
    c = small_cache()
    c.insert(3, S.SHARED)
    assert c.insert(3, S.MODIFIED, dirty=True) is None
    entry = c.peek(3)
    assert entry.state is S.MODIFIED and entry.dirty
    assert c.occupancy == 1


def test_invalidate_removes_line():
    c = small_cache()
    c.insert(7, S.SHARED)
    dropped = c.invalidate(7)
    assert dropped.line == 7
    assert c.lookup(7) is None
    assert c.invalidate(7) is None


def test_clear_speculative_commit_keeps_lines():
    c = small_cache()
    c.insert(1, S.MODIFIED, dirty=True, speculative=True)
    c.insert(2, S.MODIFIED, dirty=True, speculative=False)
    affected = c.clear_speculative(invalidate=False)
    assert affected == [1]
    assert c.peek(1) is not None and not c.peek(1).speculative
    assert c.peek(2) is not None


def test_clear_speculative_abort_invalidates_lines():
    c = small_cache()
    c.insert(1, S.MODIFIED, dirty=True, speculative=True)
    affected = c.clear_speculative(invalidate=True)
    assert affected == [1]
    assert c.peek(1) is None


def test_speculative_lines_listing():
    c = small_cache()
    c.insert(5, S.MODIFIED, speculative=True)
    c.insert(6, S.MODIFIED)
    assert c.speculative_lines() == [5]


def test_eviction_counter():
    c = small_cache(ways=1, sets=1)
    c.insert(0, S.EXCLUSIVE)
    c.insert(1, S.EXCLUSIVE)
    c.insert(2, S.EXCLUSIVE)
    assert c.evictions == 2
