"""Integration tests for the MESI-coherent memory hierarchy."""

import pytest

from repro.config import SimConfig
from repro.mem.cache import CacheLineState as S
from repro.mem.hierarchy import MemoryHierarchy


@pytest.fixture
def hier():
    return MemoryHierarchy(SimConfig())


def test_cold_read_misses_to_memory(hier):
    r = hier.read(0, 1000)
    assert not r.l1_hit and r.source == "mem"
    # at least L1 detect + directory + L2 + memory latencies
    assert r.latency >= 1 + 6 + 15 + 150


def test_second_read_hits_l1(hier):
    hier.read(0, 1000)
    r = hier.read(0, 1000)
    assert r.l1_hit and r.latency == 1


def test_read_after_remote_read_hits_l2_or_owner(hier):
    hier.read(0, 1000)
    r = hier.read(1, 1000)
    assert r.source in ("l2", "owner")
    assert r.latency < 150


def test_exclusive_then_shared_states(hier):
    hier.read(0, 42)
    assert hier.l1s[0].peek(42).state is S.EXCLUSIVE
    hier.read(1, 42)
    assert hier.l1s[1].peek(42).state is S.SHARED


def test_write_invalidates_sharers(hier):
    hier.read(0, 7)
    hier.read(1, 7)
    hier.write(2, 7)
    assert hier.l1s[0].peek(7) is None
    assert hier.l1s[1].peek(7) is None
    assert hier.l1s[2].peek(7).state is S.MODIFIED
    assert hier.directory.owner_of(7) == 2


def test_write_hit_on_exclusive_is_silent_upgrade(hier):
    hier.read(0, 9)  # E state
    r = hier.write(0, 9)
    assert r.l1_hit and r.latency == 1
    assert hier.l1s[0].peek(9).state is S.MODIFIED
    assert hier.l1s[0].peek(9).dirty


def test_write_upgrade_from_shared_pays_directory(hier):
    hier.read(0, 9)
    hier.read(1, 9)  # both now S
    r = hier.write(0, 9)
    assert r.l1_hit
    assert r.latency > 1  # upgrade round trip
    assert hier.l1s[1].peek(9) is None


def test_read_of_modified_line_forwards_from_owner(hier):
    hier.write(0, 33)
    r = hier.read(1, 33)
    assert r.source == "owner"
    assert hier.l1s[0].peek(33).state is S.SHARED
    assert not hier.l1s[0].peek(33).dirty  # drained to L2
    assert hier.l2.peek(33) is not None


def test_write_miss_steals_line_from_owner(hier):
    hier.write(0, 77)
    hier.write(1, 77)
    assert hier.l1s[0].peek(77) is None
    assert hier.directory.owner_of(77) == 1


def test_dirty_eviction_writes_back(hier):
    cfg = hier.config.l1
    sets = cfg.n_sets
    # fill one set with dirty lines until eviction
    base = 5
    for i in range(cfg.ways + 1):
        hier.write(0, base + i * sets)
    assert hier.l1_writebacks >= 1
    assert hier.l2.peek(base) is not None


def test_speculative_flag_propagates(hier):
    hier.write(0, 11, speculative=True)
    assert hier.l1s[0].peek(11).speculative


def test_speculative_eviction_reported(hier):
    cfg = hier.config.l1
    sets = cfg.n_sets
    for i in range(cfg.ways):
        hier.write(0, 3 + i * sets, speculative=True)
    r = hier.write(0, 3 + cfg.ways * sets, speculative=True)
    assert r.evicted_speculative  # the set was full of speculative lines


def test_flush_to_l2_only_if_dirty(hier):
    hier.read(0, 55)
    assert hier.flush_to_l2(0, 55) == 0
    hier.write(0, 55)
    lat = hier.flush_to_l2(0, 55)
    assert lat >= hier.config.l2.latency
    assert not hier.l1s[0].peek(55).dirty
    assert hier.l2.peek(55).dirty


def test_drop_speculative_commit_vs_abort(hier):
    hier.write(0, 21, speculative=True)
    kept = hier.drop_speculative(0, invalidate=False)
    assert kept == [21] and hier.l1s[0].peek(21) is not None

    hier.write(0, 22, speculative=True)
    gone = hier.drop_speculative(0, invalidate=True)
    assert gone == [22] and hier.l1s[0].peek(22) is None
    assert 0 not in hier.directory.holders(22)


def test_functional_store_load_roundtrip(hier):
    hier.memory.store(0x100, 1234)
    assert hier.memory.load(0x100) == 1234
    assert hier.memory.load(0x108) == 0


def test_latencies_monotone_l1_l2_mem(hier):
    r_mem = hier.read(0, 500)       # memory fill
    r_l2 = hier.read(1, 500)        # l2/owner
    r_l1 = hier.read(0, 500)        # l1 hit
    assert r_l1.latency < r_l2.latency < r_mem.latency
