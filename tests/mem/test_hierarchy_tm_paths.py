"""Unit tests for the TM-specific hierarchy paths: allocate_write
(SUV pool lines), local_write (lazy buffering), invalidate_remote
(SUV-based lazy publication)."""

import pytest

from repro.config import SimConfig
from repro.mem.cache import CacheLineState as S
from repro.mem.hierarchy import MemoryHierarchy


@pytest.fixture
def hier():
    return MemoryHierarchy(SimConfig())


# -- allocate_write ----------------------------------------------------

def test_allocate_write_is_l1_latency_only(hier):
    res = hier.allocate_write(0, 0x4000)
    assert res.latency == hier.config.l1.latency
    entry = hier.l1s[0].peek(0x4000)
    assert entry.state is S.MODIFIED and entry.dirty


def test_allocate_write_registers_ownership(hier):
    hier.allocate_write(2, 99)
    assert hier.directory.owner_of(99) == 2


def test_allocate_write_existing_line_upgrades(hier):
    hier.read(0, 50)
    res = hier.allocate_write(0, 50)
    assert res.l1_hit
    assert hier.l1s[0].peek(50).state is S.MODIFIED


def test_allocate_write_reports_evictions(hier):
    sets = hier.config.l1.n_sets
    for i in range(hier.config.l1.ways):
        hier.allocate_write(0, 7 + i * sets)
    res = hier.allocate_write(0, 7 + hier.config.l1.ways * sets)
    assert res.evicted


def test_allocate_write_speculative_flag(hier):
    hier.allocate_write(0, 123, speculative=True)
    assert hier.l1s[0].peek(123).speculative


# -- local_write -------------------------------------------------------

def test_local_write_does_not_invalidate_remote_copies(hier):
    hier.read(0, 77)
    hier.read(1, 77)
    hier.local_write(0, 77, speculative=True)
    # core 1's copy survives: the write is invisible
    assert hier.l1s[1].peek(77) is not None


def test_local_write_does_not_update_directory_ownership(hier):
    hier.read(1, 88)          # core 1 owns E
    hier.local_write(0, 88, speculative=True)
    assert hier.directory.owner_of(88) != 0


def test_local_write_hit_is_cheap(hier):
    hier.local_write(0, 5)
    res = hier.local_write(0, 5)
    assert res.l1_hit and res.latency == hier.config.l1.latency


def test_local_write_miss_fills_from_below(hier):
    res = hier.local_write(0, 0x9999)
    assert not res.l1_hit
    assert res.latency > hier.config.l1.latency


# -- invalidate_remote ---------------------------------------------------

def test_invalidate_remote_clears_other_copies(hier):
    hier.read(1, 200)
    hier.read(2, 200)
    lat = hier.invalidate_remote(0, 200)
    assert hier.l1s[1].peek(200) is None
    assert hier.l1s[2].peek(200) is None
    assert lat >= hier.config.directory.latency


def test_invalidate_remote_keeps_own_copy(hier):
    hier.read(0, 300)
    hier.invalidate_remote(0, 300)
    assert hier.l1s[0].peek(300) is not None


def test_invalidate_remote_no_holders_costs_directory_only(hier):
    lat = hier.invalidate_remote(0, 0x5000)
    assert lat <= hier.mesh.core_to_bank(0, 0x5000) + hier.config.directory.latency
